//! Offline stand-in for `proptest` (API-compatible subset).
//!
//! Supports the grammar this workspace uses: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, parameters written either as
//! `name in strategy` or `name: Type`, range and tuple strategies,
//! [`Strategy::prop_map`], `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion forms.
//!
//! Differences from upstream: input generation is deterministic (fixed
//! seed, so failures reproduce across runs), and there is no shrinking —
//! a failing case reports the exact generated inputs instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

pub mod test_runner {
    //! The deterministic RNG driving input generation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Test-case RNG; a thin wrapper over the vendored [`StdRng`].
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// A deterministic RNG with a fixed seed, so failing cases
        /// reproduce run to run.
        #[must_use]
        pub fn deterministic() -> Self {
            Self(StdRng::seed_from_u64(0x70726f70_74657374))
        }
    }
}

use test_runner::TestRng;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case; produced by `prop_assert!`/`prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ── strategies ──────────────────────────────────────────────────────────

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a default generation strategy (used by `name: Type` params
/// and [`any`]).
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<f32>()
    }
}

/// The default strategy for `T` (what a bare `name: Type` parameter uses).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use std::fmt;
    use std::ops::Range;

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Alias module so `prop::collection::vec` resolves after a prelude
    /// glob import.
    pub mod prop {
        pub use crate::collection;
    }
}

// ── macros ──────────────────────────────────────────────────────────────

/// Declares property tests. Each `fn` becomes a `#[test]` that draws
/// `config.cases` deterministic inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(@munch $cfg; () () ($($params)*) $body);
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // `name in strategy, …`
    (@munch $cfg:expr; ($($n:ident)*) ($($s:expr;)*) ($name:ident in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(@munch $cfg; ($($n)* $name) ($($s;)* $strat;) ($($rest)*) $body)
    };
    // `name in strategy` (final parameter)
    (@munch $cfg:expr; ($($n:ident)*) ($($s:expr;)*) ($name:ident in $strat:expr) $body:block) => {
        $crate::__proptest_case!(@munch $cfg; ($($n)* $name) ($($s;)* $strat;) () $body)
    };
    // `name: Type, …`
    (@munch $cfg:expr; ($($n:ident)*) ($($s:expr;)*) ($name:ident: $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(@munch $cfg; ($($n)* $name) ($($s;)* $crate::any::<$ty>();) ($($rest)*) $body)
    };
    // `name: Type` (final parameter)
    (@munch $cfg:expr; ($($n:ident)*) ($($s:expr;)*) ($name:ident: $ty:ty) $body:block) => {
        $crate::__proptest_case!(@munch $cfg; ($($n)* $name) ($($s;)* $crate::any::<$ty>();) () $body)
    };
    // all parameters consumed: run the cases
    (@munch $cfg:expr; ($($n:ident)*) ($($s:expr;)*) () $body:block) => {{
        let config: $crate::ProptestConfig = $cfg;
        let strategy = ($($s,)*);
        let mut rng = $crate::test_runner::TestRng::deterministic();
        for case_index in 0..config.cases {
            let ($($n,)*) = $crate::Strategy::generate(&strategy, &mut rng);
            let parts: ::std::vec::Vec<::std::string::String> =
                ::std::vec![$(format!(concat!(stringify!($n), " = {:?}"), &$n)),*];
            let inputs = parts.join(", ");
            let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                $body
                ::std::result::Result::Ok(())
            })();
            if let ::std::result::Result::Err(err) = outcome {
                panic!(
                    "property failed on case {}/{}: {}\n    inputs: {}",
                    case_index + 1,
                    config.cases,
                    err,
                    inputs
                );
            }
        }
    }};
}

/// Asserts a condition inside a `proptest!` body; on failure the case is
/// reported with its generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..=9, b in -5i64..5, x in 0.25f64..0.75) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x), "x = {}", x);
        }

        #[test]
        fn typed_params_and_vecs(seed: u64, xs in prop::collection::vec(0.0f64..1.0, 1..6)) {
            let _ = seed;
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strategy = (1u32..=4, 1u32..=4).prop_map(|(a, b)| a + b);
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..64 {
            let v = crate::Strategy::generate(&strategy, &mut rng);
            assert!((2..=8).contains(&v));
        }
    }
}
