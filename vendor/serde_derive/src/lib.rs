//! Derive macros for the offline `serde` stand-in.
//!
//! Parses the deriving item directly from the proc-macro token stream (no
//! `syn`/`quote`, which are unavailable offline) and generates
//! externally-tagged JSON conversions matching serde's defaults:
//!
//! * named struct  → object with fields in declaration order;
//! * tuple struct  → array (single-field tuple structs stay newtype-style
//!   arrays for simplicity);
//! * unit variant  → `"Variant"`;
//! * newtype variant → `{"Variant": value}`;
//! * tuple variant → `{"Variant": [a, b]}`;
//! * struct variant → `{"Variant": {..}}`.
//!
//! Generic types are rejected with a compile error — the workspace only
//! derives on concrete types, and supporting generics without `syn` would
//! buy complexity for nothing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Derives the stand-in `serde::Serialize` (JSON-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the stand-in `serde::Deserialize` (JSON-tree conversion).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error parses")
}

// ── parsing ─────────────────────────────────────────────────────────────

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "#[derive(Serialize/Deserialize)] stand-in does not support generics on `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum { name, variants: parse_variants(body)? })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas, treating `<`…`>` as nesting
/// (generic arguments contain commas at the token level; delimited groups
/// are already atomic trees).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tok);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            None => Fields::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("explicit discriminants unsupported (variant `{name}`)"));
            }
            other => return Err(format!("unsupported variant body: {other:?}")),
        };
        variants.push((name, fields));
    }
    Ok(variants)
}

// ── code generation ─────────────────────────────────────────────────────

const VALUE: &str = "::serde::json::Value";
const DE_ERROR: &str = "::serde::json::DeError";

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{VALUE}::Null"),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_json_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("{VALUE}::Object(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                        .collect();
                    format!("{VALUE}::Array(::std::vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> {VALUE} {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => {VALUE}::String(::std::string::String::from({v:?})),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json_value(f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("{VALUE}::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => {VALUE}::Object(::std::vec![\
                             (::std::string::String::from({v:?}), {payload})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => {VALUE}::Object(::std::vec![\
                             (::std::string::String::from({v:?}), \
                              {VALUE}::Object(::std::vec![{}]))]),",
                            fields.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> {VALUE} {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Generates the field-extraction expressions for a named-field object at
/// `src` (an expression of type `&Value`).
fn named_field_inits(fields: &[String], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_json_value({src}.get({f:?})\
                 .ok_or_else(|| {DE_ERROR}::missing_field({f:?}))?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!(
                "match v {{\n\
                     {VALUE}::Null => ::std::result::Result::Ok({name}),\n\
                     other => ::std::result::Result::Err({DE_ERROR}::expected(\"null\", other)),\n\
                 }}"
            ),
            Fields::Named(names) => {
                let inits = named_field_inits(names, "v");
                format!(
                    "match v {{\n\
                         {VALUE}::Object(_) => ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                         other => ::std::result::Result::Err({DE_ERROR}::expected(\"object\", other)),\n\
                     }}"
                )
            }
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?,"))
                    .collect();
                format!(
                    "match v {{\n\
                         {VALUE}::Array(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}({})),\n\
                         other => ::std::result::Result::Err({DE_ERROR}::expected(\"array of {n}\", other)),\n\
                     }}",
                    inits.join(" ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| match fields {
                    Fields::Unit => unreachable!("filtered above"),
                    Fields::Tuple(n) if *n == 1 => format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_json_value(payload)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_json_value(&items[{i}])?,")
                            })
                            .collect();
                        format!(
                            "{v:?} => match payload {{\n\
                                 {VALUE}::Array(items) if items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{v}({})),\n\
                                 other => ::std::result::Result::Err(\
                                     {DE_ERROR}::expected(\"array of {n}\", other)),\n\
                             }},",
                            inits.join(" ")
                        )
                    }
                    Fields::Named(fields) => {
                        let inits = named_field_inits(fields, "payload");
                        format!(
                            "{v:?} => match payload {{\n\
                                 {VALUE}::Object(_) => \
                                     ::std::result::Result::Ok({name}::{v} {{ {inits} }}),\n\
                                 other => ::std::result::Result::Err(\
                                     {DE_ERROR}::expected(\"object\", other)),\n\
                             }},"
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     {VALUE}::String(s) => match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(\
                             {DE_ERROR}::unknown_variant(other, {name:?})),\n\
                     }},\n\
                     {VALUE}::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(\
                                 {DE_ERROR}::unknown_variant(other, {name:?})),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(\
                         {DE_ERROR}::expected(\"enum representation\", other)),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(v: &{VALUE}) -> ::std::result::Result<Self, {DE_ERROR}> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
