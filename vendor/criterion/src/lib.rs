//! Offline stand-in for `criterion` (API-compatible subset).
//!
//! Implements the surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`criterion_group!`]/[`criterion_main!`], [`black_box`] — over a plain
//! wall-clock harness: each benchmark is calibrated to a batch size that
//! takes a measurable slice of time, then sampled repeatedly, and the
//! median/min/max per-iteration times are printed. No statistics engine,
//! no HTML reports, no saved baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; accepted for API
/// compatibility, measurement always times the routine per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 60 }
    }
}

impl Criterion {
    /// Starts a named group whose benches share configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), sample_size: None }
    }

    /// Runs one benchmark with the default configuration.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks with shared overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&format!("{}/{name}", self.name), samples, f);
        self
    }

    /// Ends the group. A no-op here; upstream finalises reports.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { sample_size: sample_size.max(2), samples: Vec::new() };
    f(&mut bencher);
    let mut per_iter = bencher.samples;
    if per_iter.is_empty() {
        println!("{name:<40} (no measurement)");
        return;
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{name:<40} time: [{} {} {}]",
        format_duration(lo),
        format_duration(median),
        format_duration(hi)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Target duration for one calibrated sample; long enough that timer
/// resolution is negligible, short enough that suites stay fast.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

/// Measures a single benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called in calibrated batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: double the batch size until one batch reaches the
        // target duration (or the cap, for extremely fast routines).
        let mut iters: u32 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                self.samples.push(elapsed / iters);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Setup cost is unbounded (it may clone large state), so batches
        // are fixed at one routine call and the sample count is trusted
        // to average out timer noise.
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_expected_sample_count() {
        let mut b = Bencher { sample_size: 5, samples: Vec::new() };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().sum::<Duration>() > Duration::ZERO);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher { sample_size: 4, samples: Vec::new() };
        b.iter_batched(|| vec![1u64; 8], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        g.finish();
    }
}
