//! Offline stand-in for `serde` (API-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the surface it uses: `#[derive(Serialize, Deserialize)]` plus the
//! [`Serialize`]/[`Deserialize`] traits. Instead of serde's streaming
//! data model, values convert to and from the in-memory JSON tree in
//! [`json`]; the sibling `serde_json` stand-in renders and parses that
//! tree. Enum representation follows serde's externally-tagged default
//! (`"Variant"`, `{"Variant": …}`), and structs serialize their fields in
//! declaration order, so output is byte-stable across runs.

#![forbid(unsafe_code)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

use json::{DeError, Number, Value};

/// Conversion into the JSON value model.
pub trait Serialize {
    /// This value as a JSON tree.
    fn to_json_value(&self) -> Value;
}

/// Conversion from the JSON value model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match `Self`.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

// ── primitives ──────────────────────────────────────────────────────────

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let n = v.as_u64().ok_or_else(|| DeError::expected("usize", v))?;
        usize::try_from(n).map_err(|_| DeError::expected("usize", v))
    }
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_json_value(&self) -> Value {
        (*self as i64).to_json_value()
    }
}

impl Deserialize for isize {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let n = v.as_i64().ok_or_else(|| DeError::expected("isize", v))?;
        isize::try_from(n).map_err(|_| DeError::expected("isize", v))
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            // serde_json cannot represent non-finite floats; `Value::from`
            // maps them to null and we follow that behaviour.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        f64::from(*self).to_json_value()
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| DeError::expected("f32", v))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("char", other)),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

// ── references and smart pointers ───────────────────────────────────────

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        T::from_json_value(v).map(Box::new)
    }
}

// ── option ──────────────────────────────────────────────────────────────

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(t) => t.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

// ── sequences ───────────────────────────────────────────────────────────

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> =
                    items.iter().map(T::from_json_value).collect();
                parsed.map(|v| v.try_into().expect("length checked above"))
            }
            other => Err(DeError::expected("fixed-size array", other)),
        }
    }
}

// ── tuples ──────────────────────────────────────────────────────────────

macro_rules! tuple_impls {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let len = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == len => {
                        Ok(($($name::from_json_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

// ── maps ────────────────────────────────────────────────────────────────

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_json_value(&self) -> Value {
        // Sort for deterministic output: HashMap iteration order varies.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
