//! The in-memory JSON tree shared by the `serde` and `serde_json`
//! stand-ins.
//!
//! Objects preserve insertion order (a `Vec` of pairs), so structs render
//! their fields in declaration order exactly like streaming serde would.

use std::fmt;

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// This number as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// This number as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// This number as `i64` if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered key/value pairs (duplicate keys keep
    /// the last occurrence on lookup, like `serde_json`'s map).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup for objects: the value under `key` (last occurrence
    /// wins), or `None` for missing keys and non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as `bool`, if boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as `f64`, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// This value as `u64`, if a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// This value as `i64`, if an in-range integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// This value as `&str`, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value's array items, if an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for error messages ("object", "number", …).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization failure: the tree's shape did not match the target
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a custom message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// A type-mismatch error: wanted `expected`, found `got`.
    #[must_use]
    pub fn expected(expected: &str, got: &Value) -> Self {
        Self { message: format!("expected {expected}, found {}", got.kind()) }
    }

    /// A missing-field error for struct deserialization.
    #[must_use]
    pub fn missing_field(field: &str) -> Self {
        Self { message: format!("missing field `{field}`") }
    }

    /// An unknown-enum-variant error.
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Self { message: format!("unknown variant `{variant}` for enum `{ty}`") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
