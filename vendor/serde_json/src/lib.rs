//! Offline stand-in for `serde_json` (API-compatible subset).
//!
//! Works on the JSON tree defined by the sibling `serde` stand-in:
//! [`to_string`]/[`to_string_pretty`] render it, [`from_str`] parses JSON
//! text back into it, and [`to_value`]/[`from_value`] convert to and from
//! user types. Output matches upstream `serde_json`'s formatting: compact
//! uses `","`/`":"` with no whitespace, pretty uses two-space indentation
//! with `": "` separators, and floats that happen to be integral render
//! with a trailing `.0`.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::json::{DeError, Number, Value};
use serde::{Deserialize, Serialize};

/// A serialization or deserialization failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ── serialization ───────────────────────────────────────────────────────

/// Converts a value into a JSON tree. Infallible for the stand-in's data
/// model, but keeps `serde_json`'s fallible signature.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream API.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Renders a value as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Renders a value as pretty JSON (two-space indent, `": "` separators).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream API.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some("  "), 0);
    Ok(out)
}

/// Rebuilds a typed value from a JSON tree.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_json_value(&value).map_err(Error::from)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_str(text)?;
    T::from_json_value(&value).map_err(Error::from)
}

fn parse_value_str(text: &str) -> Result<Value> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            let text = f.to_string();
            out.push_str(&text);
            // `Display` drops the fractional part for integral floats;
            // upstream serde_json keeps `.0` so the value re-parses as a
            // float.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── parsing ─────────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", char::from(byte), self.pos)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<()> {
        let b = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let high = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: expect a trailing `\uXXXX` low half.
                    if !self.eat_literal("\\u") {
                        return Err(Error::new("unpaired surrogate in string"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::new("invalid low surrogate in string"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    high
                };
                out.push(char::from_u32(code).ok_or_else(|| Error::new("invalid unicode escape"))?);
            }
            other => {
                return Err(Error::new(format!("invalid escape `\\{}`", char::from(other))));
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| Error::new("truncated unicode escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Object(vec![
            ("policy".to_owned(), Value::String("PARTIES".to_owned())),
            (
                "scores".to_owned(),
                Value::Array(vec![
                    Value::Number(Number::Float(0.5)),
                    Value::Number(Number::PosInt(3)),
                ]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"policy":"PARTIES","scores":[0.5,3]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"policy\": \"PARTIES\""), "{pretty}");
        assert!(pretty.contains("\n  \"scores\": [\n    0.5,\n    3\n  ]"), "{pretty}");
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        let v = Value::Number(Number::Float(2.0));
        assert_eq!(to_string(&v).unwrap(), "2.0");
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"a": [1, -2, 3.5e2, true, null], "b": {"nested": "x\n\"y\""}}"#;
        let v: Value = from_str(text).unwrap();
        let rendered = to_string(&v).unwrap();
        let again: Value = from_str(&rendered).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("nested").unwrap().as_str().unwrap(), "x\n\"y\"");
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} extra").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }

    #[test]
    fn unicode_escapes() {
        // U+00E9 directly, U+1F600 via a surrogate pair.
        let v: Value = from_str("\"\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{e9} \u{1f600}");
    }
}
