//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the exact surface it uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast, and statistically strong enough for
//! simulation and optimization workloads. Streams differ from upstream
//! `rand`, which only matters if bit-exact reproduction against the real
//! crate is required (it is not: every experiment seeds its own runs).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval. The blanket
/// [`SampleRange`] impls below are generic over this trait, so the item
/// type of a range literal like `0..5` is pinned by the call site (e.g.
/// slice indexing forces `usize`) exactly as with upstream `rand`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;

    /// Draws uniformly from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                ((start as i128) + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                ((start as i128) + v) as $t
            }
        }
    )*};
}

int_uniform_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let u: $t = Standard::sample(rng);
                start + u * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                // The closed endpoint has measure zero; reuse the
                // half-open sampler like upstream effectively does.
                Self::sample_half_open(start, end, rng)
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = r.gen_range(4..=12);
            assert!((4..=12).contains(&w));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {sum}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0) || r.gen_bool(1.0));
    }
}
