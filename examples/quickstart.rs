//! Quickstart: co-locate two latency-critical jobs with a background job
//! and let CLITE find a QoS-meeting, BG-friendly partition.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clite_repro::core::config::CliteConfig;
use clite_repro::core::controller::CliteController;
use clite_repro::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated Xeon Silver 4114 node (10 cores, 11 LLC ways, 10 units
    // each of memory bandwidth / capacity / disk bandwidth).
    let catalog = ResourceCatalog::testbed();

    // Two latency-critical jobs at moderate load plus one batch job.
    let jobs = vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.4),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.3),
        JobSpec::background(WorkloadId::Streamcluster),
    ];
    let mut server = Server::new(catalog, jobs, 42)?;

    // Show each LC job's QoS target (the knee of its isolation curve).
    for j in server.lc_indices() {
        let qos = server.qos(j).expect("LC jobs have QoS targets");
        println!(
            "{:<10} target p95 = {:>8.0} us at max load {:>8.0} QPS",
            server.workload(j).name(),
            qos.target_us,
            qos.max_qps
        );
    }

    // Run the CLITE controller: bootstrap -> BO search -> EI termination.
    let controller = CliteController::new(CliteConfig::default());
    let outcome = controller.run(&mut server)?;

    println!(
        "\nCLITE sampled {} configurations (QoS first met at sample {:?})",
        outcome.samples_used(),
        outcome.samples_to_qos
    );
    println!("best score (Eq. 3): {:.4}", outcome.best_score);
    println!("final partition:\n  {}", outcome.best_partition);

    // Inspect the winning configuration's per-job outcomes.
    let obs = server.observe(&outcome.best_partition);
    for j in &obs.jobs {
        match j.qos_met {
            Some(met) => println!(
                "  {:<14} p95 {:>8.0} us / target {:>8.0} us -> {}",
                j.workload.name(),
                j.latency_p95_us,
                j.qos_target_us.unwrap_or(f64::NAN),
                if met { "QoS met" } else { "QoS VIOLATED" }
            ),
            None => println!(
                "  {:<14} throughput at {:.0}% of isolation",
                j.workload.name(),
                100.0 * j.normalized_perf
            ),
        }
    }
    Ok(())
}
