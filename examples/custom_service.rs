//! Custom workloads: model your own service instead of the paper's
//! benchmarks, then let CLITE place it next to a standard mix.
//!
//! ```text
//! cargo run --release --example custom_service
//! ```

use clite_repro::core::controller::CliteController;
use clite_repro::sim::prelude::*;
use clite_repro::sim::workload::WorkloadProfileBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An imaginary "session store": memcached-like interface but with a
    // much larger working set and heavier per-query CPU (serialization).
    let session_store = WorkloadProfileBuilder::from(WorkloadId::Memcached)
        .cpu_time_us(400.0)
        .working_set_frac(0.35)
        .mem_intensity(0.55)
        .net_intensity(0.5)
        .build()
        .map_err(|e| format!("invalid profile: {e}"))?;

    let jobs = vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.4).with_profile(session_store),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.3),
        JobSpec::background(WorkloadId::Freqmine),
    ];
    let mut server = Server::new(ResourceCatalog::testbed(), jobs, 12)?;

    println!(
        "custom session store: QoS target {:.0} us, max load {:.0} QPS",
        server.qos(0).unwrap().target_us,
        server.qos(0).unwrap().max_qps
    );
    println!(
        "(stock memcached would be {:.0} us / {:.0} QPS)\n",
        QosSpec::derive(WorkloadId::Memcached, server.catalog()).target_us,
        QosSpec::derive(WorkloadId::Memcached, server.catalog()).max_qps
    );

    let outcome = CliteController::default().run(&mut server)?;
    println!(
        "CLITE: {} samples, score {:.4}, QoS {}",
        outcome.samples_used(),
        outcome.best_score,
        if outcome.qos_met() { "met" } else { "NOT met" }
    );
    println!("partition: {}", outcome.best_partition);
    Ok(())
}
