//! Policy face-off: run every co-location policy from the paper's
//! evaluation (Heracles, PARTIES, RAND+, GENETIC, CLITE, ORACLE) on the
//! same job mix and compare outcomes side by side.
//!
//! ```text
//! cargo run --release --example policy_faceoff [-- <lc_load_percent>]
//! ```

use clite_repro::bench::mixes::Mix;
use clite_repro::bench::runner::{final_eval, run_policy, PolicyKind};
use clite_repro::sim::workload::WorkloadId;

fn main() {
    let load: f64 =
        std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).map_or(0.3, |p| p / 100.0);

    let mix = Mix::new(
        &[(WorkloadId::ImgDnn, load), (WorkloadId::Memcached, load), (WorkloadId::Masstree, load)],
        &[WorkloadId::Streamcluster],
    );
    println!("mix: {}\n", mix.name);
    println!(
        "{:<10} {:>8} {:>9} {:>12} {:>14}",
        "policy", "samples", "QoS met", "score", "BG throughput"
    );

    for kind in PolicyKind::ALL {
        let outcome = run_policy(kind, &mix, 42);
        // Evaluate the chosen partition noise-free, as an operator would
        // measure it in steady state.
        let obs = final_eval(&mix, &outcome, 42);
        println!(
            "{:<10} {:>8} {:>9} {:>12.4} {:>13.0}%",
            kind.name(),
            outcome.samples_used(),
            obs.all_qos_met(),
            outcome.best_score,
            100.0 * obs.mean_bg_perf().unwrap_or(0.0),
        );
    }
    println!(
        "\nExpected shape (paper Fig. 9/13): Heracles ignores all but one LC job,\n\
         PARTIES meets QoS but leaves the BG job starved, CLITE meets QoS *and*\n\
         feeds the BG job, ORACLE bounds everyone."
    );
}
