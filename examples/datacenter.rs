//! Warehouse-scale placement: a stream of LC and BG jobs arrives at a
//! small fleet; the cluster scheduler admits each one onto the first node
//! where a CLITE search finds a QoS-feasible partition, and rejects jobs
//! no node can host — the "schedule elsewhere" rule the paper's ejection
//! logic presumes.
//!
//! ```text
//! cargo run --release --example datacenter [-- <nodes>]
//! ```

use clite_repro::cluster::placement::PlacementPolicy;
use clite_repro::cluster::scheduler::{ClusterScheduler, SchedulerConfig};
use clite_repro::sim::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    let mut rng = StdRng::seed_from_u64(2026);

    for policy in [PlacementPolicy::LeastLoaded, PlacementPolicy::MostLoaded] {
        let mut cluster = ClusterScheduler::new(
            nodes,
            SchedulerConfig { placement: policy.clone(), ..SchedulerConfig::default() },
            7,
        )?;

        // An arrival stream: 12 jobs, two-thirds latency-critical at
        // random loads, one-third batch.
        let mut arrivals = Vec::new();
        for i in 0..12 {
            if i % 3 == 2 {
                let w = WorkloadId::BACKGROUND[rng.gen_range(0..6)];
                arrivals.push(JobSpec::background(w));
            } else {
                let w = WorkloadId::LATENCY_CRITICAL[rng.gen_range(0..5)];
                let load = f64::from(rng.gen_range(1..=6)) * 0.1;
                arrivals.push(JobSpec::latency_critical(w, load));
            }
        }

        for spec in arrivals {
            let name = spec.workload.name();
            let load = spec.load.at(0.0);
            match cluster.submit(spec)? {
                Some(p) => println!(
                    "[{:<12}] {:<13} load {:>3.0}% -> node {}",
                    policy.name(),
                    name,
                    load * 100.0,
                    p.node
                ),
                None => println!(
                    "[{:<12}] {:<13} load {:>3.0}% -> REJECTED (no QoS-feasible node)",
                    policy.name(),
                    name,
                    load * 100.0
                ),
            }
        }

        let stats = cluster.stats();
        println!(
            "\n[{}] placed {} / rejected {} (admission {:.0}%), empty nodes: {}",
            policy.name(),
            stats.placed,
            stats.rejected,
            100.0 * stats.admission_rate(),
            stats.empty_nodes
        );
        for n in &stats.nodes {
            println!(
                "  node {}: {} jobs ({} LC, ΣLC load {:.0}%), QoS {}, BG perf {}",
                n.node,
                n.jobs,
                n.lc_jobs,
                n.lc_load * 100.0,
                if n.qos_met { "met" } else { "VIOLATED" },
                n.bg_perf.map_or("-".to_owned(), |p| format!("{:.0}%", p * 100.0)),
            );
        }
        println!();
    }
    Ok(())
}
