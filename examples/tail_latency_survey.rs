//! Tail-latency survey (the paper's Fig. 6 methodology): sweep each
//! latency-critical workload's offered load in isolation, print the
//! hockey-stick QPS-vs-p95 curve, and derive its QoS target (knee
//! latency) and maximum load (knee QPS).
//!
//! ```text
//! cargo run --release --example tail_latency_survey
//! ```

use clite_repro::sim::prelude::*;
use clite_repro::sim::queueing::isolation_sweep;

fn main() {
    let catalog = ResourceCatalog::testbed();
    for w in WorkloadId::LATENCY_CRITICAL {
        let spec = QosSpec::derive(w, &catalog);
        println!(
            "\n{} — QoS target {:.0} us, max load {:.0} QPS (unloaded p95 {:.0} us)",
            w.name(),
            spec.target_us,
            spec.max_qps,
            spec.unloaded_p95_us
        );
        let sweep = isolation_sweep(&w.profile(), &catalog, 14, 0.95);
        let max_p95 = sweep.last().map_or(1.0, |p| p.p95_us);
        for point in sweep {
            let bar = "#".repeat(((point.p95_us / max_p95) * 50.0).ceil() as usize);
            println!("{:>10.0} QPS | {:<50} {:>9.0} us", point.qps, bar, point.p95_us);
        }
    }
}
