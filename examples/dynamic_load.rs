//! Dynamic load adaptation (the paper's Fig. 16 scenario): memcached's
//! load steps up over time; CLITE's adaptive loop detects the sustained
//! QoS violations and re-runs its search, settling on a new partition.
//!
//! ```text
//! cargo run --release --example dynamic_load
//! ```

use clite_repro::core::adaptive::{run_adaptive, AdaptiveConfig, Phase};
use clite_repro::core::controller::CliteController;
use clite_repro::sim::load::LoadSchedule;
use clite_repro::sim::prelude::*;
use clite_repro::sim::resource::ResourceKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let step_s = 200.0;
    let jobs = vec![
        JobSpec::latency_critical_scheduled(
            WorkloadId::Memcached,
            LoadSchedule::Steps(vec![(0.0, 0.10), (step_s, 0.30), (2.0 * step_s, 0.60)]),
        ),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.10),
        JobSpec::latency_critical(WorkloadId::Masstree, 0.10),
        JobSpec::background(WorkloadId::Fluidanimate),
    ];
    let mut server = Server::new(ResourceCatalog::testbed(), jobs, 7)?;

    let trace = run_adaptive(
        &CliteController::default(),
        &mut server,
        3.0 * step_s,
        AdaptiveConfig::default(),
    )?;

    println!("memcached load: 10% -> 30% (t={step_s:.0}s) -> 60% (t={:.0}s)", 2.0 * step_s);
    println!("search invocations: {}", trace.invocations);
    println!("steady-state QoS fraction: {:.0}%\n", 100.0 * trace.steady_qos_fraction());
    println!(
        "{:>7}  {:<7} {:>10} {:>8} {:>8} {:>6}",
        "t (s)", "phase", "mem cores", "mem b/w", "BG perf", "QoS"
    );
    let step = (trace.points.len() / 36).max(1);
    for (i, p) in trace.points.iter().enumerate() {
        if i % step != 0 {
            continue;
        }
        println!(
            "{:>7.0}  {:<7} {:>10} {:>8} {:>7.0}% {:>6}",
            p.time_s,
            match p.phase {
                Phase::Search => "search",
                Phase::Steady => "steady",
            },
            p.partition.units(0, ResourceKind::Cores),
            p.partition.units(0, ResourceKind::MemBandwidth),
            100.0 * p.observation.mean_bg_perf().unwrap_or(0.0),
            if p.observation.all_qos_met() { "met" } else { "MISS" },
        );
    }
    Ok(())
}
