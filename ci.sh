#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 test suite.
#
#   ./ci.sh          # everything below
#   ./ci.sh quick    # skip the release build (lints + tests only)
#
# Must stay green before every commit. The tier-1 gate (ROADMAP.md) is
# `cargo build --release && cargo test -q`; the fmt and clippy steps keep
# the tree warning-free so regressions stand out.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --all --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo doc --no-deps (warnings denied, own crates only)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
    -p clite-sim -p clite-gp -p clite-bo -p clite -p clite-telemetry \
    -p clite-store -p clite-policies -p clite-cluster -p clite-bench \
    -p clite-faults -p clite-load -p clite-par -p clite-learn -p clite-repro

if [[ "${1:-}" != "quick" ]]; then
    step "cargo build --release"
    cargo build --release
fi

step "cargo test -q (tier-1)"
cargo test -q

step "cargo test --workspace -q"
cargo test --workspace -q

if [[ "${1:-}" != "quick" ]]; then
    # The workspace run above already covers these in debug; re-run the
    # serial == threaded / incremental == scratch equivalences under
    # release optimizations, where thread interleavings and float codegen
    # differ most. (Cluster admission byte-identity runs in the
    # CLITE_PAR_THREADS loop below, at both pool sizes.)

    # Fleet loop byte-identity (serial == threaded, single-lock == any
    # shard count, incremental == scratch stats) at 256 nodes with
    # injected crashes must hold under release codegen too.
    step "cargo test -p clite-cluster --test fleet --release -q"
    cargo test -p clite-cluster --test fleet --release -q

    step "cargo test -p clite-gp --test incremental --release -q"
    cargo test -p clite-gp --test incremental --release -q

    # Shared-pool byte-identity at two pool sizes: the determinism suites
    # must produce bit-identical suggestions whether the global pool has
    # one executor (everything inline) or four (work actually handed to
    # pool workers). Slot counts inside the suites cover 1/2/4/8, so the
    # pool-size x slot-count cross product spans under- and over-committed
    # pools under release codegen.
    for pool_size in 1 4; do
        step "byte-identity suite (CLITE_PAR_THREADS=$pool_size, release)"
        CLITE_PAR_THREADS=$pool_size \
            cargo test -p clite-par --release -q
        CLITE_PAR_THREADS=$pool_size \
            cargo test -p clite-bo --test parallel_determinism --release -q
        CLITE_PAR_THREADS=$pool_size \
            cargo test -p clite-gp --release -q hyper::tests::threaded_scan
        CLITE_PAR_THREADS=$pool_size \
            cargo test -p clite-cluster --test threaded --release -q
        # Training determinism: same seed => bit-identical weights at
        # any pool size (the suite itself crosses slot counts 1/2/4/8).
        CLITE_PAR_THREADS=$pool_size \
            cargo test -p clite-learn --release -q
    done

    # The observation store's crash-safety (truncated/bit-flipped tail
    # recovery) must hold under release codegen too.
    step "cargo test -p clite-store --release -q"
    cargo test -p clite-store --release -q

    # Chaos hardening: the fault-injection determinism proptests and the
    # controller's degradation ladder must hold under release codegen
    # (the rate-0 byte-identity check is float-codegen-sensitive).
    step "cargo test -p clite-faults --release -q"
    cargo test -p clite-faults --release -q

    step "cargo test -p clite --test chaos --release -q"
    cargo test -p clite --test chaos --release -q

    # End-to-end warm-start smoke test: a second colocate run against the
    # same store path must warm-start from the first run's samples.
    step "colocate --store smoke test"
    store_tmp="$(mktemp -d)"
    trap 'rm -rf "$store_tmp"' EXIT
    ./target/release/colocate run --store "$store_tmp/obs.clite" \
        memcached:30 xapian:30 streamcluster > "$store_tmp/first.txt"
    grep -q "store: miss" "$store_tmp/first.txt"
    ./target/release/colocate run --store "$store_tmp/obs.clite" \
        memcached:30 xapian:30 streamcluster > "$store_tmp/second.txt"
    grep -q "store: hit" "$store_tmp/second.txt"

    # Chaos smoke test: a forced node crash must degrade gracefully —
    # fallback engaged, marker printed, exit 0 — never panic.
    step "colocate --faults smoke test"
    ./target/release/colocate run --faults crash=6 --seed 42 \
        memcached:40 img-dnn:30 streamcluster > "$store_tmp/chaos.txt"
    grep -q "fallback engaged" "$store_tmp/chaos.txt"
    grep -q "chaos: degraded gracefully without panic" "$store_tmp/chaos.txt"
    ./target/release/colocate run --faults default --seed 42 \
        memcached:40 img-dnn:30 streamcluster > "$store_tmp/chaos2.txt"
    grep -q "without panic" "$store_tmp/chaos2.txt"

    # Load-harness regression gate: run the smoke-scale loadtest and diff
    # its tail percentiles against the committed baseline report with
    # loadgate (exit 1 on a p99/p99.9 regression beyond tolerance).
    # loadgate exits 3 when the baseline is missing or unreadable — the
    # bootstrap signal: commit the current report as the new baseline
    # instead of failing the build. Exit 1 (regression) and exit 2
    # (broken current report) still fail CI.
    step "loadtest smoke + loadgate tail-regression gate"
    CLITE_LOAD_REPORT="$store_tmp/load_smoke.json" \
        ./target/release/experiments loadtest --quick --seed 42 > "$store_tmp/loadtest.txt"
    grep -q "CLITE p99 vs equal-share" "$store_tmp/loadtest.txt"
    baseline="results/reports/load_smoke.json"
    gate_status=0
    ./target/release/loadgate "$store_tmp/load_smoke.json" --previous "$baseline" \
        || gate_status=$?
    if [[ "$gate_status" -eq 3 ]]; then
        mkdir -p "$(dirname "$baseline")"
        cp "$store_tmp/load_smoke.json" "$baseline"
        echo "loadgate: bootstrapped baseline at $baseline (commit it)"
    elif [[ "$gate_status" -ne 0 ]]; then
        exit "$gate_status"
    fi

    # Fleet smoke test: stream a crash-laden event trace over a 64-node
    # fleet through the CLI (serial, then threaded over 4 shards) — both
    # must finish with the completion marker, never panic.
    step "colocate fleet smoke test"
    ./target/release/colocate fleet --nodes 64 \
        --faults crash_prob=0.35,crash_max=20 > "$store_tmp/fleet.txt"
    grep -q "without panic" "$store_tmp/fleet.txt"
    ./target/release/colocate fleet --nodes 64 --threaded --shards 4 \
        --faults crash_prob=0.35,crash_max=20 > "$store_tmp/fleet2.txt"
    grep -q "without panic" "$store_tmp/fleet2.txt"

    # Fleet scale experiment: regenerate the committed benchmark artifact
    # (nodes-vs-admission-latency + sharded-vs-mutex store curves). The
    # experiment itself asserts serial == threaded byte-identity at every
    # scale point and that injected crashes actually kill nodes.
    step "fleet experiment (results/BENCH_pr7.json)"
    ./target/release/experiments fleet --quick --seed 42 > "$store_tmp/fleet_exp.txt"
    grep -q "benchmark artifact written" "$store_tmp/fleet_exp.txt"

    # Parallel-substrate scaling: regenerate the committed speedup-curve
    # artifact. The experiment asserts byte-identical suggestions at every
    # slot count and fails (pass=false) if the modeled 4-worker speedup
    # drops below 2x or the pooled 1-worker scan loses to the pre-PR
    # scoped-spawn baseline.
    step "par experiment (results/BENCH_pr8.json)"
    ./target/release/experiments par --full --seed 42 > "$store_tmp/par_exp.txt"
    grep -q "benchmark artifact written" "$store_tmp/par_exp.txt"
    grep -q "PASS" "$store_tmp/par_exp.txt"

    # Placement-model training smoke test: fit a smoke-scale model,
    # verify its checksummed round trip (colocate train does both), and
    # serve it through the fleet CLI — the learned path must finish with
    # the completion marker.
    step "colocate train + learned fleet smoke test"
    ./target/release/colocate train --out "$store_tmp/placement.model" \
        --groups 10 --epochs 4 > "$store_tmp/train.txt"
    grep -q "round trip verified" "$store_tmp/train.txt"
    ./target/release/colocate fleet --nodes 64 \
        --placement learned --model "$store_tmp/placement.model" \
        --faults crash_prob=0.35,crash_max=20 > "$store_tmp/fleet_learned.txt"
    grep -q "without panic" "$store_tmp/fleet_learned.txt"

    # Durable-recovery byte-identity: the kill-at-every-event replay
    # sweep at 64 nodes and the journal torn-tail/bit-flip proptests
    # must hold under release codegen (the witness comparison is
    # float-codegen-sensitive, like the other identity suites).
    step "cargo test -p clite-cluster --test recovery --release -q"
    cargo test -p clite-cluster --test recovery --release -q

    step "cargo test -p clite-store --test journal_props --release -q"
    cargo test -p clite-store --test journal_props --release -q

    # Kill-and-recover CLI smoke test: journal a fleet run, kill it
    # mid-trace, then resume from the journal — the recovered run must
    # report the replayed suffix and still reach the completion marker.
    step "colocate fleet --journal kill-and-recover smoke test"
    journal_tmp="$store_tmp/fleet-journal"
    ./target/release/colocate fleet --nodes 32 --events 12 \
        --journal "$journal_tmp" --kill-after 6 > "$store_tmp/fleet_kill.txt"
    grep -q "fleet: killed after journaling event 6" "$store_tmp/fleet_kill.txt"
    ./target/release/colocate fleet --nodes 32 --events 12 \
        --journal "$journal_tmp" --recover > "$store_tmp/fleet_recover.txt"
    grep -q "recovery: replayed" "$store_tmp/fleet_recover.txt"
    grep -q "without panic" "$store_tmp/fleet_recover.txt"

    # Recovery experiment: regenerate the committed benchmark artifact.
    # The experiment asserts byte-identical recovery at every kill point
    # (both WAL boundaries), threaded == serial across a crash, and the
    # overload gates (deadline-bounded admission tail, journaled sheds).
    step "recovery experiment (results/BENCH_pr10.json)"
    ./target/release/experiments recovery --quick --seed 42 > "$store_tmp/recovery_exp.txt"
    grep -q "benchmark artifact written" "$store_tmp/recovery_exp.txt"
    grep -q "recovery: PASS" "$store_tmp/recovery_exp.txt"

    # Placement A/B experiment: regenerate the committed benchmark
    # artifact. The experiment asserts serial == threaded byte-identity
    # in both arms and fails the gate unless the learned ordering
    # matches or beats the heuristic QoS-safe fraction at every scale
    # point with admission within 2 pp.
    step "placement experiment (results/BENCH_pr9.json)"
    ./target/release/experiments placement --quick --seed 42 > "$store_tmp/placement_exp.txt"
    grep -q "benchmark artifact written" "$store_tmp/placement_exp.txt"
    grep -q "placement: PASS" "$store_tmp/placement_exp.txt"

    # Benches must at least keep compiling (they are the perf record).
    step "cargo bench --no-run"
    cargo bench --no-run
fi

printf '\nCI green.\n'
