//! End-to-end determinism of the parallel fast paths: a BO run with both
//! the threaded hyper-grid scan and the threaded multi-start climbs must
//! produce the byte-identical `Suggestion` sequence as a serial run, for
//! any thread count. This is the contract that lets deployments turn on
//! `BoConfig::with_threads` without re-validating search behaviour.

use clite_bo::engine::{BoConfig, BoEngine, Suggestion};
use clite_bo::space::SearchSpace;
use clite_sim::alloc::Partition;
use clite_sim::resource::{ResourceCatalog, ResourceKind};

/// Deterministic synthetic objective rewarding an uneven split, so the
/// search has real structure to climb.
fn objective(p: &Partition) -> f64 {
    let jobs = p.job_count();
    let mut v = 0.55 * p.fraction(0, ResourceKind::Cores)
        + 0.30 * p.fraction(jobs - 1, ResourceKind::LlcWays);
    for j in 0..jobs {
        v += 0.05 * p.fraction(j, ResourceKind::MemBandwidth) / jobs as f64;
    }
    v
}

/// Runs bootstrap + `rounds` suggest/record iterations and returns the
/// suggestion trace.
fn run(jobs: usize, seed: u64, config: BoConfig, rounds: usize) -> Vec<Suggestion> {
    let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
    let mut engine = BoEngine::new(space, config, seed);
    for p in engine.bootstrap_samples().unwrap() {
        let y = objective(&p);
        engine.record(p, y);
    }
    let mut trace = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Exercise the frozen-row (dropout-copy) path on some rounds too.
        // (Needs >= 3 jobs: with 2, freezing a row empties the
        // unit-transfer neighborhood.)
        let frozen = if jobs >= 3 && round % 4 == 3 {
            Some((jobs - 1, *engine.space().equal_share().unwrap().job(jobs - 1)))
        } else {
            None
        };
        let s = engine.suggest(frozen).unwrap();
        let y = objective(&s.partition);
        engine.record(s.partition.clone(), y);
        trace.push(s);
    }
    trace
}

fn assert_traces_identical(serial: &[Suggestion], parallel: &[Suggestion], label: &str) {
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(a.partition, b.partition, "{label}: partition diverged at round {i}");
        assert_eq!(
            a.expected_improvement.to_bits(),
            b.expected_improvement.to_bits(),
            "{label}: EI diverged at round {i}: {} vs {}",
            a.expected_improvement,
            b.expected_improvement
        );
        assert_eq!(
            a.posterior_mean.to_bits(),
            b.posterior_mean.to_bits(),
            "{label}: posterior mean diverged at round {i}"
        );
        assert_eq!(
            a.posterior_std.to_bits(),
            b.posterior_std.to_bits(),
            "{label}: posterior std diverged at round {i}"
        );
    }
}

/// Full-run byte-identity across thread counts, covering both a small and
/// a paper-sized job mix. The 13 rounds with `hyper_refresh_every = 5`
/// cross two hyper refreshes, so the trace exercises all three surrogate
/// paths (cached rank-1-extended, cached-kernel refit, threaded grid
/// refresh) plus the threaded acquisition climbs.
///
/// Slot counts 1/2/4/8 are the worker counts the CI byte-identity gate
/// pins (it re-runs this suite under `CLITE_PAR_THREADS=1` and `=4`, so
/// the slots × pool-size cross product covers under- and over-committed
/// pools); 16 over-commits any grid/start set.
#[test]
fn threaded_run_is_byte_identical_to_serial() {
    for &jobs in &[2usize, 3] {
        let serial = run(jobs, 17, BoConfig::default(), 13);
        for &threads in &[1usize, 2, 4, 8, 16] {
            let par = run(jobs, 17, BoConfig::default().with_threads(threads), 13);
            assert_traces_identical(&serial, &par, &format!("jobs={jobs} threads={threads}"));
        }
    }
}

/// Degenerate worker counts (0 is clamped to 1; more workers than grid
/// points or starts) must not change anything either.
#[test]
fn degenerate_thread_counts_match_serial() {
    let serial = run(2, 99, BoConfig::default(), 6);
    for &threads in &[0usize, 1, 64] {
        let par = run(2, 99, BoConfig::default().with_threads(threads), 6);
        assert_traces_identical(&serial, &par, &format!("threads={threads}"));
    }
}
