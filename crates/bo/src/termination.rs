//! Expected-improvement-based termination (paper Sec. 4).
//!
//! CLITE avoids a static iteration budget: it stops when the acquisition
//! signal dries up — "when the expected improvement drops below a certain
//! threshold", with the threshold "as low as 1%" but scaled by the number
//! of co-located jobs because the EI curve decays more slowly with more
//! jobs. [`Termination`] implements that, with one robustness addition:
//! the stop also requires the *realized* improvement over a trailing
//! window to be below the threshold, so a run that is still climbing
//! steadily (e.g. during local polish, where a smooth surrogate
//! under-reports EI) is never cut off mid-ascent. A hard iteration cap is
//! the safety net.

use serde::Serialize;

/// Termination condition configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Termination {
    /// Base relative threshold: candidate-stopping iterations are those
    /// where both the max EI and the trailing-window realized gain are
    /// below `threshold × max(best, floor)`. The paper's "as low as 1%"
    /// corresponds to `0.01`.
    pub ei_threshold: f64,
    /// Consecutive below-threshold iterations required before stopping.
    pub patience: usize,
    /// Trailing window (iterations) over which realized improvement is
    /// measured.
    pub window: usize,
    /// Hard cap on search iterations (bootstrap samples excluded).
    pub max_iterations: usize,
}

impl Default for Termination {
    fn default() -> Self {
        Self { ei_threshold: 0.03, patience: 4, window: 7, max_iterations: 60 }
    }
}

impl Termination {
    /// Threshold after job-count scaling: with more co-located jobs the EI
    /// decays more slowly, so the effective threshold is raised
    /// proportionally to avoid unbounded searches (`threshold × (1 +
    /// (jobs − 1)/4)`).
    #[must_use]
    pub fn scaled_threshold(&self, jobs: usize) -> f64 {
        self.ei_threshold * (1.0 + (jobs.saturating_sub(1)) as f64 / 4.0)
    }

    /// Creates tracking state for one search run.
    #[must_use]
    pub fn start(&self, jobs: usize) -> TerminationState {
        TerminationState {
            config: *self,
            threshold: self.scaled_threshold(jobs),
            best_history: Vec::new(),
            below_count: 0,
            iterations: 0,
        }
    }
}

/// Mutable tracking state for the termination condition.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminationState {
    config: Termination,
    threshold: f64,
    best_history: Vec<f64>,
    below_count: usize,
    iterations: usize,
}

impl TerminationState {
    /// Records one search iteration's maximum expected improvement and the
    /// incumbent best score; returns `true` if the search should stop.
    pub fn record(&mut self, max_ei: f64, best_score: f64) -> bool {
        self.iterations += 1;
        self.best_history.push(best_score);
        let reference = best_score.abs().max(0.1);
        let bar = self.threshold * reference;

        let w = self.config.window.min(self.best_history.len());
        let window_gain = best_score - self.best_history[self.best_history.len() - w];

        if max_ei < bar && window_gain < bar {
            self.below_count += 1;
        } else {
            self.below_count = 0;
        }
        self.should_stop()
    }

    /// Whether the condition has been met.
    #[must_use]
    pub fn should_stop(&self) -> bool {
        self.below_count >= self.config.patience || self.iterations >= self.config.max_iterations
    }

    /// Whether the stop was caused by the EI drying up (a genuine
    /// convergence signal) rather than the hard iteration cap.
    #[must_use]
    pub fn stopped_by_threshold(&self) -> bool {
        self.below_count >= self.config.patience
    }

    /// Iterations recorded so far.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(patience: usize) -> Termination {
        Termination { ei_threshold: 0.01, patience, window: 5, max_iterations: 100 }
    }

    #[test]
    fn stops_after_patience_consecutive_lows() {
        let mut s = quick(3).start(2);
        assert!(!s.record(1.0, 0.5));
        assert!(!s.record(1e-6, 0.5));
        assert!(!s.record(1e-6, 0.5));
        assert!(s.record(1e-6, 0.5));
    }

    #[test]
    fn high_ei_resets_patience() {
        let mut s = quick(2).start(2);
        assert!(!s.record(1e-6, 0.5));
        assert!(!s.record(0.9, 0.5), "high EI resets the counter");
        assert!(!s.record(1e-6, 0.5));
        assert!(s.record(1e-6, 0.5));
    }

    #[test]
    fn steady_realized_progress_prevents_stopping() {
        // EI stays ~0, but the best keeps climbing by 2% of its value per
        // iteration: the window gain keeps the run alive.
        let mut s = quick(3).start(2);
        let mut best = 0.5;
        for _ in 0..30 {
            best += 0.012;
            assert!(!s.record(1e-9, best), "climbing run must not stop");
        }
        // Once progress stalls, it stops within window + patience.
        let mut stopped = false;
        for _ in 0..10 {
            if s.record(1e-9, best) {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
    }

    #[test]
    fn hard_cap_fires() {
        let t = Termination { ei_threshold: 1e-12, patience: 100, window: 5, max_iterations: 5 };
        let mut s = t.start(2);
        for i in 0..5 {
            let stop = s.record(10.0, 0.5);
            assert_eq!(stop, i == 4, "iteration {i}");
        }
        assert_eq!(s.iterations(), 5);
        assert!(!s.stopped_by_threshold());
    }

    #[test]
    fn threshold_scales_with_jobs() {
        let t = Termination::default();
        assert!(t.scaled_threshold(4) > t.scaled_threshold(2));
        assert!((t.scaled_threshold(1) - t.ei_threshold).abs() < 1e-15);
    }
}
