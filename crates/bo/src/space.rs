//! The feasible search space of allocation matrices.

use rand::Rng;
use serde::Serialize;

use clite_sim::alloc::Partition;
use clite_sim::resource::{ResourceCatalog, ResourceKind, NUM_RESOURCES};
use clite_sim::SimError;

use crate::BoError;

/// The set of feasible partitions for a catalog and a number of co-located
/// jobs, plus the encoding the surrogate model sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SearchSpace {
    catalog: ResourceCatalog,
    jobs: usize,
}

impl SearchSpace {
    /// Builds the space, verifying the catalog can host `jobs` jobs.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::Space`] if some resource has fewer units than
    /// jobs, or if `jobs` is zero.
    pub fn new(catalog: ResourceCatalog, jobs: usize) -> Result<Self, BoError> {
        if jobs == 0 {
            return Err(BoError::Space(SimError::NoJobs));
        }
        for r in ResourceKind::ALL {
            if (catalog.units(r) as usize) < jobs {
                return Err(BoError::Space(SimError::TooManyJobs {
                    resource: r,
                    units: catalog.units(r),
                    jobs,
                }));
            }
        }
        Ok(Self { catalog, jobs })
    }

    /// The underlying resource catalog.
    #[must_use]
    pub fn catalog(&self) -> &ResourceCatalog {
        &self.catalog
    }

    /// Number of co-located jobs.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Dimensionality of the GP feature space (`N_jobs × N_res`).
    #[must_use]
    pub fn dims(&self) -> usize {
        self.jobs * NUM_RESOURCES
    }

    /// Number of feasible configurations (the paper's Sec. 2 formula).
    #[must_use]
    pub fn size(&self) -> u128 {
        self.catalog.total_configurations(self.jobs)
    }

    /// The equal-division partition.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::Space`] if the partition cannot be built; with a
    /// space validated at construction this indicates an internal
    /// inconsistency, surfaced as an error instead of a panic.
    pub fn equal_share(&self) -> Result<Partition, BoError> {
        Ok(Partition::equal_share(&self.catalog, self.jobs)?)
    }

    /// The extremum partition giving `job` everything possible.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::Space`] if `job` is out of range.
    pub fn max_for_job(&self, job: usize) -> Result<Partition, BoError> {
        Ok(Partition::max_for_job(&self.catalog, self.jobs, job)?)
    }

    /// A uniformly random feasible partition.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::Space`] if the partition cannot be built (see
    /// [`SearchSpace::equal_share`]).
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Partition, BoError> {
        Ok(Partition::random(&self.catalog, self.jobs, rng)?)
    }

    /// GP feature encoding of a partition (normalized fractions).
    #[must_use]
    pub fn encode(&self, partition: &Partition) -> Vec<f64> {
        debug_assert_eq!(partition.job_count(), self.jobs);
        partition.features()
    }

    /// [`SearchSpace::encode`] into a caller-provided buffer — the
    /// allocation-free twin for the acquisition hot loop.
    pub fn encode_into(&self, partition: &Partition, out: &mut Vec<f64>) {
        debug_assert_eq!(partition.job_count(), self.jobs);
        partition.features_into(out);
    }

    /// Exhaustively enumerates **every** feasible partition of this space
    /// (the literal version of the paper's ORACLE sweep). The count is
    /// [`SearchSpace::size`]; callers should check it first — the testbed
    /// space for 3+ jobs runs into the hundreds of millions.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::Space`] if an enumerated composition fails the
    /// partition feasibility checks (an internal inconsistency).
    pub fn enumerate(&self) -> Result<Vec<Partition>, BoError> {
        // Per-resource: all compositions of units(r) into `jobs` positive
        // parts; the space is their Cartesian product.
        let per_resource: Vec<Vec<Vec<u32>>> = ResourceKind::ALL
            .iter()
            .map(|&r| compositions(self.catalog.units(r), self.jobs))
            .collect();

        let mut out = Vec::new();
        let mut indices = [0usize; NUM_RESOURCES];
        'outer: loop {
            let rows: Vec<clite_sim::alloc::JobAllocation> = (0..self.jobs)
                .map(|j| {
                    let mut units = [0u32; NUM_RESOURCES];
                    for (ri, comps) in per_resource.iter().enumerate() {
                        units[ri] = comps[indices[ri]][j];
                    }
                    clite_sim::alloc::JobAllocation::from_units(units)
                })
                .collect();
            out.push(Partition::from_rows(self.catalog, rows)?);
            // Odometer increment.
            for ri in 0..NUM_RESOURCES {
                indices[ri] += 1;
                if indices[ri] < per_resource[ri].len() {
                    continue 'outer;
                }
                indices[ri] = 0;
            }
            break;
        }
        Ok(out)
    }
}

/// All compositions of `total` into `parts` positive integers, in
/// lexicographic order.
fn compositions(total: u32, parts: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut current = vec![0u32; parts];
    fn rec(total: u32, idx: usize, parts: usize, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if idx == parts - 1 {
            current[idx] = total;
            out.push(current.clone());
            return;
        }
        let remaining_parts = (parts - idx - 1) as u32;
        for v in 1..=(total - remaining_parts) {
            current[idx] = v;
            rec(total - v, idx + 1, parts, current, out);
        }
    }
    rec(total, 0, parts, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_checks_feasibility() {
        assert!(SearchSpace::new(ResourceCatalog::testbed(), 4).is_ok());
        assert!(SearchSpace::new(ResourceCatalog::testbed(), 0).is_err());
        assert!(SearchSpace::new(ResourceCatalog::testbed(), 11).is_err());
    }

    #[test]
    fn dims_and_size() {
        let s = SearchSpace::new(ResourceCatalog::testbed(), 3).unwrap();
        assert_eq!(s.dims(), 18);
        assert!(s.size() > 1_000_000, "testbed space is large: {}", s.size());
    }

    #[test]
    fn enumeration_matches_size_formula() {
        let catalog = ResourceCatalog::new([4, 3, 3, 3, 3, 3]).unwrap();
        let s = SearchSpace::new(catalog, 2).unwrap();
        let all = s.enumerate().unwrap();
        assert_eq!(all.len() as u128, s.size());
        // All distinct.
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn single_job_space_has_one_partition() {
        let s = SearchSpace::new(ResourceCatalog::testbed(), 1).unwrap();
        assert_eq!(s.size(), 1);
        assert_eq!(s.enumerate().unwrap().len(), 1);
    }

    #[test]
    fn generators_produce_right_shape() {
        let s = SearchSpace::new(ResourceCatalog::testbed(), 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.equal_share().unwrap().job_count(), 3);
        assert_eq!(s.max_for_job(2).unwrap().job_count(), 3);
        assert!(s.max_for_job(3).is_err());
        let p = s.random(&mut rng).unwrap();
        assert_eq!(s.encode(&p).len(), 18);
    }
}
