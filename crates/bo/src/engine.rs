//! The BO loop (paper Algorithm 1), decoupled from what the score means.
//!
//! [`BoEngine`] owns the sampled history, the GP surrogate, and the
//! acquisition maximizer. Callers drive it:
//!
//! 1. evaluate the [`bootstrap_samples`](BoEngine::bootstrap_samples) and
//!    [`record`](BoEngine::record) their scores;
//! 2. repeatedly [`suggest`](BoEngine::suggest) → run the system under the
//!    suggested partition → `record` the observed score;
//! 3. stop when the suggestion's expected improvement satisfies the
//!    termination condition (see [`crate::termination`]).
//!
//! Dropout-copy enters through `suggest`'s `frozen` argument: the caller
//! (CLITE) picks which job to freeze and at which allocation; the engine
//! restricts the acquisition search accordingly.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use clite_gp::gp::{GaussianProcess, GpConfig, PredictScratch};
use clite_gp::hyper::{fit_best_threaded, HyperGrid};
use clite_gp::kernel::{Kernel, KernelFamily};
use clite_sim::alloc::{JobAllocation, Partition};
use clite_sim::resource::NUM_RESOURCES;
use clite_telemetry::{Event, Phase, Telemetry};

use crate::acquisition::Acquisition;
use crate::bootstrap::bootstrap_partitions;
use crate::optimizer::{maximize_acquisition, AcquisitionEval, EvalScratch, OptimizerConfig};
use crate::space::SearchSpace;
use crate::BoError;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BoConfig {
    /// Kernel family for the surrogate (paper: Matérn).
    pub kernel_family: KernelFamily,
    /// Hyperparameter grid scanned when the surrogate is refreshed.
    pub hyper_grid: HyperGrid,
    /// GP observation-noise variance (absorbs the simulator's measurement
    /// noise on scores).
    pub gp_noise: f64,
    /// Acquisition function (paper: EI with ζ = 0.01).
    pub acquisition: Acquisition,
    /// Acquisition-maximizer settings.
    pub optimizer: OptimizerConfig,
    /// Re-run the hyperparameter grid every this many new observations
    /// (between refreshes the previous kernel is reused — hyperparameters
    /// drift slowly, and the surrogate is extended incrementally via a
    /// rank-1 Cholesky update instead of refitted).
    pub hyper_refresh_every: usize,
    /// Worker threads for the hyper-grid scan on refresh (1 = serial;
    /// results are byte-identical for any value).
    pub hyper_threads: usize,
}

impl Default for BoConfig {
    fn default() -> Self {
        Self {
            kernel_family: KernelFamily::Matern52,
            hyper_grid: HyperGrid::default_unit(),
            gp_noise: 1e-4,
            acquisition: Acquisition::paper_default(),
            optimizer: OptimizerConfig::default(),
            hyper_refresh_every: 5,
            hyper_threads: 1,
        }
    }
}

impl BoConfig {
    /// Returns a copy with both parallel paths — the hyper-grid scan and
    /// the acquisition multi-start climbs — using up to `threads` workers.
    /// Suggestions are byte-identical for any thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.hyper_threads = threads;
        self.optimizer.threads = threads;
        self
    }
}

/// A suggested next configuration with its acquisition diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Suggestion {
    /// The partition to evaluate next.
    pub partition: Partition,
    /// Acquisition value at the suggestion (EI for the default config);
    /// feeds the termination condition.
    pub expected_improvement: f64,
    /// Surrogate posterior mean at the suggestion.
    pub posterior_mean: f64,
    /// Surrogate posterior standard deviation at the suggestion.
    pub posterior_std: f64,
}

/// The engine's acquisition surface: GP posterior fed into the configured
/// acquisition function, with the structural fast paths the hill climb
/// exposes through [`AcquisitionEval::best_neighbor`]:
///
/// * **Transfer-incremental distances** — a climb step's neighbours each
///   differ from the step base in exactly two feature coordinates (the
///   donor's and recipient's fraction of the transferred resource), so the
///   step caches the base's squared distances to every training point once
///   and shifts them in O(n) per neighbour instead of recomputing O(n·d).
/// * **Bound-gated variance** — the exact posterior mean is O(n); only the
///   variance needs the O(n²) triangular solve. A cheap upper bound on the
///   posterior std ([`GaussianProcess::gate_append`]) bounds the
///   acquisition from above ([`Acquisition::score_upper_bound`]); a
///   candidate whose optimistic score cannot beat the step's entry value
///   (the floor never decreases within a step) is dropped without a solve.
/// * **Batched variance solves** — steepest ascent needs every surviving
///   neighbour's exact variance anyway, so the step resolves them all in
///   one blocked multi-RHS forward substitution
///   ([`GaussianProcess::batch_stds_pooled`]). A single candidate's solve
///   is latency-bound on its own dependency chain; blocking four
///   independent chains per pass is what breaks that bound, and batches
///   large enough to amortize a dispatch chunk across the shared worker
///   pool in 4-RHS-aligned slabs.
///
/// All three leave climb trajectories — and therefore suggestions —
/// unchanged: gated-out candidates provably could not have won, and the
/// final argmax replays the serial visitor's first-strictly-better
/// tie-breaking over enumeration order.
struct SurrogateAcq<'a> {
    gp: &'a GaussianProcess,
    space: SearchSpace,
    acquisition: Acquisition,
    best_score: f64,
    /// Pool slots for the blocked multi-RHS variance solve
    /// ([`GaussianProcess::batch_stds_pooled`]): surviving-neighbour
    /// batches below [`Cholesky::POOLED_MIN_RHS`] per slot fall back to
    /// the serial solver, so small steps pay nothing and large batches
    /// chunk across the shared pool bit-identically.
    ///
    /// [`Cholesky::POOLED_MIN_RHS`]: clite_gp::Cholesky::POOLED_MIN_RHS
    batch_slots: usize,
}

impl AcquisitionEval for SurrogateAcq<'_> {
    fn eval(&self, p: &Partition, scratch: &mut EvalScratch) -> f64 {
        self.space.encode_into(p, &mut scratch.features);
        let (mean, std) = self.gp.predict_std_into(&scratch.features, &mut scratch.gp);
        self.acquisition.score(mean, std, self.best_score)
    }

    fn best_neighbor(
        &self,
        current: &Partition,
        frozen_job: Option<usize>,
        floor: f64,
        scratch: &mut EvalScratch,
    ) -> Option<(Partition, f64)> {
        let kernel = self.gp.kernel();
        self.space.encode_into(current, &mut scratch.features);
        self.gp.scaled_sq_dists_into(
            &scratch.features,
            &mut scratch.base_scaled,
            &mut scratch.base_sq_dists,
        );

        // Pass 1 — per neighbour: shift the base distances, compute the
        // exact mean and the optimistic score; keep only candidates the
        // bound cannot rule out. Gating against the *entry* floor is sound
        // because the running best within a step only rises above it.
        scratch.kstar_flat.clear();
        scratch.cand_means.clear();
        scratch.cand_idx.clear();
        let mut enum_idx = 0usize;
        current.for_each_neighbor_transfer(frozen_job, |n, transfer| {
            let idx = enum_idx;
            enum_idx += 1;
            let ri = transfer.resource.index();
            let col_from = transfer.from * NUM_RESOURCES + ri;
            let col_to = transfer.to * NUM_RESOURCES + ri;
            let changes = [
                (
                    col_from,
                    scratch.base_scaled[col_from],
                    kernel.scaled_coord(col_from, n.fraction(transfer.from, transfer.resource)),
                ),
                (
                    col_to,
                    scratch.base_scaled[col_to],
                    kernel.scaled_coord(col_to, n.fraction(transfer.to, transfer.resource)),
                ),
            ];
            self.gp.shift_sq_dists(&scratch.base_sq_dists, changes, &mut scratch.neighbor_sq_dists);
            let before = scratch.kstar_flat.len();
            let gated = self.gp.gate_append(&scratch.neighbor_sq_dists, &mut scratch.kstar_flat);
            let upper =
                self.acquisition.score_upper_bound(gated.mean, gated.std_upper, self.best_score);
            if upper <= floor {
                scratch.kstar_flat.truncate(before);
            } else {
                scratch.cand_means.push(gated.mean);
                scratch.cand_idx.push(idx);
            }
        });
        if scratch.cand_idx.is_empty() {
            return None;
        }

        // Pass 2 — all survivors' exact variances in one blocked solve.
        self.gp.batch_stds_pooled(
            &scratch.kstar_flat,
            &mut scratch.v_flat,
            &mut scratch.cand_stds,
            self.batch_slots,
        );

        // Argmax with the serial visitor's semantics: first strictly-better
        // candidate in enumeration order wins, seeded at `floor`.
        let mut best: Option<usize> = None;
        let mut best_val = floor;
        for (i, (&mean, &std)) in scratch.cand_means.iter().zip(&scratch.cand_stds).enumerate() {
            let v = self.acquisition.score(mean, std, self.best_score);
            if v > best_val {
                best_val = v;
                best = Some(i);
            }
        }
        best.map(|i| {
            let n = current
                .nth_neighbor(frozen_job, scratch.cand_idx[i])
                .expect("index enumerated by for_each_neighbor_transfer");
            (n, best_val)
        })
    }
}

/// The Bayesian-optimization engine over a partition search space.
#[derive(Debug, Clone)]
pub struct BoEngine {
    space: SearchSpace,
    config: BoConfig,
    history: Vec<(Partition, f64)>,
    visited: HashSet<Partition>,
    rng: StdRng,
    kernel: Option<Kernel>,
    records_since_refresh: usize,
    /// The maintained surrogate between hyper refreshes: kept in sync with
    /// `history` by O(n²) rank-1 extensions in `record`, so `suggest` only
    /// refits from scratch when the hyper grid is re-scanned.
    surrogate: Option<GaussianProcess>,
}

impl BoEngine {
    /// Builds an engine for `space`, seeded deterministically.
    #[must_use]
    pub fn new(space: SearchSpace, config: BoConfig, seed: u64) -> Self {
        Self {
            space,
            config,
            history: Vec::new(),
            visited: HashSet::new(),
            rng: StdRng::seed_from_u64(seed),
            kernel: None,
            records_since_refresh: 0,
            surrogate: None,
        }
    }

    /// The search space of this engine.
    #[must_use]
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The kernel chosen by the most recent hyper-grid refresh, if any
    /// (diagnostics; also lets benchmarks pit alternative surrogate
    /// implementations against the engine on the same EI landscape).
    #[must_use]
    pub fn current_kernel(&self) -> Option<&Kernel> {
        self.kernel.as_ref()
    }

    /// The paper's informed bootstrap set for this space.
    ///
    /// # Errors
    ///
    /// Propagates [`BoError::Space`] from extremum construction.
    pub fn bootstrap_samples(&self) -> Result<Vec<Partition>, BoError> {
        bootstrap_partitions(&self.space)
    }

    /// Records one evaluated configuration.
    pub fn record(&mut self, partition: Partition, score: f64) {
        self.record_with(partition, score, &Telemetry::disabled());
    }

    /// [`record`](BoEngine::record) with telemetry: when a surrogate is
    /// maintained and the next suggestion will not re-scan the hyper grid
    /// anyway, the surrogate is extended in place by a rank-1 Cholesky
    /// update (O(n²), timed as [`Phase::GpExtend`]) instead of being
    /// refitted from scratch (O(n³)) on the next `suggest`.
    pub fn record_with(&mut self, partition: Partition, score: f64, telemetry: &Telemetry<'_>) {
        let refresh_next = self.kernel.is_none()
            || self.records_since_refresh + 1 >= self.config.hyper_refresh_every;
        if refresh_next {
            // The next suggest refits from scratch; keeping the stale
            // surrogate would only risk serving it by accident.
            self.surrogate = None;
        } else if let Some(gp) = self.surrogate.take() {
            if gp.len() == self.history.len() {
                let x = self.space.encode(&partition);
                // A failed extension (and the fallback refit inside it)
                // just drops the surrogate; the next suggest refits.
                self.surrogate = telemetry.time(Phase::GpExtend, || gp.extended(x, score)).ok();
            }
        }
        self.visited.insert(partition.clone());
        self.history.push((partition, score));
        self.records_since_refresh += 1;
    }

    /// Seeds the engine with pre-recorded `(partition, score)` samples
    /// before its first suggestion — the warm-start path for re-invoked
    /// searches. Entries are recorded in the order given (callers must
    /// pass a deterministic order for reproducible runs); each marks its
    /// partition visited, so the engine never re-proposes a stored point.
    pub fn warm_start(&mut self, entries: impl IntoIterator<Item = (Partition, f64)>) {
        for (partition, score) in entries {
            self.record(partition, score);
        }
    }

    /// Quarantines `partition`: marks it visited so the engine never
    /// re-proposes it, **without** entering it into the surrogate history.
    /// This is the fault-hardening path for observations rejected by the
    /// controller's outlier guard — a measurement too inconsistent with
    /// the posterior to trust must not train the GP, but re-proposing the
    /// same point would just re-measure the same faulty configuration.
    pub fn quarantine(&mut self, partition: Partition) {
        self.visited.insert(partition);
    }

    /// Number of recorded evaluations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The recorded history in evaluation order.
    #[must_use]
    pub fn history(&self) -> &[(Partition, f64)] {
        &self.history
    }

    /// Best recorded `(partition, score)` so far.
    #[must_use]
    pub fn best(&self) -> Option<(&Partition, f64)> {
        self.history.iter().max_by(|a, b| a.1.total_cmp(&b.1)).map(|(p, s)| (p, *s))
    }

    /// Best recorded score among configurations where `keep` holds (used by
    /// dropout-copy to find a job's best row).
    #[must_use]
    pub fn best_where(
        &self,
        mut keep: impl FnMut(&Partition, f64) -> bool,
    ) -> Option<(&Partition, f64)> {
        self.history
            .iter()
            .filter(|(p, s)| keep(p, *s))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(p, s)| (p, *s))
    }

    /// Runs one iteration of Algorithm 1: refresh the surrogate, maximize
    /// the acquisition (optionally with a frozen dropout row), and return
    /// the next configuration to evaluate.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::NoHistory`] before any `record`,
    /// [`BoError::Surrogate`] if the GP cannot be fitted, and
    /// [`BoError::NoCandidate`] if no feasible unsampled candidate exists.
    pub fn suggest(
        &mut self,
        frozen: Option<(usize, JobAllocation)>,
    ) -> Result<Suggestion, BoError> {
        self.suggest_with(frozen, &Telemetry::disabled())
    }

    /// [`suggest`](BoEngine::suggest) with telemetry: the GP fit and the
    /// acquisition maximization are timed as their Fig. 15b phases, and
    /// hyper-grid refreshes emit [`Event::GpRefit`].
    ///
    /// # Errors
    ///
    /// See [`BoEngine::suggest`].
    pub fn suggest_with(
        &mut self,
        frozen: Option<(usize, JobAllocation)>,
        telemetry: &Telemetry<'_>,
    ) -> Result<Suggestion, BoError> {
        let gp = self.fit_surrogate_with(telemetry)?;

        let best_score = self.best().map(|(_, s)| s).unwrap_or(0.0);
        let acq = SurrogateAcq {
            gp: &gp,
            space: self.space,
            acquisition: self.config.acquisition,
            best_score,
            batch_slots: self.config.optimizer.threads,
        };

        // Warm starts: the incumbent best and the most recent sample.
        let mut seeds: Vec<Partition> = Vec::new();
        if let Some((p, _)) = self.best() {
            seeds.push(p.clone());
        }
        if let Some((p, _)) = self.history.last() {
            if seeds.first() != Some(p) {
                seeds.push(p.clone());
            }
        }

        let (partition, ei) = telemetry
            .time(Phase::Acquisition, || {
                maximize_acquisition(
                    &self.space,
                    self.config.optimizer,
                    acq,
                    &seeds,
                    frozen,
                    &self.visited,
                    &mut self.rng,
                )
            })?
            .ok_or(BoError::NoCandidate)?;

        let (posterior_mean, posterior_std) = gp.predict_std(&self.space.encode(&partition));
        Ok(Suggestion { partition, expected_improvement: ei, posterior_mean, posterior_std })
    }

    /// Local exploitation ("polish") move: the best unvisited candidate by
    /// posterior mean, from a caller-supplied candidate set (typically
    /// unit-transfer donations around the incumbent). Used when the global
    /// acquisition dries up — a smooth global surrogate can have near-zero
    /// EI everywhere while genuine improvements still hide one transfer
    /// away from the incumbent; sampling those candidates both exploits
    /// them and teaches the surrogate local structure. Returns `Ok(None)`
    /// when every candidate has been visited.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::NoHistory`] before any `record` and
    /// [`BoError::Surrogate`] if the GP cannot be fitted.
    pub fn suggest_among(
        &mut self,
        candidates: &[Partition],
    ) -> Result<Option<Suggestion>, BoError> {
        self.suggest_among_with(candidates, &Telemetry::disabled())
    }

    /// [`suggest_among`](BoEngine::suggest_among) with telemetry.
    ///
    /// # Errors
    ///
    /// See [`BoEngine::suggest_among`].
    pub fn suggest_among_with(
        &mut self,
        candidates: &[Partition],
        telemetry: &Telemetry<'_>,
    ) -> Result<Option<Suggestion>, BoError> {
        let gp = self.fit_surrogate_with(telemetry)?;
        let best_score = self.best().map(|(_, s)| s).ok_or(BoError::NoHistory)?;
        let mut features = Vec::new();
        let mut scratch = PredictScratch::default();
        let mut best: Option<(Partition, f64, f64)> = None;
        for n in candidates {
            if self.visited.contains(n) {
                continue;
            }
            self.space.encode_into(n, &mut features);
            let (mean, std) = gp.predict_std_into(&features, &mut scratch);
            if best.as_ref().is_none_or(|(_, m, _)| mean > *m) {
                best = Some((n.clone(), mean, std));
            }
        }
        Ok(best.map(|(partition, posterior_mean, posterior_std)| Suggestion {
            expected_improvement: (posterior_mean - best_score).max(0.0),
            partition,
            posterior_mean,
            posterior_std,
        }))
    }

    /// Takes the *first unvisited* candidate from a priority-ordered list
    /// (highest-priority first), reporting its posterior stats. Used for
    /// counter-guided local moves where the caller's domain knowledge
    /// (e.g. "the weakest job's bandwidth counter is pinned at its share")
    /// ranks moves better than a smooth global surrogate can.
    ///
    /// # Errors
    ///
    /// Returns [`BoError::NoHistory`] before any `record` and
    /// [`BoError::Surrogate`] if the GP cannot be fitted.
    pub fn suggest_ordered(
        &mut self,
        candidates: &[Partition],
    ) -> Result<Option<Suggestion>, BoError> {
        self.suggest_ordered_with(candidates, &Telemetry::disabled())
    }

    /// [`suggest_ordered`](BoEngine::suggest_ordered) with telemetry.
    ///
    /// # Errors
    ///
    /// See [`BoEngine::suggest_ordered`].
    pub fn suggest_ordered_with(
        &mut self,
        candidates: &[Partition],
        telemetry: &Telemetry<'_>,
    ) -> Result<Option<Suggestion>, BoError> {
        let Some(partition) = candidates.iter().find(|p| !self.visited.contains(*p)) else {
            return Ok(None);
        };
        let gp = self.fit_surrogate_with(telemetry)?;
        let best_score = self.best().map(|(_, s)| s).ok_or(BoError::NoHistory)?;
        let (posterior_mean, posterior_std) = gp.predict_std(&self.space.encode(partition));
        Ok(Some(Suggestion {
            expected_improvement: (posterior_mean - best_score).max(0.0),
            partition: partition.clone(),
            posterior_mean,
            posterior_std,
        }))
    }

    /// Convenience polish over all single-unit-transfer neighbours of the
    /// incumbent best, optionally honouring a frozen row.
    ///
    /// # Errors
    ///
    /// See [`BoEngine::suggest_among`].
    pub fn suggest_polish(
        &mut self,
        frozen: Option<(usize, JobAllocation)>,
    ) -> Result<Option<Suggestion>, BoError> {
        self.suggest_polish_with(frozen, &Telemetry::disabled())
    }

    /// [`suggest_polish`](BoEngine::suggest_polish) with telemetry.
    ///
    /// # Errors
    ///
    /// See [`BoEngine::suggest_among`].
    pub fn suggest_polish_with(
        &mut self,
        frozen: Option<(usize, JobAllocation)>,
        telemetry: &Telemetry<'_>,
    ) -> Result<Option<Suggestion>, BoError> {
        let incumbent = self.best().ok_or(BoError::NoHistory)?.0.clone();
        let frozen_job = match &frozen {
            Some((j, row)) if incumbent.job(*j) == row => Some(*j),
            _ => None,
        };
        let candidates = incumbent.neighbors(frozen_job);
        self.suggest_among_with(&candidates, telemetry)
    }

    /// Fits (or refreshes) the GP surrogate on the recorded history.
    ///
    /// Three paths, cheapest first:
    /// 1. between refreshes, the surrogate maintained by
    ///    [`record_with`](BoEngine::record_with)'s rank-1 extensions is
    ///    served directly (no linear algebra at all);
    /// 2. if that surrogate was lost (extension failure, deserialized
    ///    state), the history is refitted under the cached kernel
    ///    (one O(n³) factorization, timed as [`Phase::GpFit`]);
    /// 3. on hyper refresh, the full grid is re-scanned over a shared
    ///    pairwise-distance matrix ([`fit_best_threaded`]), timed as
    ///    [`Phase::GpFit`] and emitting [`Event::GpRefit`].
    fn fit_surrogate_with(
        &mut self,
        telemetry: &Telemetry<'_>,
    ) -> Result<GaussianProcess, BoError> {
        if self.history.is_empty() {
            return Err(BoError::NoHistory);
        }
        let gp_config = GpConfig { noise_variance: self.config.gp_noise };

        let refresh =
            self.kernel.is_none() || self.records_since_refresh >= self.config.hyper_refresh_every;
        if !refresh {
            if let Some(gp) = &self.surrogate {
                if gp.len() == self.history.len() {
                    return Ok(gp.clone());
                }
            }
        }

        let xs: Vec<Vec<f64>> = self.history.iter().map(|(p, _)| self.space.encode(p)).collect();
        let ys: Vec<f64> = self.history.iter().map(|(_, s)| *s).collect();

        let fitted = if refresh {
            let template = Kernel::new(self.config.kernel_family, 1.0, 1.0);
            let fitted = telemetry.time(Phase::GpFit, || {
                fit_best_threaded(
                    &template,
                    gp_config,
                    &self.config.hyper_grid,
                    &xs,
                    &ys,
                    self.config.hyper_threads,
                )
            })?;
            self.kernel = Some(fitted.kernel().clone());
            self.records_since_refresh = 0;
            let summary = fitted.fit_summary();
            telemetry.emit(Event::GpRefit {
                observations: summary.observations,
                lengthscale: summary.lengthscale,
                signal_variance: summary.signal_variance,
                log_marginal: summary.log_marginal,
            });
            fitted
        } else {
            let kernel = self.kernel.clone().ok_or(BoError::KernelMissing)?;
            telemetry.time(Phase::GpFit, || GaussianProcess::fit(kernel, gp_config, xs, ys))?
        };
        self.surrogate = Some(fitted.clone());
        Ok(fitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::resource::{ResourceCatalog, ResourceKind};

    fn engine(jobs: usize, seed: u64) -> BoEngine {
        let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
        BoEngine::new(space, BoConfig::default(), seed)
    }

    /// A deterministic synthetic objective with a known optimum: reward
    /// job 0's cores and job 1's ways.
    fn objective(p: &Partition) -> f64 {
        0.6 * p.fraction(0, ResourceKind::Cores) + 0.4 * p.fraction(1, ResourceKind::LlcWays)
    }

    #[test]
    fn suggest_before_record_errors() {
        let mut e = engine(2, 1);
        assert!(matches!(e.suggest(None), Err(BoError::NoHistory)));
    }

    #[test]
    fn warm_start_primes_history_and_skips_stored_points() {
        let mut warm = engine(2, 3);
        let seeds: Vec<(Partition, f64)> = engine(2, 3)
            .bootstrap_samples()
            .unwrap()
            .into_iter()
            .map(|p| {
                let y = objective(&p);
                (p, y)
            })
            .collect();
        warm.warm_start(seeds.clone());
        assert_eq!(warm.len(), seeds.len());
        assert_eq!(warm.best().unwrap().1, seeds.iter().map(|s| s.1).fold(f64::MIN, f64::max));

        // A warm engine can suggest immediately, and never re-proposes a
        // stored partition.
        let s = warm.suggest(None).unwrap();
        assert!(seeds.iter().all(|(p, _)| *p != s.partition));

        // Warm-started and manually-recorded engines are byte-equivalent.
        let mut cold = engine(2, 3);
        for (p, y) in seeds {
            cold.record(p, y);
        }
        let s2 = cold.suggest(None).unwrap();
        assert_eq!(s.partition, s2.partition);
    }

    #[test]
    fn engine_improves_over_bootstrap() {
        let mut e = engine(2, 2);
        for p in e.bootstrap_samples().unwrap() {
            let y = objective(&p);
            e.record(p, y);
        }
        let bootstrap_best = e.best().unwrap().1;
        for _ in 0..15 {
            let s = e.suggest(None).unwrap();
            let y = objective(&s.partition);
            e.record(s.partition, y);
        }
        let final_best = e.best().unwrap().1;
        assert!(final_best >= bootstrap_best);
        // Known optimum: job 0 has 9 cores, job 1 has 10 ways
        // => 0.6·0.9 + 0.4·(10/11) ≈ 0.9036. Engine should get close.
        assert!(final_best > 0.85, "final best {final_best}");
    }

    #[test]
    fn suggestions_are_never_repeats() {
        let mut e = engine(2, 3);
        for p in e.bootstrap_samples().unwrap() {
            let y = objective(&p);
            e.record(p, y);
        }
        let mut seen: HashSet<Partition> = e.history().iter().map(|(p, _)| p.clone()).collect();
        for _ in 0..10 {
            let s = e.suggest(None).unwrap();
            assert!(!seen.contains(&s.partition), "suggested an already-sampled partition");
            seen.insert(s.partition.clone());
            let y = objective(&s.partition);
            e.record(s.partition, y);
        }
    }

    #[test]
    fn frozen_row_respected_in_suggestions() {
        let mut e = engine(3, 4);
        for p in e.bootstrap_samples().unwrap() {
            let y = objective(&p);
            e.record(p, y);
        }
        let frozen_row = *e.space().equal_share().unwrap().job(2);
        for _ in 0..5 {
            let s = e.suggest(Some((2, frozen_row))).unwrap();
            assert_eq!(s.partition.job(2), &frozen_row);
            let y = objective(&s.partition);
            e.record(s.partition, y);
        }
    }

    #[test]
    fn ei_diagnostics_are_finite_and_nonnegative() {
        let mut e = engine(2, 5);
        for p in e.bootstrap_samples().unwrap() {
            let y = objective(&p);
            e.record(p, y);
        }
        let s = e.suggest(None).unwrap();
        assert!(s.expected_improvement.is_finite() && s.expected_improvement >= 0.0);
        assert!(s.posterior_std >= 0.0);
        assert!(s.posterior_mean.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut e = engine(2, seed);
            for p in e.bootstrap_samples().unwrap() {
                let y = objective(&p);
                e.record(p, y);
            }
            let mut trace = Vec::new();
            for _ in 0..5 {
                let s = e.suggest(None).unwrap();
                trace.push(s.partition.clone());
                let y = objective(&s.partition);
                e.record(s.partition, y);
            }
            trace
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn best_where_filters() {
        let mut e = engine(2, 6);
        for p in e.bootstrap_samples().unwrap() {
            let y = objective(&p);
            e.record(p, y);
        }
        let all_best = e.best().unwrap().1;
        let constrained = e.best_where(|p, _| p.units(0, ResourceKind::Cores) <= 2).map(|(_, s)| s);
        if let Some(c) = constrained {
            assert!(c <= all_best);
        }
    }
}
