use std::fmt;

use clite_gp::GpError;
use clite_sim::SimError;

/// Error type for the Bayesian-optimization engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BoError {
    /// `suggest` was called before any observations were recorded.
    NoHistory,
    /// The surrogate model failed to fit.
    Surrogate(GpError),
    /// The search space or a partition operation was invalid.
    Space(SimError),
    /// The acquisition maximizer found no feasible candidate (e.g. every
    /// candidate was already sampled and no neighbour is feasible).
    NoCandidate,
    /// The cached surrogate kernel was missing when a fit skipped the
    /// hyper-parameter refresh (an engine state bug surfaced as an error
    /// rather than a fleet-aborting panic).
    KernelMissing,
}

impl fmt::Display for BoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoError::NoHistory => write!(f, "no observations recorded yet"),
            BoError::Surrogate(e) => write!(f, "surrogate model failure: {e}"),
            BoError::Space(e) => write!(f, "search-space failure: {e}"),
            BoError::NoCandidate => write!(f, "acquisition maximizer found no candidate"),
            BoError::KernelMissing => write!(f, "surrogate kernel cache missing"),
        }
    }
}

impl std::error::Error for BoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BoError::Surrogate(e) => Some(e),
            BoError::Space(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpError> for BoError {
    fn from(e: GpError) -> Self {
        BoError::Surrogate(e)
    }
}

impl From<SimError> for BoError {
    fn from(e: SimError) -> Self {
        BoError::Space(e)
    }
}
