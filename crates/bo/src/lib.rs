//! # clite-bo — Bayesian optimization over resource partitions
//!
//! The engine behind CLITE's search (paper Sec. 3–4), generic over what the
//! objective means: callers record `(partition, score)` pairs and ask for
//! the next partition to try. The crate provides:
//!
//! * [`space::SearchSpace`] — the feasible set of allocation matrices for a
//!   catalog and job count, and its encoding into the GP's feature space;
//! * [`acquisition`] — Expected Improvement with the paper's ζ exploration
//!   factor (Eq. 2), plus Probability of Improvement and UCB for the
//!   acquisition ablation;
//! * [`bootstrap`] — the paper's informed initial samples: one
//!   equal-division partition plus one "max allocation" extremum per job
//!   (`N_jobs + 1` samples, matching Sec. 5.2's "number of initial samples
//!   is chosen to the number of colocated jobs + 1");
//! * [`optimizer`] — constrained acquisition maximization by steepest-
//!   ascent over single-unit-transfer moves with random restarts (the
//!   discrete counterpart of the paper's constrained SLSQP, solving Eq. 4
//!   under Eq. 5–6), with optional frozen rows for dropout-copy;
//! * [`termination`] — the expected-improvement-drop termination condition,
//!   scaled by the number of co-located jobs;
//! * [`engine::BoEngine`] — Algorithm 1: update surrogate → compute
//!   acquisition → pick next sample.
//!
//! ## Example
//!
//! ```
//! use clite_bo::engine::{BoConfig, BoEngine};
//! use clite_bo::space::SearchSpace;
//! use clite_sim::prelude::*;
//!
//! let space = SearchSpace::new(ResourceCatalog::testbed(), 2)?;
//! let mut engine = BoEngine::new(space, BoConfig::default(), 7);
//!
//! // Objective: favor job 0 hoarding cores (a stand-in for a real score).
//! let objective = |p: &Partition| p.fraction(0, ResourceKind::Cores);
//!
//! for p in engine.bootstrap_samples()? {
//!     let y = objective(&p);
//!     engine.record(p, y);
//! }
//! for _ in 0..10 {
//!     let s = engine.suggest(None)?;
//!     let y = objective(&s.partition);
//!     engine.record(s.partition, y);
//! }
//! let (best, _) = engine.best().expect("history is non-empty");
//! assert!(best.units(0, ResourceKind::Cores) >= 8);
//! # Ok::<(), clite_bo::BoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod bootstrap;
pub mod engine;
pub mod optimizer;
pub mod space;
pub mod termination;

mod error;

pub use error::BoError;
