//! Constrained acquisition maximization.
//!
//! The paper solves `maximize a(x(j,r))` subject to the per-resource
//! simplex constraints (Eq. 4–6) with constrained SLSQP over a continuous
//! relaxation. The feasible set is really a product of integer simplices,
//! whose natural neighbourhood is the *single-unit transfer* (move one unit
//! of one resource between two jobs). This module maximizes the acquisition
//! directly in that discrete space: steepest-ascent hill climbing from a
//! set of seeds (incumbent-derived plus random restarts), optionally with
//! one job's row frozen (dropout-copy, Sec. 4).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::Rng;

use clite_sim::alloc::{JobAllocation, Partition};

use crate::space::SearchSpace;

/// Configuration for the hill-climbing acquisition maximizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Number of random restart points added to the provided seeds.
    pub random_restarts: usize,
    /// Maximum steepest-ascent steps per start point.
    pub max_steps: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self { random_restarts: 4, max_steps: 25 }
    }
}

/// Maximizes `acq` over the feasible partitions of `space`.
///
/// * `seeds` — warm-start points (e.g. the incumbent best); random restarts
///   are added on top.
/// * `frozen` — dropout-copy: `(job, row)` fixes that job's allocation to
///   `row` in every candidate; hill-climbing moves never touch it.
/// * `tabu` — partitions already sampled; they are skipped as *final*
///   answers (their acquisition is typically zero anyway, but observation
///   noise can make re-sampling look attractive).
///
/// Returns `Ok(Some(_))` with the best candidate found and its acquisition
/// value, or `Ok(None)` if every reachable candidate is tabu.
///
/// # Errors
///
/// Returns [`BoError::Space`](crate::BoError::Space) if a random restart
/// point cannot be generated (an internal space inconsistency).
pub fn maximize_acquisition(
    space: &SearchSpace,
    config: OptimizerConfig,
    acq: impl Fn(&Partition) -> f64,
    seeds: &[Partition],
    frozen: Option<(usize, JobAllocation)>,
    tabu: &HashSet<Partition>,
    rng: &mut StdRng,
) -> Result<Option<(Partition, f64)>, crate::BoError> {
    let frozen_job = frozen.as_ref().map(|(j, _)| *j);

    let mut starts: Vec<Partition> = Vec::with_capacity(seeds.len() + config.random_restarts);
    starts.extend_from_slice(seeds);
    for _ in 0..config.random_restarts {
        starts.push(space.random(rng)?);
    }
    // Jitter half the seeds with a couple of random transfers so warm
    // starts don't all climb the same hill.
    let mut jittered: Vec<Partition> = Vec::new();
    for p in &starts {
        if rng.gen_bool(0.5) {
            jittered.push(jitter(p, frozen_job, rng));
        }
    }
    starts.extend(jittered);

    let mut best: Option<(Partition, f64)> = None;
    for start in starts {
        // Apply the frozen row; skip starts that cannot host it.
        let start = match &frozen {
            Some((job, row)) => match start.with_frozen_row(*job, row) {
                Ok(p) => p,
                Err(_) => continue,
            },
            None => start,
        };

        let mut current = start;
        let mut current_val = acq(&current);
        for _ in 0..config.max_steps {
            let mut improved = false;
            for n in current.neighbors(frozen_job) {
                let v = acq(&n);
                if v > current_val {
                    current = n;
                    current_val = v;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        if !tabu.contains(&current) && best.as_ref().is_none_or(|(_, bv)| current_val > *bv) {
            best = Some((current, current_val));
        } else if tabu.contains(&current) {
            // The climb ended on a sampled point; take its best non-tabu
            // neighbour instead so the engine always gets fresh information.
            let mut alt: Option<(Partition, f64)> = None;
            for n in current.neighbors(frozen_job) {
                if tabu.contains(&n) {
                    continue;
                }
                let v = acq(&n);
                if alt.as_ref().is_none_or(|(_, av)| v > *av) {
                    alt = Some((n, v));
                }
            }
            if let Some((p, v)) = alt {
                if best.as_ref().is_none_or(|(_, bv)| v > *bv) {
                    best = Some((p, v));
                }
            }
        }
    }
    Ok(best)
}

/// Applies 1–3 random feasible unit transfers to diversify a start point.
fn jitter(p: &Partition, frozen_job: Option<usize>, rng: &mut StdRng) -> Partition {
    let mut out = p.clone();
    let moves = rng.gen_range(1..=3);
    for _ in 0..moves {
        let neighbors = out.neighbors(frozen_job);
        if neighbors.is_empty() {
            break;
        }
        out = neighbors[rng.gen_range(0..neighbors.len())].clone();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::resource::{ResourceCatalog, ResourceKind};
    use rand::SeedableRng;

    fn space(jobs: usize) -> SearchSpace {
        SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap()
    }

    #[test]
    fn finds_obvious_optimum() {
        // Acquisition = job 0's core fraction: optimum gives job 0 all
        // transferable cores.
        let s = space(2);
        let mut rng = StdRng::seed_from_u64(1);
        let (best, val) = maximize_acquisition(
            &s,
            OptimizerConfig::default(),
            |p| p.fraction(0, ResourceKind::Cores),
            &[s.equal_share().unwrap()],
            None,
            &HashSet::new(),
            &mut rng,
        )
        .unwrap()
        .unwrap();
        assert_eq!(best.units(0, ResourceKind::Cores), 9);
        assert!((val - 0.9).abs() < 1e-12);
    }

    #[test]
    fn respects_frozen_row() {
        let s = space(3);
        let mut rng = StdRng::seed_from_u64(2);
        let frozen_row = *s.equal_share().unwrap().job(1);
        let (best, _) = maximize_acquisition(
            &s,
            OptimizerConfig::default(),
            |p| p.fraction(0, ResourceKind::LlcWays),
            &[s.equal_share().unwrap()],
            Some((1, frozen_row)),
            &HashSet::new(),
            &mut rng,
        )
        .unwrap()
        .unwrap();
        assert_eq!(best.job(1), &frozen_row, "frozen job's row must be untouched");
        // Job 0 still maximized its ways subject to the freeze.
        assert!(
            best.units(0, ResourceKind::LlcWays)
                > s.equal_share().unwrap().units(0, ResourceKind::LlcWays)
        );
    }

    #[test]
    fn avoids_tabu_points() {
        let s = space(2);
        let mut rng = StdRng::seed_from_u64(3);
        // Make the global optimum tabu; the maximizer must return something
        // else.
        let optimum = s.max_for_job(0).unwrap();
        let mut tabu = HashSet::new();
        tabu.insert(optimum.clone());
        let found = maximize_acquisition(
            &s,
            OptimizerConfig::default(),
            |p| p.features().iter().take(5).sum::<f64>(),
            &[s.equal_share().unwrap()],
            None,
            &tabu,
            &mut rng,
        );
        let (best, _) = found.unwrap().unwrap();
        assert_ne!(best, optimum);
    }

    #[test]
    fn multimodal_surface_benefits_from_restarts() {
        // Two distant optima; hill climbing from the single seed lands in
        // one, restarts make the search robust to the seed choice.
        let s = space(2);
        let mut rng = StdRng::seed_from_u64(4);
        let target_a = s.max_for_job(0).unwrap().features();
        let target_b = s.max_for_job(1).unwrap().features();
        let acq = |p: &Partition| {
            let f = p.features();
            let da: f64 = f.iter().zip(&target_a).map(|(x, t)| (x - t).abs()).sum();
            let db: f64 = f.iter().zip(&target_b).map(|(x, t)| (x - t).abs()).sum();
            (-da).exp() + 1.5 * (-db).exp()
        };
        let (best, _) = maximize_acquisition(
            &s,
            OptimizerConfig { random_restarts: 8, max_steps: 40 },
            acq,
            &[s.max_for_job(0).unwrap()],
            None,
            &HashSet::new(),
            &mut rng,
        )
        .unwrap()
        .unwrap();
        // The better optimum (job 1 maxed) should win despite the seed.
        assert_eq!(best, s.max_for_job(1).unwrap());
    }
}
