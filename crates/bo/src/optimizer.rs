//! Constrained acquisition maximization.
//!
//! The paper solves `maximize a(x(j,r))` subject to the per-resource
//! simplex constraints (Eq. 4–6) with constrained SLSQP over a continuous
//! relaxation. The feasible set is really a product of integer simplices,
//! whose natural neighbourhood is the *single-unit transfer* (move one unit
//! of one resource between two jobs). This module maximizes the acquisition
//! directly in that discrete space: steepest-ascent hill climbing from a
//! set of seeds (incumbent-derived plus random restarts), optionally with
//! one job's row frozen (dropout-copy, Sec. 4).

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::Rng;

use clite_gp::gp::PredictScratch;
use clite_sim::alloc::{JobAllocation, Partition};

use crate::space::SearchSpace;

/// Configuration for the hill-climbing acquisition maximizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Number of random restart points added to the provided seeds.
    pub random_restarts: usize,
    /// Maximum steepest-ascent steps per start point.
    pub max_steps: usize,
    /// Pool slots for the independent hill-climb starts (1 = in-line
    /// serial, never touching the shared pool; results are byte-identical
    /// at any slot count).
    pub threads: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self { random_restarts: 4, max_steps: 25, threads: 1 }
    }
}

/// Reusable per-worker buffers threaded through every acquisition
/// evaluation: the candidate's feature encoding plus the GP prediction
/// scratch. One hill climb evaluates thousands of neighbours; with this
/// scratch the whole climb allocates nothing per candidate.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Feature-encoding buffer (see `SearchSpace::encode_into`).
    pub features: Vec<f64>,
    /// GP prediction buffers.
    pub gp: PredictScratch,
    /// Scaled feature encoding of the current climb step's base partition
    /// (batched evaluators only).
    pub base_scaled: Vec<f64>,
    /// Squared scaled distances from the step base to every training
    /// point (batched evaluators only).
    pub base_sq_dists: Vec<f64>,
    /// Per-neighbour shifted squared distances (batched evaluators only).
    pub neighbor_sq_dists: Vec<f64>,
    /// Cross-covariance rows of every candidate that survived the bound
    /// gate this step, concatenated (batched evaluators only).
    pub kstar_flat: Vec<f64>,
    /// Posterior means of the surviving candidates, same order as
    /// `kstar_flat` rows.
    pub cand_means: Vec<f64>,
    /// Neighbour-enumeration indices of the surviving candidates.
    pub cand_idx: Vec<usize>,
    /// Exact posterior standard deviations of the surviving candidates
    /// (filled by the batched solve).
    pub cand_stds: Vec<f64>,
    /// Batched triangular-solve scratch.
    pub v_flat: Vec<f64>,
    /// Memoized climb steps, keyed by the step's base partition. Multiple
    /// starts converge to the same optima and replay identical neighbour
    /// sweeps; each cache hit skips a full `best_neighbor` pass. Lives as
    /// long as the scratch (one `maximize_acquisition` call), over which
    /// the acquisition surface is fixed.
    pub step_cache: HashMap<Partition, StepOutcome>,
}

/// A memoized [`AcquisitionEval::best_neighbor`] result.
///
/// Caching across differing floors is sound because the result is
/// floor-independent whenever a winner exists: the running max returns the
/// first enumeration-order argmax of the *whole* neighbourhood and its
/// exact value (candidates at or below the floor can never tie a winner,
/// whose value strictly exceeds the floor). A `None` result only certifies
/// "no neighbour above this floor", so it is recorded with the floor it
/// was computed at and replayed only for floors at least as high.
#[derive(Debug, Clone)]
pub enum StepOutcome {
    /// The neighbourhood's first argmax and its value (floor-independent).
    Best(Partition, f64),
    /// No neighbour strictly exceeded the recorded floor.
    NoneAtFloor(f64),
}

/// An acquisition surface a hill climb can evaluate, with an optional
/// whole-step batched fast path.
///
/// The plain entry point is [`AcquisitionEval::eval`]; any
/// `Fn(&Partition, &mut EvalScratch) -> f64 + Sync` closure implements the
/// trait through it. Evaluators that can exploit the climb's structure
/// (every candidate of a step differs from the step base by one unit
/// transfer, and steepest ascent needs only the step's argmax) override
/// [`AcquisitionEval::best_neighbor`].
pub trait AcquisitionEval: Sync {
    /// Exact acquisition value at `p`.
    fn eval(&self, p: &Partition, scratch: &mut EvalScratch) -> f64;

    /// Returns the neighbour of `current` (with `frozen_job` untouched)
    /// whose acquisition value is highest, together with that value — or
    /// `None` if no neighbour's value strictly exceeds `floor`.
    ///
    /// Ties must resolve to the *first* strictly-better neighbour in
    /// [`Partition::for_each_neighbor_transfer`] enumeration order, i.e.
    /// exactly what the default implementation (a running max seeded at
    /// `floor`) produces. Implementations may evaluate candidates lazily
    /// or in bulk as long as the returned pair is identical.
    fn best_neighbor(
        &self,
        current: &Partition,
        frozen_job: Option<usize>,
        floor: f64,
        scratch: &mut EvalScratch,
    ) -> Option<(Partition, f64)> {
        let mut best: Option<Partition> = None;
        let mut best_val = floor;
        current.for_each_neighbor(frozen_job, |n| {
            let v = self.eval(n, scratch);
            if v > best_val {
                best_val = v;
                best = Some(n.clone());
            }
        });
        best.map(|p| (p, best_val))
    }
}

impl<F> AcquisitionEval for F
where
    F: Fn(&Partition, &mut EvalScratch) -> f64 + Sync,
{
    fn eval(&self, p: &Partition, scratch: &mut EvalScratch) -> f64 {
        self(p, scratch)
    }
}

/// Maximizes `acq` over the feasible partitions of `space`.
///
/// * `seeds` — warm-start points (e.g. the incumbent best); random restarts
///   are added on top.
/// * `frozen` — dropout-copy: `(job, row)` fixes that job's allocation to
///   `row` in every candidate; hill-climbing moves never touch it.
/// * `tabu` — partitions already sampled; they are skipped as *final*
///   answers (their acquisition is typically zero anyway, but observation
///   noise can make re-sampling look attractive).
///
/// Returns `Ok(Some(_))` with the best candidate found and its acquisition
/// value, or `Ok(None)` if every reachable candidate is tabu.
///
/// The randomness (restart points, seed jitter) is consumed from `rng`
/// serially up front; the climbs themselves are deterministic, so with
/// `config.threads > 1` the independent starts run as slots of the shared
/// [`clite_par`] worker pool and an index-ordered reduction keeps the
/// result **byte-identical to the serial path** (each start's outcome is a
/// pure function of its start point, and the reduction replays the serial
/// loop's first-strictly-better tie-breaking).
///
/// # Errors
///
/// Returns [`BoError::Space`](crate::BoError::Space) if a random restart
/// point cannot be generated (an internal space inconsistency).
pub fn maximize_acquisition(
    space: &SearchSpace,
    config: OptimizerConfig,
    acq: impl AcquisitionEval,
    seeds: &[Partition],
    frozen: Option<(usize, JobAllocation)>,
    tabu: &HashSet<Partition>,
    rng: &mut StdRng,
) -> Result<Option<(Partition, f64)>, crate::BoError> {
    let frozen_job = frozen.as_ref().map(|(j, _)| *j);

    let mut starts: Vec<Partition> = Vec::with_capacity(seeds.len() + config.random_restarts);
    starts.extend_from_slice(seeds);
    for _ in 0..config.random_restarts {
        starts.push(space.random(rng)?);
    }
    // Jitter half the seeds with a couple of random transfers so warm
    // starts don't all climb the same hill.
    let mut jittered: Vec<Partition> = Vec::new();
    for p in &starts {
        if rng.gen_bool(0.5) {
            jittered.push(jitter(p, frozen_job, rng));
        }
    }
    starts.extend(jittered);

    // Apply the frozen row up front; skip starts that cannot host it.
    let starts: Vec<Partition> = starts
        .into_iter()
        .filter_map(|start| match &frozen {
            Some((job, row)) => start.with_frozen_row(*job, row).ok(),
            None => Some(start),
        })
        .collect();

    // Each start's candidate is independent of every other start: climb to
    // a local optimum, then (only if it is tabu) fall back to its best
    // non-tabu neighbour so the engine always gets fresh information.
    let per_start = |start: &Partition, scratch: &mut EvalScratch| -> Option<(Partition, f64)> {
        let mut current = start.clone();
        let mut current_val = acq.eval(&current, scratch);
        for _ in 0..config.max_steps {
            let cached: Option<Option<(Partition, f64)>> = match scratch.step_cache.get(&current) {
                Some(StepOutcome::Best(p, v)) => {
                    Some(if *v > current_val { Some((p.clone(), *v)) } else { None })
                }
                Some(StepOutcome::NoneAtFloor(f)) if current_val >= *f => Some(None),
                _ => None,
            };
            let step = match cached {
                Some(step) => step,
                None => {
                    let step = acq.best_neighbor(&current, frozen_job, current_val, scratch);
                    let outcome = match &step {
                        Some((p, v)) => StepOutcome::Best(p.clone(), *v),
                        None => StepOutcome::NoneAtFloor(current_val),
                    };
                    scratch.step_cache.insert(current.clone(), outcome);
                    step
                }
            };
            match step {
                Some((n, v)) => {
                    current = n;
                    current_val = v;
                }
                None => break,
            }
        }

        if !tabu.contains(&current) {
            return Some((current, current_val));
        }
        // The tabu fallback is a once-per-climb corner case, so it takes
        // the exact (unbatched) path.
        let mut alt: Option<(Partition, f64)> = None;
        current.for_each_neighbor(frozen_job, |n| {
            if tabu.contains(n) {
                return;
            }
            let v = acq.eval(n, scratch);
            if alt.as_ref().is_none_or(|(_, av)| v > *av) {
                alt = Some((n.clone(), v));
            }
        });
        alt
    };

    // Slot-striped over the shared pool: each slot reuses one `EvalScratch`
    // (and its step cache) across its stripe of starts, exactly like the
    // serial loop reuses one scratch across all of them. Cache hits replay
    // stored outcomes, so sharing never changes a climb's result.
    let candidates: Vec<Option<(Partition, f64)>> = clite_par::map_indexed(
        clite_par::WorkerPool::global(),
        config.threads,
        &starts,
        EvalScratch::default,
        |scratch, _, start| per_start(start, scratch),
    );

    let mut best: Option<(Partition, f64)> = None;
    for (partition, value) in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|(_, bv)| value > *bv) {
            best = Some((partition, value));
        }
    }
    Ok(best)
}

/// Applies 1–3 random feasible unit transfers to diversify a start point.
/// Each transfer is sampled directly by index ([`Partition::nth_neighbor`])
/// instead of materializing the full neighbour list; the RNG draw sequence
/// (`1..=3`, then one index per move) matches the old materializing
/// implementation, so jittered starts are unchanged.
fn jitter(p: &Partition, frozen_job: Option<usize>, rng: &mut StdRng) -> Partition {
    let mut out = p.clone();
    let moves = rng.gen_range(1..=3);
    for _ in 0..moves {
        let count = out.neighbor_count(frozen_job);
        if count == 0 {
            break;
        }
        let index = rng.gen_range(0..count);
        out = out.nth_neighbor(frozen_job, index).expect("index < neighbor_count");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::resource::{ResourceCatalog, ResourceKind};
    use rand::SeedableRng;

    fn space(jobs: usize) -> SearchSpace {
        SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap()
    }

    #[test]
    fn finds_obvious_optimum() {
        // Acquisition = job 0's core fraction: optimum gives job 0 all
        // transferable cores.
        let s = space(2);
        let mut rng = StdRng::seed_from_u64(1);
        let (best, val) = maximize_acquisition(
            &s,
            OptimizerConfig::default(),
            |p: &Partition, _: &mut EvalScratch| p.fraction(0, ResourceKind::Cores),
            &[s.equal_share().unwrap()],
            None,
            &HashSet::new(),
            &mut rng,
        )
        .unwrap()
        .unwrap();
        assert_eq!(best.units(0, ResourceKind::Cores), 9);
        assert!((val - 0.9).abs() < 1e-12);
    }

    #[test]
    fn respects_frozen_row() {
        let s = space(3);
        let mut rng = StdRng::seed_from_u64(2);
        let frozen_row = *s.equal_share().unwrap().job(1);
        let (best, _) = maximize_acquisition(
            &s,
            OptimizerConfig::default(),
            |p: &Partition, _: &mut EvalScratch| p.fraction(0, ResourceKind::LlcWays),
            &[s.equal_share().unwrap()],
            Some((1, frozen_row)),
            &HashSet::new(),
            &mut rng,
        )
        .unwrap()
        .unwrap();
        assert_eq!(best.job(1), &frozen_row, "frozen job's row must be untouched");
        // Job 0 still maximized its ways subject to the freeze.
        assert!(
            best.units(0, ResourceKind::LlcWays)
                > s.equal_share().unwrap().units(0, ResourceKind::LlcWays)
        );
    }

    #[test]
    fn avoids_tabu_points() {
        let s = space(2);
        let mut rng = StdRng::seed_from_u64(3);
        // Make the global optimum tabu; the maximizer must return something
        // else.
        let optimum = s.max_for_job(0).unwrap();
        let mut tabu = HashSet::new();
        tabu.insert(optimum.clone());
        let found = maximize_acquisition(
            &s,
            OptimizerConfig::default(),
            |p: &Partition, _: &mut EvalScratch| p.features().iter().take(5).sum::<f64>(),
            &[s.equal_share().unwrap()],
            None,
            &tabu,
            &mut rng,
        );
        let (best, _) = found.unwrap().unwrap();
        assert_ne!(best, optimum);
    }

    #[test]
    fn multimodal_surface_benefits_from_restarts() {
        // Two distant optima; hill climbing from the single seed lands in
        // one, restarts make the search robust to the seed choice.
        let s = space(2);
        let mut rng = StdRng::seed_from_u64(4);
        let target_a = s.max_for_job(0).unwrap().features();
        let target_b = s.max_for_job(1).unwrap().features();
        let acq = |p: &Partition, scratch: &mut EvalScratch| {
            p.features_into(&mut scratch.features);
            let f = &scratch.features;
            let da: f64 = f.iter().zip(&target_a).map(|(x, t)| (x - t).abs()).sum();
            let db: f64 = f.iter().zip(&target_b).map(|(x, t)| (x - t).abs()).sum();
            (-da).exp() + 1.5 * (-db).exp()
        };
        let (best, _) = maximize_acquisition(
            &s,
            OptimizerConfig { random_restarts: 8, max_steps: 40, threads: 1 },
            acq,
            &[s.max_for_job(0).unwrap()],
            None,
            &HashSet::new(),
            &mut rng,
        )
        .unwrap()
        .unwrap();
        // The better optimum (job 1 maxed) should win despite the seed.
        assert_eq!(best, s.max_for_job(1).unwrap());
    }

    #[test]
    fn parallel_starts_byte_identical_to_serial() {
        let s = space(3);
        let target = s.max_for_job(1).unwrap().features();
        let acq = |p: &Partition, scratch: &mut EvalScratch| {
            p.features_into(&mut scratch.features);
            let d: f64 = scratch.features.iter().zip(&target).map(|(x, t)| (x - t).abs()).sum();
            (-d).exp()
        };
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(9);
            maximize_acquisition(
                &s,
                OptimizerConfig { random_restarts: 6, max_steps: 30, threads },
                acq,
                &[s.equal_share().unwrap()],
                None,
                &HashSet::new(),
                &mut rng,
            )
            .unwrap()
            .unwrap()
        };
        let (serial_p, serial_v) = run(1);
        for threads in [2, 4, 8, 16] {
            let (p, v) = run(threads);
            assert_eq!(serial_p, p, "threads={threads}");
            assert_eq!(serial_v.to_bits(), v.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn tabu_climb_endpoint_falls_back_identically_in_parallel() {
        // Constant acquisition: every climb ends where it starts, and the
        // equal-share seed is tabu — forcing the alt-neighbour path on
        // every thread count.
        let s = space(2);
        let seed = s.equal_share().unwrap();
        let mut tabu = HashSet::new();
        tabu.insert(seed.clone());
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(12);
            maximize_acquisition(
                &s,
                OptimizerConfig { random_restarts: 2, max_steps: 5, threads },
                |_: &Partition, _: &mut EvalScratch| 1.0,
                std::slice::from_ref(&seed),
                None,
                &tabu,
                &mut rng,
            )
            .unwrap()
            .unwrap()
        };
        let serial = run(1);
        assert_ne!(serial.0, seed, "tabu point must not be returned");
        for threads in [2, 8] {
            assert_eq!(serial, run(threads));
        }
    }
}
