//! Acquisition functions.
//!
//! CLITE chooses **Expected Improvement** augmented with an exploration
//! factor ζ (paper Eq. 2, following Lizotte): cheap to evaluate and a good
//! exploration/exploitation balance for an online, time-constrained
//! controller. Probability of Improvement and Upper Confidence Bound are
//! provided for the acquisition ablation the paper discusses in Sec. 4
//! ("cheap acquisition functions such as PI suffer from inability to find
//! the balance…").

use serde::Serialize;

use clite_gp::stats::{norm_cdf, norm_pdf};

/// Which acquisition function scores candidate points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Acquisition {
    /// Expected Improvement with exploration factor ζ (paper Eq. 2);
    /// ζ = 0.01 "works well in practice".
    ExpectedImprovement {
        /// Exploration factor ζ ≥ 0.
        zeta: f64,
    },
    /// Probability of Improvement with the same ζ offset.
    ProbabilityOfImprovement {
        /// Exploration factor ζ ≥ 0.
        zeta: f64,
    },
    /// Upper Confidence Bound `μ + β·σ`, reported as improvement over the
    /// incumbent so its scale is comparable to EI's.
    UpperConfidenceBound {
        /// Confidence multiplier β > 0.
        beta: f64,
    },
}

impl Acquisition {
    /// The paper's default: EI with ζ = 0.01.
    #[must_use]
    pub fn paper_default() -> Self {
        Acquisition::ExpectedImprovement { zeta: 0.01 }
    }

    /// Short name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Acquisition::ExpectedImprovement { .. } => "ei",
            Acquisition::ProbabilityOfImprovement { .. } => "pi",
            Acquisition::UpperConfidenceBound { .. } => "ucb",
        }
    }

    /// Scores a candidate with posterior mean `mean`, posterior standard
    /// deviation `std`, against the incumbent best observed value `best`.
    ///
    /// Higher is more promising. For EI the value is the paper's Eq. 2:
    /// zero whenever `std == 0` (already-sampled points are never
    /// re-suggested on acquisition merit alone).
    #[must_use]
    pub fn score(&self, mean: f64, std: f64, best: f64) -> f64 {
        match *self {
            Acquisition::ExpectedImprovement { zeta } => {
                if std <= 0.0 {
                    return 0.0;
                }
                let delta = mean - best - zeta;
                let z = delta / std;
                // EI is mathematically non-negative; the erf approximation
                // behind norm_cdf has a ~1e-8 error floor that can push the
                // closed form microscopically below zero at extreme z.
                (delta * norm_cdf(z) + std * norm_pdf(z)).max(0.0)
            }
            Acquisition::ProbabilityOfImprovement { zeta } => {
                if std <= 0.0 {
                    return if mean > best + zeta { 1.0 } else { 0.0 };
                }
                norm_cdf((mean - best - zeta) / std)
            }
            Acquisition::UpperConfidenceBound { beta } => mean + beta * std - best,
        }
    }

    /// Upper bound on [`Acquisition::score`] given the exact posterior
    /// mean and an *upper bound* `std_upper ≥ std` on the posterior
    /// standard deviation. Gated hill-climbs use this to discard
    /// candidates whose optimistic score cannot beat the incumbent step
    /// value without paying for the exact variance.
    ///
    /// EI and UCB are non-decreasing in `std` (for EI, ∂EI/∂σ = φ(z) ≥ 0),
    /// so scoring at `std_upper` bounds the score. PI is *not* monotone in
    /// `std` when `mean > best + ζ` (shrinking σ drives it toward 1), so
    /// that branch returns PI's global maximum of 1.
    #[must_use]
    pub fn score_upper_bound(&self, mean: f64, std_upper: f64, best: f64) -> f64 {
        if let Acquisition::ProbabilityOfImprovement { zeta } = *self {
            if mean > best + zeta {
                return 1.0;
            }
        }
        self.score(mean, std_upper, best)
    }
}

impl Default for Acquisition {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EI: Acquisition = Acquisition::ExpectedImprovement { zeta: 0.01 };

    #[test]
    fn ei_zero_at_zero_std() {
        assert_eq!(EI.score(10.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn ei_nonnegative() {
        for &(m, s, b) in &[(0.0, 1.0, 5.0), (5.0, 1.0, 0.0), (0.5, 0.01, 0.5), (-3.0, 2.0, 4.0)] {
            assert!(EI.score(m, s, b) >= 0.0, "EI({m},{s},{b})");
        }
    }

    #[test]
    fn ei_increases_with_mean() {
        let a = EI.score(0.2, 0.1, 0.5);
        let b = EI.score(0.6, 0.1, 0.5);
        assert!(b > a);
    }

    #[test]
    fn ei_rewards_uncertainty_below_incumbent() {
        // With mean below best, only variance can produce improvement.
        let low_std = EI.score(0.3, 0.01, 0.5);
        let high_std = EI.score(0.3, 0.3, 0.5);
        assert!(high_std > low_std);
    }

    #[test]
    fn ei_matches_closed_form_at_zero_delta() {
        // With mean − best − ζ = 0: EI = σ·ω(0) = σ/√(2π).
        let zeta = 0.01;
        let acq = Acquisition::ExpectedImprovement { zeta };
        let sigma = 0.4;
        let v = acq.score(1.0 + zeta, sigma, 1.0);
        assert!((v - sigma / (2.0 * std::f64::consts::PI).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pi_bounded_and_monotone() {
        let pi = Acquisition::ProbabilityOfImprovement { zeta: 0.0 };
        let lo = pi.score(0.0, 1.0, 1.0);
        let hi = pi.score(2.0, 1.0, 1.0);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        assert!(hi > lo);
        assert_eq!(pi.score(2.0, 0.0, 1.0), 1.0);
        assert_eq!(pi.score(0.5, 0.0, 1.0), 0.0);
    }

    #[test]
    fn ucb_ranks_by_optimism() {
        let ucb = Acquisition::UpperConfidenceBound { beta: 2.0 };
        assert!(ucb.score(0.5, 0.3, 0.0) > ucb.score(0.5, 0.1, 0.0));
        assert!(ucb.score(0.9, 0.1, 0.0) > ucb.score(0.5, 0.1, 0.0));
    }

    #[test]
    fn names() {
        assert_eq!(Acquisition::paper_default().name(), "ei");
        assert_eq!(Acquisition::ProbabilityOfImprovement { zeta: 0.0 }.name(), "pi");
        assert_eq!(Acquisition::UpperConfidenceBound { beta: 1.0 }.name(), "ucb");
    }
}
