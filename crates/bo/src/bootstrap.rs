//! Bootstrapping configuration samples (paper Sec. 4).
//!
//! CLITE seeds its surrogate with carefully constructed samples instead of
//! random ones: (1) every resource divided as equally as possible, and
//! (2) for each job, the extremum where that job receives the maximum
//! possible allocation of every resource and the others keep one unit.
//! The extrema additionally identify jobs that cannot meet QoS *under any
//! allocation* given the co-location — those can be ejected immediately
//! without wasting BO cycles.

use clite_sim::alloc::Partition;

use crate::space::SearchSpace;
use crate::BoError;

/// The paper's bootstrap set: equal division first, then one per-job
/// maximum-allocation extremum — `N_jobs + 1` samples in total.
///
/// # Errors
///
/// Returns [`BoError::Space`] if an extremum cannot be constructed (cannot
/// happen for a space that passed construction checks).
pub fn bootstrap_partitions(space: &SearchSpace) -> Result<Vec<Partition>, BoError> {
    let mut out = Vec::with_capacity(space.jobs() + 1);
    out.push(space.equal_share()?);
    for j in 0..space.jobs() {
        out.push(space.max_for_job(j)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::resource::{ResourceCatalog, ResourceKind};

    #[test]
    fn count_is_jobs_plus_one() {
        for jobs in 1..=5 {
            let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).unwrap();
            let b = bootstrap_partitions(&space).unwrap();
            assert_eq!(b.len(), jobs + 1);
        }
    }

    #[test]
    fn first_is_equal_share_rest_are_extrema() {
        let space = SearchSpace::new(ResourceCatalog::testbed(), 3).unwrap();
        let b = bootstrap_partitions(&space).unwrap();
        assert_eq!(b[0], space.equal_share().unwrap());
        for (j, p) in b[1..].iter().enumerate() {
            assert_eq!(
                p.units(j, ResourceKind::Cores),
                space.catalog().max_for_job(ResourceKind::Cores, 3)
            );
            for other in (0..3).filter(|&o| o != j) {
                assert_eq!(p.units(other, ResourceKind::Cores), 1);
            }
        }
    }

    #[test]
    fn all_bootstrap_samples_distinct() {
        let space = SearchSpace::new(ResourceCatalog::testbed(), 4).unwrap();
        let b = bootstrap_partitions(&space).unwrap();
        for i in 0..b.len() {
            for j in (i + 1)..b.len() {
                assert_ne!(b[i], b[j]);
            }
        }
    }
}
