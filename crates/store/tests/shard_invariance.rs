//! Shard-count invariance and compaction crash-safety.
//!
//! The sharded front-end routes by mix key and its per-key buckets never
//! interact, so 1, 4, or 16 shards (and the unsharded store) must produce
//! byte-identical warm starts for the same append history. Compaction
//! rewrites each shard's log tmp+rename; a crash between the tmp write
//! and the rename must leave the original log fully recoverable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clite_sim::prelude::*;
use clite_sim::testbed::Testbed;
use clite_store::{
    MixSignature, ObservationStore, ShardPolicy, ShardedStore, StorePolicy, WarmStart,
};

/// An alternating LC/BG mix of `jobs` co-located jobs.
fn specs(jobs: usize, load: f64) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            if i % 2 == 0 {
                JobSpec::latency_critical(WorkloadId::LATENCY_CRITICAL[i % 5], load)
            } else {
                JobSpec::background(WorkloadId::BACKGROUND[i % 6])
            }
        })
        .collect()
}

/// One sample: `(signature, partition, observation, score)`.
type Sample = (MixSignature, Partition, Observation, f64);

/// A deterministic corpus of samples spanning several distinct mixes (so
/// multiple shards are populated), several loads per mix (so nearby-load
/// reuse is exercised), and several partitions per signature (so
/// per-bucket eviction and dedupe run).
fn corpus(seed: u64) -> Vec<Sample> {
    let catalog = ResourceCatalog::testbed();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    for jobs in [2usize, 3, 4] {
        for load_step in 1..=4u32 {
            let load = f64::from(load_step) * 0.15;
            let mut server = Server::new(catalog, specs(jobs, load), seed ^ jobs as u64).unwrap();
            let signature = MixSignature::capture(&server);
            for _ in 0..3 {
                let partition = Partition::random(&catalog, jobs, &mut rng).unwrap();
                let observation = Testbed::observe(&mut server, &partition);
                let score = rng.gen_range(-1.0..1.0);
                samples.push((signature.clone(), partition, observation, score));
            }
        }
    }
    samples
}

/// Every lookup the invariance tests compare: one exact probe per stored
/// signature plus a nearby-load probe per mix size.
fn probes(samples: &[Sample]) -> Vec<MixSignature> {
    let catalog = ResourceCatalog::testbed();
    let mut probes: Vec<MixSignature> = Vec::new();
    for (sig, ..) in samples {
        if !probes.contains(sig) {
            probes.push(sig.clone());
        }
    }
    for jobs in [2usize, 3, 4] {
        // 0.17 sits within the default 10% reuse distance of the stored
        // 0.15 point — a nearby (non-exact) hit on every store shape.
        let server = Server::new(catalog, specs(jobs, 0.17), 1).unwrap();
        probes.push(MixSignature::capture(&server));
    }
    probes
}

#[test]
fn shard_counts_are_byte_identical_to_the_plain_store() {
    let samples = corpus(42);
    let probes = probes(&samples);

    let mut plain = ObservationStore::in_memory();
    for (sig, p, o, score) in &samples {
        plain.append(sig, p, o, *score).unwrap();
    }
    let reference: Vec<Option<WarmStart>> =
        probes.iter().map(|sig| plain.warm_start(sig)).collect();
    assert!(
        reference.iter().any(|w| matches!(w, Some(w) if w.exact))
            && reference.iter().any(|w| matches!(w, Some(w) if !w.exact)),
        "probe set must exercise both exact and nearby-load hits"
    );

    for shards in [1usize, 4, 16] {
        let store = ShardedStore::in_memory(ShardPolicy::with_shards(shards));
        for (sig, p, o, score) in &samples {
            store.append(sig, p, o, *score).unwrap();
        }
        let got: Vec<Option<WarmStart>> = probes.iter().map(|sig| store.warm_start(sig)).collect();
        assert_eq!(got, reference, "{shards}-shard warm starts diverged from the plain store");
        assert_eq!(store.record_count(), plain.record_count(), "{shards}-shard record count");
        assert_eq!(store.mix_count(), plain.mix_count(), "{shards}-shard mix count");
        let stats = store.stats();
        assert_eq!(stats.appends, plain.stats().appends, "{shards}-shard appends");
        assert_eq!(stats.evictions, plain.stats().evictions, "{shards}-shard evictions");
    }
}

#[test]
fn shard_routing_ignores_load() {
    // All load points of one mix must share a shard, or nearby-load reuse
    // would silently stop working for some shard counts.
    let catalog = ResourceCatalog::testbed();
    let store = ShardedStore::in_memory(ShardPolicy::with_shards(16));
    let at = |load: f64| {
        let server = Server::new(catalog, specs(2, load), 3).unwrap();
        store.shard_for(&MixSignature::capture(&server))
    };
    let home = at(0.1);
    for step in 2..=9u32 {
        assert_eq!(at(f64::from(step) * 0.1), home, "load changed the shard route");
    }
}

#[test]
fn multiple_shards_are_actually_populated() {
    // Guard for the invariance test itself: if every mix hashed to one
    // shard, shard-count invariance would be vacuous.
    let store = ShardedStore::in_memory(ShardPolicy::with_shards(4));
    let samples = corpus(42);
    let mut used = std::collections::HashSet::new();
    for (sig, ..) in &samples {
        used.insert(store.shard_for(sig));
    }
    assert!(used.len() >= 2, "corpus must spread across shards, got {used:?}");
}

/// Appends `n` rising-score samples of one 2-job mix through the sharded
/// store: dedupe retains only the best per partition, so the log gathers
/// garbage while the index stays small.
fn append_rising(store: &ShardedStore, n: u32) -> MixSignature {
    let catalog = ResourceCatalog::testbed();
    let mut server = Server::new(catalog, specs(2, 0.5), 7).unwrap();
    let signature = MixSignature::capture(&server);
    let partition = Partition::equal_share(&catalog, 2).unwrap();
    let observation = Testbed::observe(&mut server, &partition);
    for k in 0..n {
        store.append(&signature, &partition, &observation, 0.01 * f64::from(k)).unwrap();
    }
    signature
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("clite-shard-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_compaction_keeps_the_original_log_intact() {
    let dir = temp_dir("crash");
    let path = dir.join("obs.log");
    let policy = ShardPolicy { shards: 2, background_compaction: false, ..ShardPolicy::default() };

    let (signature, reference) = {
        let store = ShardedStore::open(&path, policy).unwrap();
        let signature = append_rising(&store, 12);
        (signature.clone(), store.warm_start(&signature))
    };
    assert!(reference.is_some(), "seeded store must hit");

    // Simulate a compaction killed between the tmp write and the rename:
    // the rewrite target `<shardfile>.tmp` exists (here: torn partial
    // garbage), the real log was never touched.
    let shard_file = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".shard0");
        std::path::PathBuf::from(os)
    };
    let tmp_file = {
        let mut os = shard_file.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    // At least one shard file must exist (single mix → single shard used).
    let live_shard = if shard_file.exists() {
        shard_file
    } else {
        let mut os = path.as_os_str().to_os_string();
        os.push(".shard1");
        std::path::PathBuf::from(os)
    };
    let original = std::fs::read(&live_shard).unwrap();
    std::fs::write(&tmp_file, b"CLITEOBS\x01\x00torn-partial-compaction").unwrap();

    // Reopen after the "crash": every record of the original log is the
    // longest valid prefix; the stale tmp is inert.
    let store = ShardedStore::open(&path, policy).unwrap();
    assert_eq!(store.warm_start(&signature), reference, "crash lost committed records");
    let stats = store.stats();
    assert_eq!(stats.dropped_bytes, 0, "original logs must be fully valid");
    assert_eq!(std::fs::read(&live_shard).unwrap(), original, "reopen must not rewrite the log");

    // A real compaction now shrinks the log to the retained records and
    // replaces the stale tmp as a side effect of the tmp+rename cycle.
    store.compact_all().unwrap();
    assert_eq!(store.stats().compactions, 2, "compact_all touches every shard");
    drop(store);
    let reopened = ShardedStore::open(&path, policy).unwrap();
    assert_eq!(reopened.warm_start(&signature), reference, "compaction changed lookup results");
    assert_eq!(
        reopened.stats().recovered_records as usize,
        reopened.record_count(),
        "compacted log holds exactly the retained records"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_shard_tail_recovers_longest_valid_prefix() {
    let dir = temp_dir("torn");
    let path = dir.join("obs.log");
    let policy = ShardPolicy {
        shards: 2,
        background_compaction: false,
        // Keep everything: each append is a distinct retained record.
        store: StorePolicy { entries_per_mix: 64, ..StorePolicy::default() },
        ..ShardPolicy::default()
    };

    let catalog = ResourceCatalog::testbed();
    let mut rng = StdRng::seed_from_u64(9);
    let signature = {
        let store = ShardedStore::open(&path, policy).unwrap();
        let mut server = Server::new(catalog, specs(2, 0.4), 9).unwrap();
        let signature = MixSignature::capture(&server);
        for k in 0..6 {
            let partition = Partition::random(&catalog, 2, &mut rng).unwrap();
            let observation = Testbed::observe(&mut server, &partition);
            store.append(&signature, &partition, &observation, 0.1 * f64::from(k)).unwrap();
        }
        signature
    };

    // Tear the populated shard's tail mid-frame.
    let shard_files: Vec<std::path::PathBuf> = (0..2)
        .map(|i| {
            let mut os = path.as_os_str().to_os_string();
            os.push(format!(".shard{i}"));
            std::path::PathBuf::from(os)
        })
        .collect();
    let live = shard_files
        .iter()
        .max_by_key(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .unwrap();
    let bytes = std::fs::read(live).unwrap();
    std::fs::write(live, &bytes[..bytes.len() - 7]).unwrap();

    let store = ShardedStore::open(&path, policy).unwrap();
    let stats = store.stats();
    assert!(stats.dropped_bytes > 0, "torn tail must be detected");
    assert_eq!(stats.recovered_records, 5, "longest valid prefix is all but the torn frame");
    let warm = store.warm_start(&signature).expect("prefix records still hit");
    assert_eq!(warm.entries.len(), 5);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_threshold_schedules_compaction() {
    let dir = temp_dir("gc");
    let path = dir.join("obs.log");
    let policy = ShardPolicy {
        shards: 2,
        background_compaction: false,
        compaction_min_log_records: 8,
        compaction_garbage_ratio: 0.5,
        ..ShardPolicy::default()
    };

    let store = ShardedStore::open(&path, policy).unwrap();
    let signature = append_rising(&store, 16); // retained 1, log 16 → 94% garbage
    assert_eq!(store.stats().compactions, 0, "synchronous mode must only queue");
    store.compact_pending().unwrap();
    assert_eq!(store.stats().compactions, 1, "exactly the dirty shard compacts");
    drop(store);

    // The compacted shard reopens with just the retained record.
    let store = ShardedStore::open(&path, policy).unwrap();
    assert_eq!(store.stats().recovered_records, 1);
    assert!(store.warm_start(&signature).is_some());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_compactor_rewrites_dirty_shards() {
    let dir = temp_dir("bg");
    let path = dir.join("obs.log");
    let policy = ShardPolicy {
        shards: 2,
        background_compaction: true,
        compaction_min_log_records: 8,
        compaction_garbage_ratio: 0.5,
        ..ShardPolicy::default()
    };

    let store = ShardedStore::open(&path, policy).unwrap();
    let signature = append_rising(&store, 16);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while store.stats().compactions == 0 {
        assert!(std::time::Instant::now() < deadline, "background compaction never ran");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // Lookup results are unchanged by the background rewrite.
    let warm = store.warm_start(&signature).expect("compacted shard still hits");
    assert_eq!(warm.entries[0].score, 0.15, "best score survives compaction");
    drop(store);

    // The rewrite may have landed anywhere in the append stream, so the
    // exact log length is timing-dependent — but it must have shrunk below
    // the 16 appended frames, and recovery dedupes back to one record.
    let reopened = ShardedStore::open(&path, policy).unwrap();
    assert!(reopened.stats().recovered_records < 16, "background rewrite shrank the log");
    assert_eq!(reopened.record_count(), 1, "dedupe retains the single best sample");
    assert_eq!(reopened.warm_start(&signature).unwrap().entries[0].score, 0.15);

    std::fs::remove_dir_all(&dir).ok();
}
