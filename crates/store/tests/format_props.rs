//! Property tests for the store record format: encode/decode round-trips
//! for arbitrary observations, and corruption recovery — the log is
//! truncated at every byte offset and hit with random bit flips, and
//! reopening must recover the valid prefix without ever panicking.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clite_sim::prelude::*;
use clite_sim::testbed::Testbed;
use clite_store::codec::{decode_record, encode_record};
use clite_store::log;
use clite_store::{MixSignature, ObservationStore, StoreRecord};

/// An alternating LC/BG mix of `jobs` co-located jobs.
fn specs(jobs: usize, load: f64) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            if i % 2 == 0 {
                JobSpec::latency_critical(WorkloadId::LATENCY_CRITICAL[i % 5], load)
            } else {
                JobSpec::background(WorkloadId::BACKGROUND[i % 6])
            }
        })
        .collect()
}

/// A record with a genuinely arbitrary observation: random mix size, load,
/// catalog, partition, and seed-driven simulator noise.
fn arb_record(seed: u64, jobs: usize, load: f64) -> StoreRecord {
    let catalog = ResourceCatalog::testbed();
    let mut server = Server::new(catalog, specs(jobs, load), seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    let partition = Partition::random(&catalog, jobs, &mut rng).unwrap();
    let observation = Testbed::observe(&mut server, &partition);
    let signature = MixSignature::capture(&server);
    let score = rng.gen_range(-1.0..1.0);
    StoreRecord { signature, partition, observation, score }
}

fn log_image(records: &[StoreRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(log::FILE_MAGIC);
    bytes.extend_from_slice(&log::FORMAT_VERSION.to_le_bytes());
    for r in records {
        bytes.extend_from_slice(&log::frame(&encode_record(r)));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary observations survive the codec byte-exactly.
    #[test]
    fn encode_decode_round_trips(seed: u64, jobs in 1usize..=5, load in 0.05f64..1.0) {
        let record = arb_record(seed, jobs, load);
        let payload = encode_record(&record);
        let back = decode_record(&payload).expect("own encoding must decode");
        prop_assert_eq!(back, record);
    }

    /// Truncating the log at EVERY byte offset, the scan recovers exactly
    /// the records whose frames fit in the prefix — and never panics.
    #[test]
    fn truncation_at_every_offset_recovers_valid_prefix(seed: u64, jobs in 1usize..=3) {
        let records: Vec<StoreRecord> =
            (0..3).map(|k| arb_record(seed.wrapping_add(k), jobs, 0.4)).collect();
        let img = log_image(&records);

        // Frame boundaries: prefix lengths at which exactly k records fit.
        let mut boundaries = vec![log::HEADER_LEN as usize];
        for k in 1..=records.len() {
            boundaries.push(log_image(&records[..k]).len());
        }

        for cut in 0..img.len() {
            let rec = log::scan(&img[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut).count().saturating_sub(1);
            if cut < log::HEADER_LEN as usize {
                prop_assert!(rec.header_rewritten, "cut {} inside header", cut);
            } else {
                prop_assert_eq!(rec.payloads.len(), expect, "cut at {}", cut);
                prop_assert_eq!(rec.valid_len as usize, boundaries[expect]);
                for (p, r) in rec.payloads.iter().zip(&records) {
                    prop_assert_eq!(&decode_record(p).unwrap(), r);
                }
            }
        }
    }

    /// Random bit flips anywhere in the file: reopening through the real
    /// filesystem path recovers a prefix of the original records — intact,
    /// in order, and without panicking — and the truncated file accepts
    /// further appends.
    #[test]
    fn bit_flips_recover_cleanly(seed: u64, jobs in 1usize..=3, flips in 1usize..=4) {
        let records: Vec<StoreRecord> =
            (0..3).map(|k| arb_record(seed.wrapping_add(k), jobs, 0.4)).collect();
        let mut img = log_image(&records);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF11B);
        for _ in 0..flips {
            let at = rng.gen_range(0..img.len());
            let bit = rng.gen_range(0..8u32);
            img[at] ^= 1 << bit;
        }

        let dir = std::env::temp_dir()
            .join(format!("clite-store-props-{}-{seed:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flipped.log");
        std::fs::write(&path, &img).unwrap();

        let store = ObservationStore::open(&path).expect("open never fails on corruption");
        let recovered = store.stats().recovered_records as usize;
        prop_assert!(recovered <= records.len());
        drop(store);

        // The recovered file must itself be a clean log: reopen sees the
        // same records and no further dropped bytes.
        let store2 = ObservationStore::open(&path).unwrap();
        prop_assert_eq!(store2.stats().recovered_records as usize, recovered);
        prop_assert_eq!(store2.stats().dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic (non-property) exhaustive truncation through the real
/// `ObservationStore::open` path: every prefix of a three-record log file
/// opens without panicking and yields a decodable prefix of the records.
#[test]
fn open_survives_truncation_at_every_offset() {
    let records: Vec<StoreRecord> = (0..3).map(|k| arb_record(90 + k, 2, 0.5)).collect();
    let img = log_image(&records);
    let dir = std::env::temp_dir().join(format!("clite-store-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prefix.log");

    for cut in 0..=img.len() {
        std::fs::write(&path, &img[..cut]).unwrap();
        let store = ObservationStore::open(&path).unwrap();
        let n = store.stats().recovered_records as usize;
        assert!(n <= records.len(), "cut at {cut}");
        if cut == img.len() {
            assert_eq!(n, records.len());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
