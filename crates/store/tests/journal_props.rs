//! Property tests for the write-ahead event journal: truncation at every
//! byte offset and random bit flips must both recover a seqno-contiguous
//! prefix of the original records — without panicking — and leave a
//! canonical file behind that accepts further appends.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clite_store::{EventJournal, JournalRecord};

/// Deterministic variable-length payloads so frame boundaries move around.
fn payloads(seed: u64, count: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(1..48usize);
            (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect()
        })
        .collect()
}

/// Writes `records` through the real journal and returns the on-disk image.
fn journal_image(dir: &std::path::Path, records: &[Vec<u8>]) -> Vec<u8> {
    let path = dir.join("image.journal");
    let _ = std::fs::remove_file(&path);
    let (mut journal, _) = EventJournal::open(&path).unwrap();
    for (seqno, payload) in records.iter().enumerate() {
        journal.append(seqno as u64, payload).unwrap();
    }
    drop(journal);
    std::fs::read(&path).unwrap()
}

fn tmp_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("clite-journal-props-{tag}-{}-{seed:x}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Asserts `got` is exactly the first `got.len()` records of `want`, with
/// contiguous seqnos.
fn assert_prefix(got: &[JournalRecord], want: &[Vec<u8>]) {
    assert!(got.len() <= want.len());
    for (i, rec) in got.iter().enumerate() {
        assert_eq!(rec.seqno, i as u64, "seqnos must stay contiguous");
        assert_eq!(rec.payload, want[i], "payload {i} must be intact");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Truncating the journal at EVERY byte offset: reopening recovers a
    /// seqno-contiguous prefix, never panics, and the rewritten file is
    /// clean on a second open and accepts the next append.
    #[test]
    fn truncation_at_every_offset_recovers_contiguous_prefix(seed: u64, count in 1usize..=4) {
        let dir = tmp_dir("trunc", seed);
        let records = payloads(seed, count);
        let img = journal_image(&dir, &records);
        let path = dir.join("cut.journal");

        for cut in 0..=img.len() {
            std::fs::write(&path, &img[..cut]).unwrap();
            let (mut journal, rec) = EventJournal::open(&path).unwrap();
            assert_prefix(&rec.records, &records);
            prop_assert_eq!(journal.next_seqno(), rec.records.len() as u64);
            if cut < img.len() {
                prop_assert!(rec.damaged() || rec.records.len() < records.len());
            } else {
                prop_assert!(!rec.damaged());
                prop_assert_eq!(rec.records.len(), records.len());
            }
            // The journal resumes exactly where the valid prefix ends.
            let next = journal.next_seqno();
            journal.append(next, b"resume").unwrap();
            drop(journal);
            let (_, rec2) = EventJournal::open(&path).unwrap();
            prop_assert!(!rec2.damaged(), "rewrite must leave a canonical file");
            prop_assert_eq!(rec2.records.len(), next as usize + 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Random bit flips anywhere in the file: recovery yields a contiguous
    /// prefix of intact records, and reopening the rewritten file reports
    /// no further damage.
    #[test]
    fn bit_flips_recover_contiguous_prefix(seed: u64, count in 1usize..=4, flips in 1usize..=4) {
        let dir = tmp_dir("flip", seed);
        let records = payloads(seed, count);
        let mut img = journal_image(&dir, &records);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF11B);
        for _ in 0..flips {
            let at = rng.gen_range(0..img.len());
            let bit = rng.gen_range(0..8u32);
            img[at] ^= 1 << bit;
        }
        let path = dir.join("flipped.journal");
        std::fs::write(&path, &img).unwrap();

        let (journal, rec) = EventJournal::open(&path).unwrap();
        assert_prefix(&rec.records, &records);
        prop_assert_eq!(journal.next_seqno(), rec.records.len() as u64);
        drop(journal);

        let (_, rec2) = EventJournal::open(&path).unwrap();
        prop_assert!(!rec2.damaged(), "recovered file must be canonical");
        prop_assert_eq!(rec2.records, rec.records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
