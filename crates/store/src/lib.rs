//! clite-store: a crash-safe observation store with warm-start lookup.
//!
//! CLITE's adaptivity story (paper §V) is "re-invoke the search when load
//! or mix changes" — but every re-invocation pays the full cold bootstrap
//! plus BO search, discarding observations already bought with 2-second
//! windows. This crate gives the controller memory that survives a
//! process:
//!
//! * an **append-only, checksummed log** of `(mix signature, partition,
//!   observation, score)` records ([`log`], [`codec`]) whose recovery path
//!   keeps the longest valid prefix of a torn or bit-flipped file and
//!   never panics;
//! * an **in-memory index** keyed by [`MixSignature`] — workloads, QoS
//!   targets, catalog, and quantized per-job load — with a load-distance
//!   reuse policy and per-mix best-K eviction ([`store`]);
//! * a **[`WarmStart`] API** that hands stored samples back to the search
//!   so a re-invocation on a seen (or nearby-load) mix primes its
//!   surrogate instead of bootstrapping from scratch.
//!
//! Everything the store decides — eviction order, nearest-bucket
//! selection, warm-entry ordering — is a pure function of record content:
//! no wall-clock timestamps, no RNG, no hash-iteration order. Warm-started
//! searches therefore stay byte-deterministic.

pub mod blob;
pub mod codec;
pub mod journal;
pub mod log;
pub mod shard;
pub mod signature;
pub mod store;

pub use blob::BlobRead;
pub use codec::DecodeError;
pub use journal::{EventJournal, JournalRecord, JournalRecovery};
pub use shard::{ShardPolicy, ShardedStore, StoreHandle};
pub use signature::{JobSignature, MixKey, MixSignature};
pub use store::{ObservationStore, SharedStore, StorePolicy, StoreStats, WarmEntry, WarmStart};

use clite_sim::alloc::Partition;
use clite_sim::metrics::Observation;

/// One logged sample: which problem, which configuration, what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// Identity of the co-location problem the sample belongs to.
    pub signature: MixSignature,
    /// The partition that was enforced.
    pub partition: Partition,
    /// The observation window measured under it.
    pub observation: Observation,
    /// The Eq. 3 score the controller assigned to the observation.
    pub score: f64,
}

/// Errors from the store's durable layer.
///
/// Kept `Clone + PartialEq` (unlike `std::io::Error`) so it can ride
/// inside `CliteError` and test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// Which operation (`"open"`, `"append"`, `"rename"`, ...).
        op: &'static str,
        /// The underlying error's message.
        message: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, message } => {
                write!(f, "observation store {op} failed: {message}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Shorthand for store-layer results.
pub type StoreResult<T> = Result<T, StoreError>;
