//! Binary encoding of store records.
//!
//! Hand-rolled little-endian framing instead of JSON: the payload must be
//! byte-deterministic (the same record always encodes to the same bytes,
//! so checksums and golden files are stable), must round-trip `f64`s
//! bit-exactly (including values JSON printers mangle), and is scanned
//! byte-by-byte during crash recovery, where a typed decoder that *returns*
//! errors — never panics and never reads past its slice — is the whole
//! safety argument.
//!
//! Layout is versioned by the log header (see [`crate::log`]); this module
//! implements payload version 1.

use clite_sim::alloc::{JobAllocation, Partition};
use clite_sim::counters::CounterSample;
use clite_sim::metrics::{JobObservation, Observation};
use clite_sim::resource::{ResourceCatalog, NUM_RESOURCES};
use clite_sim::workload::{JobClass, WorkloadId};

use crate::signature::{JobSignature, MixSignature};
use crate::StoreRecord;

/// Decode failure: what went wrong and where in the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset within the payload at which decoding failed.
    pub offset: usize,
    /// What the decoder expected there.
    pub expected: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt record payload at byte {}: expected {}", self.offset, self.expected)
    }
}

impl std::error::Error for DecodeError {}

/// Jobs per record above which a payload is rejected as corrupt (a length
/// prefix this large can only come from flipped bits).
const MAX_JOBS: usize = 1024;

// ── primitive writers ────────────────────────────────────────────────────
//
// The writers and `Reader` are public: downstream codecs (the fleet
// checkpoint in `clite-cluster`) reuse the exact same wire idiom rather
// than inventing a second framing dialect.

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u32` in little-endian byte order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian byte order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its little-endian bit pattern (bit-exact round
/// trip, unlike any decimal printing).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an optional `f64` as a presence byte plus the value.
pub fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => put_u8(buf, 0),
        Some(x) => {
            put_u8(buf, 1);
            put_f64(buf, x);
        }
    }
}

// ── primitive readers ────────────────────────────────────────────────────

/// A bounds-checked little-endian reader over one payload slice.
///
/// Every accessor returns a [`DecodeError`] naming the offset and the
/// expectation instead of panicking or reading past the slice — the whole
/// crash-recovery safety argument in one type.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// A decode error at the current position.
    #[must_use]
    pub fn fail(&self, expected: &'static str) -> DecodeError {
        DecodeError { offset: self.pos, expected }
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.fail(expected))?;
        if end > self.buf.len() {
            return Err(self.fail(expected));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] at end of input.
    pub fn u8(&mut self, expected: &'static str) -> Result<u8, DecodeError> {
        Ok(self.bytes(1, expected)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if fewer than 4 bytes remain.
    pub fn u32(&mut self, expected: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4, expected)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if fewer than 8 bytes remain.
    pub fn u64(&mut self, expected: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8, expected)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if fewer than 8 bytes remain.
    pub fn f64(&mut self, expected: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.bytes(8, expected)?.try_into().expect("8 bytes")))
    }

    /// Reads an optional `f64` (presence byte plus value).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on a malformed presence byte or short input.
    pub fn opt_f64(&mut self, expected: &'static str) -> Result<Option<f64>, DecodeError> {
        match self.u8(expected)? {
            0 => Ok(None),
            1 => Ok(Some(self.f64(expected)?)),
            _ => Err(self.fail(expected)),
        }
    }

    /// True once the whole slice has been consumed (decoders require this
    /// so trailing garbage is rejected, not silently ignored).
    #[must_use]
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ── domain types ─────────────────────────────────────────────────────────

/// The stable wire code of a workload (its index in [`WorkloadId::ALL`]).
#[must_use]
pub fn workload_code(w: WorkloadId) -> u8 {
    WorkloadId::ALL.iter().position(|&x| x == w).expect("workload in ALL") as u8
}

/// Reads a workload code back.
///
/// # Errors
///
/// Returns [`DecodeError`] on an out-of-range code.
pub fn workload_from_code(r: &mut Reader<'_>) -> Result<WorkloadId, DecodeError> {
    let code = r.u8("workload code")?;
    WorkloadId::ALL.get(code as usize).copied().ok_or_else(|| r.fail("workload code"))
}

fn class_code(c: JobClass) -> u8 {
    match c {
        JobClass::LatencyCritical => 0,
        JobClass::Background => 1,
    }
}

fn class_from_code(r: &mut Reader<'_>) -> Result<JobClass, DecodeError> {
    match r.u8("job class code")? {
        0 => Ok(JobClass::LatencyCritical),
        1 => Ok(JobClass::Background),
        _ => Err(r.fail("job class code")),
    }
}

fn put_counters(buf: &mut Vec<u8>, c: &CounterSample) {
    put_f64(buf, c.cpu_utilization);
    put_f64(buf, c.llc_hit_rate);
    put_f64(buf, c.mem_bw_used_frac);
    put_f64(buf, c.ipc_proxy);
    put_f64(buf, c.capacity_pressure);
    put_f64(buf, c.disk_bw_used_frac);
    put_f64(buf, c.net_bw_used_frac);
}

fn read_counters(r: &mut Reader<'_>) -> Result<CounterSample, DecodeError> {
    Ok(CounterSample {
        cpu_utilization: r.f64("counters")?,
        llc_hit_rate: r.f64("counters")?,
        mem_bw_used_frac: r.f64("counters")?,
        ipc_proxy: r.f64("counters")?,
        capacity_pressure: r.f64("counters")?,
        disk_bw_used_frac: r.f64("counters")?,
        net_bw_used_frac: r.f64("counters")?,
    })
}

/// Encodes partition rows (units only; the catalog travels separately).
pub fn put_partition_rows(buf: &mut Vec<u8>, partition: &Partition) {
    put_u32(buf, partition.job_count() as u32);
    for row in partition.rows() {
        for u in row.all_units() {
            put_u32(buf, u);
        }
    }
}

/// Reads partition rows back under `catalog`, validating feasibility.
///
/// # Errors
///
/// Returns [`DecodeError`] on short input, an absurd row count, or rows
/// that do not form a feasible partition of `catalog`.
pub fn read_partition_rows(
    r: &mut Reader<'_>,
    catalog: ResourceCatalog,
) -> Result<Partition, DecodeError> {
    let n_rows = job_count(r, "partition row count")?;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let mut units = [0u32; NUM_RESOURCES];
        for u in &mut units {
            *u = r.u32("partition units")?;
        }
        rows.push(JobAllocation::from_units(units));
    }
    Partition::from_rows(catalog, rows).map_err(|_| r.fail("feasible partition rows"))
}

/// Encodes one observation window (times, then per-job records).
pub fn put_observation(buf: &mut Vec<u8>, observation: &Observation) {
    put_f64(buf, observation.time_s);
    put_f64(buf, observation.window_s);
    put_u32(buf, observation.jobs.len() as u32);
    for j in &observation.jobs {
        put_u8(buf, workload_code(j.workload));
        put_u8(buf, class_code(j.class));
        put_f64(buf, j.latency_p95_us);
        put_f64(buf, j.offered_qps);
        put_f64(buf, j.normalized_perf);
        put_u8(
            buf,
            match j.qos_met {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            },
        );
        put_opt_f64(buf, j.qos_target_us);
        put_opt_f64(buf, j.iso_latency_p95_us);
        put_counters(buf, &j.counters);
    }
}

/// Reads one observation window back.
///
/// # Errors
///
/// Returns [`DecodeError`] on any malformed byte.
pub fn read_observation(r: &mut Reader<'_>) -> Result<Observation, DecodeError> {
    let time_s = r.f64("observation time")?;
    let window_s = r.f64("observation window")?;
    let n_obs = job_count(r, "observation job count")?;
    let mut obs_jobs = Vec::with_capacity(n_obs);
    for _ in 0..n_obs {
        let workload = workload_from_code(r)?;
        let class = class_from_code(r)?;
        let latency_p95_us = r.f64("latency")?;
        let offered_qps = r.f64("offered qps")?;
        let normalized_perf = r.f64("normalized perf")?;
        let qos_met = match r.u8("qos met flag")? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return Err(r.fail("qos met flag")),
        };
        let qos_target_us = r.opt_f64("qos target")?;
        let iso_latency_p95_us = r.opt_f64("iso latency")?;
        let counters = read_counters(r)?;
        obs_jobs.push(JobObservation {
            workload,
            class,
            latency_p95_us,
            offered_qps,
            normalized_perf,
            qos_met,
            qos_target_us,
            iso_latency_p95_us,
            counters,
        });
    }
    Ok(Observation { time_s, window_s, jobs: obs_jobs })
}

fn job_count(r: &mut Reader<'_>, expected: &'static str) -> Result<usize, DecodeError> {
    let n = r.u32(expected)? as usize;
    if n == 0 || n > MAX_JOBS {
        return Err(r.fail(expected));
    }
    Ok(n)
}

/// Encodes one record into the payload byte form framed by the log.
#[must_use]
pub fn encode_record(record: &StoreRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);

    // Signature: catalog units, then one entry per job.
    for u in record.signature.catalog {
        put_u32(&mut buf, u);
    }
    put_u32(&mut buf, record.signature.jobs.len() as u32);
    for j in &record.signature.jobs {
        put_u8(&mut buf, workload_code(j.workload));
        put_u8(&mut buf, class_code(j.class));
        put_u64(&mut buf, j.qos_decius);
        put_u32(&mut buf, j.load_pct);
    }

    // Partition rows (the catalog is the signature's), then observation.
    put_partition_rows(&mut buf, &record.partition);
    put_observation(&mut buf, &record.observation);

    put_f64(&mut buf, record.score);
    buf
}

/// Decodes one payload back into a record, validating every structural
/// invariant (workload codes, partition feasibility, exact length).
///
/// # Errors
///
/// Returns [`DecodeError`] on any malformed byte; never panics and never
/// reads out of bounds, whatever the input.
pub fn decode_record(payload: &[u8]) -> Result<StoreRecord, DecodeError> {
    let mut r = Reader::new(payload);

    let mut catalog = [0u32; NUM_RESOURCES];
    for u in &mut catalog {
        *u = r.u32("catalog units")?;
    }
    let n_jobs = job_count(&mut r, "signature job count")?;
    let mut jobs = Vec::with_capacity(n_jobs);
    for _ in 0..n_jobs {
        jobs.push(JobSignature {
            workload: workload_from_code(&mut r)?,
            class: class_from_code(&mut r)?,
            qos_decius: r.u64("qos target")?,
            load_pct: r.u32("load percent")?,
        });
    }
    let signature = MixSignature { catalog, jobs };

    let cat = ResourceCatalog::new(catalog).map_err(|_| r.fail("valid catalog"))?;
    let partition = read_partition_rows(&mut r, cat)?;
    let observation = read_observation(&mut r)?;

    let score = r.f64("score")?;
    if !r.done() {
        return Err(r.fail("end of payload"));
    }
    Ok(StoreRecord { signature, partition, observation, score })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::MixSignature;
    use clite_sim::prelude::*;
    use clite_sim::testbed::Testbed;

    fn sample_record() -> StoreRecord {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.4),
            JobSpec::background(WorkloadId::Blackscholes),
        ];
        let mut server = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
        let partition = Partition::equal_share(Testbed::catalog(&server), 2).unwrap();
        let observation = server.observe(&partition);
        let signature = MixSignature::capture(&server);
        StoreRecord { signature, partition, observation, score: 0.625 }
    }

    #[test]
    fn round_trips_a_real_record() {
        let rec = sample_record();
        let payload = encode_record(&rec);
        let back = decode_record(&payload).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn encoding_is_deterministic() {
        let rec = sample_record();
        assert_eq!(encode_record(&rec), encode_record(&rec));
    }

    #[test]
    fn truncated_payload_errors_cleanly() {
        let payload = encode_record(&sample_record());
        for cut in 0..payload.len() {
            assert!(decode_record(&payload[..cut]).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut payload = encode_record(&sample_record());
        payload.push(0);
        assert!(decode_record(&payload).is_err());
    }

    #[test]
    fn bad_workload_code_rejected() {
        let rec = sample_record();
        let mut payload = encode_record(&rec);
        // First job's workload code sits right after the 6 catalog u32s
        // and the u32 job count.
        let off = NUM_RESOURCES * 4 + 4;
        payload[off] = 200;
        assert!(decode_record(&payload).is_err());
    }
}
