//! Write-ahead fleet event journal: seqno-framed records over the
//! CLITESTO log protocol.
//!
//! The fleet service logs every event it is about to apply — as an opaque
//! payload prefixed with its commit sequence number — *before* mutating
//! scheduler state, so a crash at any instruction boundary loses at most
//! the event being journaled. Recovery reuses [`crate::log::scan`]'s
//! torn-tail protocol (longest valid prefix, never panics) and layers a
//! contiguity check on top: records must carry seqnos `0, 1, 2, …` with
//! no gaps, and anything after the first gap or undecodable record is
//! discarded and truncated away so the file on disk is always canonical.
//!
//! The journal does not know what a fleet event *is* — the event codec
//! lives with the fleet types in `clite-cluster`. This keeps the
//! dependency arrow pointing the right way (cluster → store) while the
//! durability protocol stays next to the log format it reuses.

use std::path::Path;

use crate::log::LogFile;
use crate::{StoreError, StoreResult};

/// Seqno prefix length inside each journal payload.
const SEQNO_LEN: usize = 8;

/// One recovered journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Commit sequence number (0-based, contiguous).
    pub seqno: u64,
    /// The event bytes as handed to [`EventJournal::append`].
    pub payload: Vec<u8>,
}

/// What opening an existing journal recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecovery {
    /// Every intact, seqno-contiguous record, in commit order.
    pub records: Vec<JournalRecord>,
    /// Bytes past the framing-valid prefix that the log layer dropped.
    pub dropped_bytes: u64,
    /// Framing-valid records discarded by the contiguity check (short
    /// payload, or a seqno gap — both mean the tail is not trustworthy).
    pub dropped_records: u64,
    /// True if the file header itself was missing or corrupt.
    pub header_rewritten: bool,
}

impl JournalRecovery {
    /// Whether recovery had to discard anything.
    #[must_use]
    pub fn damaged(&self) -> bool {
        self.dropped_bytes > 0 || self.dropped_records > 0 || self.header_rewritten
    }
}

/// An open write-ahead journal positioned for appends.
#[derive(Debug)]
pub struct EventJournal {
    log: LogFile,
    next_seqno: u64,
}

impl EventJournal {
    /// Opens (or creates) the journal at `path`, recovering the longest
    /// contiguous prefix of intact records.
    ///
    /// A torn tail, bit-flipped frame, or seqno gap is not an error: the
    /// valid prefix is kept, the damage reported in [`JournalRecovery`],
    /// and the file rewritten to exactly that prefix (tmp + rename) so a
    /// reopen sees a clean log.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures only.
    pub fn open(path: &Path) -> StoreResult<(Self, JournalRecovery)> {
        let (log, rec) = LogFile::open(path)?;
        let mut records = Vec::with_capacity(rec.payloads.len());
        for (i, payload) in rec.payloads.iter().enumerate() {
            let Some(seqno) = decode_seqno(payload) else { break };
            if seqno != i as u64 {
                break;
            }
            records.push(JournalRecord { seqno, payload: payload[SEQNO_LEN..].to_vec() });
        }
        let dropped_records = (rec.payloads.len() - records.len()) as u64;
        let log = if dropped_records > 0 {
            // A framing-valid record with a bad seqno would survive the
            // log layer's own truncation; rewrite the file down to the
            // contiguous prefix so the damage cannot resurface.
            let keep: Vec<Vec<u8>> = rec.payloads[..records.len()].to_vec();
            LogFile::rewrite(path, &keep)?
        } else {
            log
        };
        let recovery = JournalRecovery {
            dropped_bytes: rec.dropped_bytes,
            dropped_records,
            header_rewritten: rec.header_rewritten,
            records,
        };
        let next_seqno = recovery.records.len() as u64;
        Ok((Self { log, next_seqno }, recovery))
    }

    /// The seqno the next [`EventJournal::append`] must carry.
    #[must_use]
    pub fn next_seqno(&self) -> u64 {
        self.next_seqno
    }

    /// Appends one event payload under `seqno` and flushes it.
    ///
    /// The frame is written with a single `write_all`, so a crash
    /// mid-append tears at most this record — which the next open drops.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the write fails, or
    /// [`StoreError::Io`] with op `"journal seqno"` if `seqno` is not the
    /// next expected value (a caller bug, surfaced rather than silently
    /// corrupting the contiguity invariant).
    pub fn append(&mut self, seqno: u64, payload: &[u8]) -> StoreResult<()> {
        if seqno != self.next_seqno {
            return Err(StoreError::Io {
                op: "journal seqno",
                message: format!("expected seqno {}, got {seqno}", self.next_seqno),
            });
        }
        let mut buf = Vec::with_capacity(SEQNO_LEN + payload.len());
        buf.extend_from_slice(&seqno.to_le_bytes());
        buf.extend_from_slice(payload);
        self.log.append(&buf)?;
        self.next_seqno += 1;
        Ok(())
    }
}

fn decode_seqno(payload: &[u8]) -> Option<u64> {
    let bytes = payload.get(..SEQNO_LEN)?;
    Some(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("clite-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_recover_round_trip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("fleet.journal");
        {
            let (mut j, rec) = EventJournal::open(&path).unwrap();
            assert!(rec.records.is_empty());
            j.append(0, b"alpha").unwrap();
            j.append(1, b"beta").unwrap();
            assert_eq!(j.next_seqno(), 2);
        }
        let (j, rec) = EventJournal::open(&path).unwrap();
        assert_eq!(j.next_seqno(), 2);
        assert!(!rec.damaged());
        assert_eq!(
            rec.records,
            vec![
                JournalRecord { seqno: 0, payload: b"alpha".to_vec() },
                JournalRecord { seqno: 1, payload: b"beta".to_vec() },
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_out_of_order_appends() {
        let dir = tmp_dir("order");
        let (mut j, _) = EventJournal::open(&dir.join("fleet.journal")).unwrap();
        assert!(j.append(3, b"skip").is_err());
        j.append(0, b"ok").unwrap();
        assert!(j.append(0, b"replay").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join("fleet.journal");
        {
            let (mut j, _) = EventJournal::open(&path).unwrap();
            j.append(0, b"alpha").unwrap();
            j.append(1, b"beta").unwrap();
        }
        let img = std::fs::read(&path).unwrap();
        std::fs::write(&path, &img[..img.len() - 3]).unwrap();
        let (mut j, rec) = EventJournal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"alpha");
        assert!(rec.dropped_bytes > 0);
        // The journal accepts the re-append of the lost record.
        j.append(1, b"beta again").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seqno_gap_truncates_and_rewrites() {
        let dir = tmp_dir("gap");
        let path = dir.join("fleet.journal");
        // Hand-build a log whose second record skips seqno 1.
        let mut img = Vec::new();
        img.extend_from_slice(log::FILE_MAGIC);
        img.extend_from_slice(&log::FORMAT_VERSION.to_le_bytes());
        for (seqno, body) in [(0u64, b"alpha".as_slice()), (2, b"gamma")] {
            let mut p = seqno.to_le_bytes().to_vec();
            p.extend_from_slice(body);
            img.extend_from_slice(&log::frame(&p));
        }
        std::fs::write(&path, &img).unwrap();

        let (_, rec) = EventJournal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.dropped_records, 1);
        // The rewrite leaves a canonical file: reopening sees no damage.
        let (j, rec2) = EventJournal::open(&path).unwrap();
        assert!(!rec2.damaged());
        assert_eq!(rec2.records.len(), 1);
        assert_eq!(j.next_seqno(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_payload_is_dropped_not_panicked() {
        let dir = tmp_dir("short");
        let path = dir.join("fleet.journal");
        let mut img = Vec::new();
        img.extend_from_slice(log::FILE_MAGIC);
        img.extend_from_slice(&log::FORMAT_VERSION.to_le_bytes());
        img.extend_from_slice(&log::frame(b"abc")); // < 8 bytes: no seqno
        std::fs::write(&path, &img).unwrap();
        let (j, rec) = EventJournal::open(&path).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.dropped_records, 1);
        assert_eq!(j.next_seqno(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
