//! The append-only record log: framing, checksums, crash recovery.
//!
//! On-disk layout:
//!
//! ```text
//! [ b"CLITESTO" ][ version: u32 LE ]            file header, 12 bytes
//! [ REC_MAGIC: u32 LE ][ len: u32 LE ]
//! [ fnv1a64(payload): u64 LE ][ payload ]       one frame per record
//! ...
//! ```
//!
//! A crash can leave the file with a torn final frame (short header, short
//! payload, or a payload whose checksum no longer matches). Recovery scans
//! frames from the front and keeps the longest prefix of intact records;
//! everything from the first bad byte on is truncated away, so the next
//! append lands on a clean frame boundary. A file whose *header* is bad is
//! treated as empty and rewritten. Nothing in this module panics on any
//! input byte sequence.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::{StoreError, StoreResult};

/// File magic: identifies a clite-store log.
pub const FILE_MAGIC: &[u8; 8] = b"CLITESTO";
/// Current format version (header + payload layout).
pub const FORMAT_VERSION: u32 = 1;
/// Per-record frame magic (guards against mid-file seeks landing on data).
pub const REC_MAGIC: u32 = 0x4F42_5343; // "CSBO"
/// Header length in bytes.
pub const HEADER_LEN: u64 = 12;
/// Frame prologue length: magic + len + checksum.
pub const FRAME_PROLOGUE_LEN: usize = 16;
/// Longest payload accepted; larger length prefixes are corruption.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 24;

/// FNV-1a 64-bit hash of `bytes`.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames `payload` into the on-disk byte form.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_PROLOGUE_LEN + payload.len());
    out.extend_from_slice(&REC_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What a recovery scan found in an existing log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Payloads of every intact record, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (where the next append goes).
    pub valid_len: u64,
    /// Bytes past the valid prefix that were discarded.
    pub dropped_bytes: u64,
    /// True if the file header itself was missing or corrupt.
    pub header_rewritten: bool,
}

/// Scans `bytes` (a full file image) and returns the valid prefix.
///
/// Total function: any input maps to a `Recovery`, never a panic.
#[must_use]
pub fn scan(bytes: &[u8]) -> Recovery {
    let total = bytes.len() as u64;
    if bytes.len() < HEADER_LEN as usize
        || &bytes[..8] != FILE_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) != FORMAT_VERSION
    {
        return Recovery {
            payloads: Vec::new(),
            valid_len: 0,
            dropped_bytes: total,
            header_rewritten: true,
        };
    }

    let mut payloads = Vec::new();
    let mut pos = HEADER_LEN as usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < FRAME_PROLOGUE_LEN {
            break;
        }
        let magic = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        if magic != REC_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_LEN {
            break;
        }
        let len = len as usize;
        let Some(payload) = rest.get(FRAME_PROLOGUE_LEN..FRAME_PROLOGUE_LEN + len) else {
            break;
        };
        let checksum = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        if fnv1a64(payload) != checksum {
            break;
        }
        payloads.push(payload.to_vec());
        pos += FRAME_PROLOGUE_LEN + len;
    }

    let valid_len = pos as u64;
    Recovery { payloads, valid_len, dropped_bytes: total - valid_len, header_rewritten: false }
}

/// An open log file positioned for appends.
#[derive(Debug)]
pub struct LogFile {
    file: File,
}

fn io_err(op: &'static str, e: &std::io::Error) -> StoreError {
    StoreError::Io { op, message: e.to_string() }
}

impl LogFile {
    /// Opens (or creates) the log at `path`, recovering the valid prefix.
    ///
    /// The file is truncated to the valid prefix so later appends extend
    /// intact data; a corrupt header resets the file to an empty log.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures. Corruption is
    /// not an error — it is reported through [`Recovery`].
    pub fn open(path: &Path) -> StoreResult<(Self, Recovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open", &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err("read", &e))?;

        let recovery = scan(&bytes);
        if recovery.header_rewritten {
            file.set_len(0).map_err(|e| io_err("truncate", &e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seek", &e))?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(FILE_MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            file.write_all(&header).map_err(|e| io_err("write header", &e))?;
            file.flush().map_err(|e| io_err("flush", &e))?;
        } else if recovery.dropped_bytes > 0 {
            file.set_len(recovery.valid_len).map_err(|e| io_err("truncate", &e))?;
        }
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", &e))?;
        Ok((Self { file }, recovery))
    }

    /// Appends one framed payload and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the write fails; the frame is written
    /// with a single `write_all` so a crash mid-append tears at most the
    /// final frame, which the next open recovers past.
    pub fn append(&mut self, payload: &[u8]) -> StoreResult<()> {
        let framed = frame(payload);
        self.file.write_all(&framed).map_err(|e| io_err("append", &e))?;
        self.file.flush().map_err(|e| io_err("flush", &e))?;
        Ok(())
    }

    /// Atomically replaces the log contents with `payloads` (compaction).
    ///
    /// Writes a fresh header + frames to `<path>.tmp`, then renames over
    /// `path`, so a crash leaves either the old or the new log — never a
    /// mix.
    ///
    /// The `.tmp` suffix is appended to the full file name (not swapped in
    /// for the extension): sharded stores name their logs `obs.log.shardN`
    /// and must not share one temp file across shards.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures.
    pub fn rewrite(path: &Path, payloads: &[Vec<u8>]) -> StoreResult<Self> {
        let tmp = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        {
            let mut out = File::create(&tmp).map_err(|e| io_err("create tmp", &e))?;
            let mut bytes = Vec::new();
            bytes.extend_from_slice(FILE_MAGIC);
            bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            for p in payloads {
                bytes.extend_from_slice(&frame(p));
            }
            out.write_all(&bytes).map_err(|e| io_err("write tmp", &e))?;
            out.flush().map_err(|e| io_err("flush tmp", &e))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| io_err("rename", &e))?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("reopen", &e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", &e))?;
        Ok(Self { file })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FILE_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for p in payloads {
            bytes.extend_from_slice(&frame(p));
        }
        bytes
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn scan_reads_all_intact_records() {
        let img = image(&[b"one", b"two", b"three"]);
        let rec = scan(&img);
        assert_eq!(rec.payloads, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert_eq!(rec.valid_len, img.len() as u64);
        assert_eq!(rec.dropped_bytes, 0);
        assert!(!rec.header_rewritten);
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let full = image(&[b"alpha", b"beta"]);
        let keep = image(&[b"alpha"]).len();
        for cut in keep..full.len() {
            let rec = scan(&full[..cut]);
            assert_eq!(rec.payloads, vec![b"alpha".to_vec()], "cut at {cut}");
            assert_eq!(rec.valid_len, keep as u64);
        }
    }

    #[test]
    fn scan_rejects_bad_header() {
        let mut img = image(&[b"x"]);
        img[0] = b'X';
        let rec = scan(&img);
        assert!(rec.header_rewritten);
        assert_eq!(rec.valid_len, 0);
        assert!(rec.payloads.is_empty());
    }

    #[test]
    fn scan_stops_at_checksum_mismatch() {
        let mut img = image(&[b"alpha", b"beta"]);
        let last = img.len() - 1;
        img[last] ^= 0xFF; // corrupt beta's final payload byte
        let rec = scan(&img);
        assert_eq!(rec.payloads, vec![b"alpha".to_vec()]);
        assert!(rec.dropped_bytes > 0);
    }

    #[test]
    fn scan_rejects_absurd_length_prefix() {
        let mut img = image(&[]);
        img.extend_from_slice(&REC_MAGIC.to_le_bytes());
        img.extend_from_slice(&u32::MAX.to_le_bytes());
        img.extend_from_slice(&[0u8; 8]);
        let rec = scan(&img);
        assert!(rec.payloads.is_empty());
        assert_eq!(rec.valid_len, HEADER_LEN);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let dir = std::env::temp_dir().join(format!("clite-store-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.log");
        let mut img = image(&[b"alpha", b"beta"]);
        img.truncate(img.len() - 2);
        std::fs::write(&path, &img).unwrap();

        let (mut log, rec) = LogFile::open(&path).unwrap();
        assert_eq!(rec.payloads, vec![b"alpha".to_vec()]);
        log.append(b"gamma").unwrap();
        drop(log);

        let (_, rec2) = LogFile::open(&path).unwrap();
        assert_eq!(rec2.payloads, vec![b"alpha".to_vec(), b"gamma".to_vec()]);
        assert_eq!(rec2.dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
