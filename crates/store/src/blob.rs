//! Atomic checksummed single-blob files: the checkpoint codec.
//!
//! A blob file is `[magic: 8 bytes][version: u32 LE][frame(payload)]`,
//! with the frame borrowed from the record log ([`crate::log::frame`]:
//! record magic, length, FNV-1a 64 checksum, payload). Writes go through
//! a `.tmp` sibling and a rename, so a crash leaves either the old blob
//! or the new one — never a mix — and reads treat *any* malformed byte
//! as "no usable blob" rather than an error, because a checkpoint that
//! fails its checksum must degrade to full-journal replay, not abort
//! recovery.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::log::{fnv1a64, FRAME_PROLOGUE_LEN, MAX_PAYLOAD_LEN, REC_MAGIC};
use crate::{StoreError, StoreResult};

/// Blob header length: magic + version.
const BLOB_HEADER_LEN: usize = 12;

/// What reading a blob file found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobRead {
    /// No file at the path (a fresh start, not damage).
    Missing,
    /// A file exists but its magic, version, framing, or checksum is
    /// wrong; callers should fall back as if the blob were absent.
    Corrupt {
        /// What check failed.
        reason: &'static str,
    },
    /// The intact payload.
    Valid(Vec<u8>),
}

/// Atomically writes `payload` as a checksummed blob at `path`.
///
/// The `.tmp` suffix is appended to the full file name, mirroring
/// [`crate::log::LogFile::rewrite`].
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failures.
pub fn save(path: &Path, magic: &[u8; 8], version: u32, payload: &[u8]) -> StoreResult<()> {
    let io =
        |op: &'static str| move |e: std::io::Error| StoreError::Io { op, message: e.to_string() };
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    {
        let mut out = std::fs::File::create(&tmp).map_err(io("create tmp"))?;
        let mut bytes = Vec::with_capacity(BLOB_HEADER_LEN + FRAME_PROLOGUE_LEN + payload.len());
        bytes.extend_from_slice(magic);
        bytes.extend_from_slice(&version.to_le_bytes());
        bytes.extend_from_slice(&crate::log::frame(payload));
        out.write_all(&bytes).map_err(io("write tmp"))?;
        out.flush().map_err(io("flush tmp"))?;
    }
    std::fs::rename(&tmp, path).map_err(io("rename"))?;
    Ok(())
}

/// Reads the blob at `path`, verifying magic, version, framing, and
/// checksum. Total on content: corruption maps to [`BlobRead::Corrupt`],
/// never a panic or an error.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failures other than the file
/// simply not existing (which is [`BlobRead::Missing`]).
pub fn read(path: &Path, magic: &[u8; 8], version: u32) -> StoreResult<BlobRead> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BlobRead::Missing),
        Err(e) => return Err(StoreError::Io { op: "read blob", message: e.to_string() }),
    };
    Ok(parse(&bytes, magic, version))
}

fn parse(bytes: &[u8], magic: &[u8; 8], version: u32) -> BlobRead {
    let corrupt = |reason| BlobRead::Corrupt { reason };
    if bytes.len() < BLOB_HEADER_LEN + FRAME_PROLOGUE_LEN {
        return corrupt("truncated header");
    }
    if &bytes[..8] != magic {
        return corrupt("bad magic");
    }
    if u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) != version {
        return corrupt("bad version");
    }
    let frame = &bytes[BLOB_HEADER_LEN..];
    if u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) != REC_MAGIC {
        return corrupt("bad frame magic");
    }
    let len = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD_LEN {
        return corrupt("absurd length");
    }
    let checksum = u64::from_le_bytes(frame[8..16].try_into().expect("8 bytes"));
    let Some(payload) = frame.get(FRAME_PROLOGUE_LEN..FRAME_PROLOGUE_LEN + len as usize) else {
        return corrupt("truncated payload");
    };
    if frame.len() != FRAME_PROLOGUE_LEN + len as usize {
        return corrupt("trailing bytes");
    }
    if fnv1a64(payload) != checksum {
        return corrupt("checksum mismatch");
    }
    BlobRead::Valid(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"CLITETST";

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("clite-blob-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_and_overwrites_atomically() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("state.ckpt");
        assert_eq!(read(&path, MAGIC, 1).unwrap(), BlobRead::Missing);
        save(&path, MAGIC, 1, b"first").unwrap();
        assert_eq!(read(&path, MAGIC, 1).unwrap(), BlobRead::Valid(b"first".to_vec()));
        save(&path, MAGIC, 1, b"second, longer payload").unwrap();
        assert_eq!(
            read(&path, MAGIC, 1).unwrap(),
            BlobRead::Valid(b"second, longer payload".to_vec())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_at_every_offset_reads_as_corrupt_or_missing_prefix() {
        let dir = tmp_dir("flip");
        let path = dir.join("state.ckpt");
        save(&path, MAGIC, 1, b"payload under test").unwrap();
        let img = std::fs::read(&path).unwrap();
        for at in 0..img.len() {
            let mut bad = img.clone();
            bad[at] ^= 0x40;
            match parse(&bad, MAGIC, 1) {
                BlobRead::Valid(p) => panic!("flip at {at} still read valid: {p:?}"),
                BlobRead::Missing => unreachable!(),
                BlobRead::Corrupt { .. } => {}
            }
        }
        // Truncation at every offset is equally non-fatal.
        for cut in 0..img.len() {
            assert!(
                matches!(parse(&img[..cut], MAGIC, 1), BlobRead::Corrupt { .. }),
                "cut at {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_magic_or_version_is_corrupt() {
        let dir = tmp_dir("magic");
        let path = dir.join("state.ckpt");
        save(&path, MAGIC, 1, b"x").unwrap();
        assert!(matches!(read(&path, b"CLITEOTH", 1).unwrap(), BlobRead::Corrupt { .. }));
        assert!(matches!(read(&path, MAGIC, 2).unwrap(), BlobRead::Corrupt { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
