//! Mix signatures: the store's index key.
//!
//! A signature captures what makes two co-location problems "the same
//! search": the machine's resource catalog, the ordered workload mix, each
//! LC job's QoS target, and each job's offered load. Catalog, workloads,
//! and QoS targets must match exactly for reuse to be sound (a different
//! mix is a different objective); load is the dimension along which nearby
//! problems share structure, so it is kept out of the hash key and used as
//! a distance instead.
//!
//! All fields are small quantized integers — load at whole-percent
//! granularity, QoS targets at 0.1 µs — so signatures are hashable,
//! byte-stable, and immune to float round-trip noise.

use clite_sim::resource::NUM_RESOURCES;
use clite_sim::testbed::Testbed;
use clite_sim::workload::{JobClass, WorkloadId};

/// One job's contribution to a mix signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobSignature {
    /// The workload running in this slot.
    pub workload: WorkloadId,
    /// Latency-critical or background.
    pub class: JobClass,
    /// QoS target in tenths of a microsecond (0 for BG jobs).
    pub qos_decius: u64,
    /// Offered load as a whole percentage of max QPS (100 for BG jobs).
    pub load_pct: u32,
}

/// Identity of one co-location problem: catalog + per-job signatures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MixSignature {
    /// Resource catalog unit counts, in [`clite_sim::resource::ResourceKind::ALL`] order.
    pub catalog: [u32; NUM_RESOURCES],
    /// Per-job signatures in job order.
    pub jobs: Vec<JobSignature>,
}

/// The exact-match portion of a signature — everything except load.
///
/// Two signatures with the same key describe the same mix running at
/// (possibly) different load points; their stored samples are candidates
/// for warm-starting each other, gated by [`MixSignature::load_distance`].
pub type MixKey = ([u32; NUM_RESOURCES], Vec<(WorkloadId, JobClass, u64)>);

impl MixSignature {
    /// Reads the signature of the mix currently running on `server`.
    pub fn capture<T: Testbed + ?Sized>(server: &T) -> Self {
        let catalog = server.catalog().all_units();
        let jobs = (0..server.job_count())
            .map(|j| {
                let class = server.class(j);
                let qos_decius = match server.qos(j) {
                    Some(spec) => quantize_qos(spec.target_us),
                    None => 0,
                };
                let load_pct = match class {
                    JobClass::LatencyCritical => quantize_load(server.load(j)),
                    JobClass::Background => 100,
                };
                JobSignature { workload: server.workload(j), class, qos_decius, load_pct }
            })
            .collect();
        Self { catalog, jobs }
    }

    /// The exact-match index key (signature minus loads).
    #[must_use]
    pub fn key(&self) -> MixKey {
        (self.catalog, self.jobs.iter().map(|j| (j.workload, j.class, j.qos_decius)).collect())
    }

    /// The quantized per-job load vector, in job order.
    #[must_use]
    pub fn loads(&self) -> Vec<u32> {
        self.jobs.iter().map(|j| j.load_pct).collect()
    }

    /// Stable 64-bit hash of the mix key (FNV-1a over a fixed byte
    /// encoding), used to route signatures to store shards. Excludes load
    /// — all load points of one mix land on the same shard, so nearby-load
    /// reuse never crosses shard boundaries and results are invariant to
    /// the shard count. Content-derived only: no `Hash`-impl or pointer
    /// input, so the value is stable across runs and processes.
    #[must_use]
    pub fn shard_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(4 * NUM_RESOURCES + 16 * self.jobs.len());
        for units in self.catalog {
            bytes.extend_from_slice(&units.to_le_bytes());
        }
        for job in &self.jobs {
            bytes.extend_from_slice(job.workload.name().as_bytes());
            bytes.push(0); // terminator so names cannot run together
            bytes.push(match job.class {
                JobClass::LatencyCritical => 0,
                JobClass::Background => 1,
            });
            bytes.extend_from_slice(&job.qos_decius.to_le_bytes());
        }
        crate::log::fnv1a64(&bytes)
    }

    /// Worst-case per-job load gap to `other`, as a fraction in `[0, 1]`
    /// (L∞ over the load vectors). `f64::INFINITY` if the mixes differ.
    #[must_use]
    pub fn load_distance(&self, other: &Self) -> f64 {
        if self.key() != other.key() {
            return f64::INFINITY;
        }
        load_vector_distance(&self.loads(), &other.loads())
    }
}

/// L∞ distance between two quantized load vectors, as a load fraction.
#[must_use]
pub fn load_vector_distance(a: &[u32], b: &[u32]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    let max_gap = a.iter().zip(b).map(|(&x, &y)| x.abs_diff(y)).max().unwrap_or(0);
    f64::from(max_gap) / 100.0
}

/// Quantizes a load fraction to whole percent.
#[must_use]
pub fn quantize_load(load_frac: f64) -> u32 {
    let pct = (load_frac * 100.0).round();
    if pct.is_finite() && pct >= 0.0 {
        pct as u32
    } else {
        0
    }
}

/// Quantizes a QoS target (µs) to tenths of a microsecond.
#[must_use]
pub fn quantize_qos(target_us: f64) -> u64 {
    let decius = (target_us * 10.0).round();
    if decius.is_finite() && decius >= 0.0 {
        decius as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    fn server(loads: &[(WorkloadId, f64)]) -> Server {
        let jobs: Vec<JobSpec> = loads
            .iter()
            .map(|&(w, l)| JobSpec::latency_critical(w, l))
            .chain(std::iter::once(JobSpec::background(WorkloadId::Canneal)))
            .collect();
        Server::new(ResourceCatalog::testbed(), jobs, 7).unwrap()
    }

    #[test]
    fn capture_quantizes_loads_and_qos() {
        let s = server(&[(WorkloadId::Memcached, 0.437)]);
        let sig = MixSignature::capture(&s);
        assert_eq!(sig.catalog, ResourceCatalog::testbed().all_units());
        assert_eq!(sig.jobs.len(), 2);
        assert_eq!(sig.jobs[0].load_pct, 44);
        assert!(sig.jobs[0].qos_decius > 0);
        assert_eq!(sig.jobs[1].load_pct, 100);
        assert_eq!(sig.jobs[1].qos_decius, 0);
    }

    #[test]
    fn same_mix_different_load_shares_key() {
        let a = MixSignature::capture(&server(&[(WorkloadId::Memcached, 0.20)]));
        let b = MixSignature::capture(&server(&[(WorkloadId::Memcached, 0.60)]));
        assert_eq!(a.key(), b.key());
        assert!((a.load_distance(&b) - 0.40).abs() < 1e-12);
    }

    #[test]
    fn different_mix_is_infinitely_far() {
        let a = MixSignature::capture(&server(&[(WorkloadId::Memcached, 0.50)]));
        let b = MixSignature::capture(&server(&[(WorkloadId::Xapian, 0.50)]));
        assert_ne!(a.key(), b.key());
        assert_eq!(a.load_distance(&b), f64::INFINITY);
    }

    #[test]
    fn quantization_edge_cases() {
        assert_eq!(quantize_load(0.0), 0);
        assert_eq!(quantize_load(1.0), 100);
        assert_eq!(quantize_load(f64::NAN), 0);
        assert_eq!(quantize_load(-0.3), 0);
        assert_eq!(quantize_qos(500.04), 5000);
        assert_eq!(quantize_qos(f64::INFINITY), 0);
    }
}
