//! The observation store: durable log + in-memory index + warm-start
//! lookup.
//!
//! Appends go to the crash-safe log (see [`crate::log`]) and into an index
//! keyed by [`MixKey`] — catalog, workloads, classes, QoS targets — with a
//! second level keyed by the quantized load vector. Lookups return the
//! bucket at the exact load point if present, otherwise the nearest bucket
//! within the policy's load-distance budget. Every choice the store makes
//! (eviction order, nearest-bucket tie-breaks, warm-entry order) is
//! determined by record *content*, never by wall-clock time, RNG, or hash
//! iteration order, so a warm-started search is byte-reproducible.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use clite_sim::alloc::Partition;
use clite_sim::metrics::Observation;
use clite_telemetry::{Event, Telemetry};

use crate::codec::{decode_record, encode_record};
use crate::log::{LogFile, Recovery};
use crate::signature::{load_vector_distance, MixKey, MixSignature};
use crate::{StoreRecord, StoreResult};

/// Tunables for reuse distance and eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorePolicy {
    /// Largest L∞ load-vector gap (as a load fraction) at which stored
    /// samples are still offered for warm starts.
    pub max_load_distance: f64,
    /// Most warm entries returned by one lookup.
    pub max_warm_entries: usize,
    /// Most records retained per (mix, load-vector) bucket; the
    /// lowest-scoring beyond this are evicted.
    pub entries_per_mix: usize,
}

impl Default for StorePolicy {
    fn default() -> Self {
        Self { max_load_distance: 0.10, max_warm_entries: 8, entries_per_mix: 16 }
    }
}

/// Counters describing everything the store has done since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended this session.
    pub appends: u64,
    /// Warm-start lookups that returned entries.
    pub hits: u64,
    /// Warm-start lookups that returned nothing.
    pub misses: u64,
    /// Records dropped by per-bucket eviction this session.
    pub evictions: u64,
    /// Intact records recovered from the log at open.
    pub recovered_records: u64,
    /// Bytes of torn/corrupt tail discarded at open.
    pub dropped_bytes: u64,
    /// Frames that passed the log's integrity checks at open but no
    /// longer decoded as records (e.g. written by a newer codec); skipped,
    /// not fatal.
    pub undecodable_records: u64,
    /// Append attempts that failed at the I/O layer (cluster best-effort
    /// appends count here instead of failing the search).
    pub append_errors: u64,
    /// Lock acquisitions that found the store busy and had to wait
    /// (bumped by the sharded front-end; always 0 for a store accessed
    /// through one exclusive lock). Contention-tuning signal only: never
    /// part of any determinism contract.
    pub lock_waits: u64,
    /// Log compactions completed (manual or background).
    pub compactions: u64,
}

/// One stored sample offered to a warm start.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmEntry {
    /// The partition that was evaluated.
    pub partition: Partition,
    /// What one observation window measured under it.
    pub observation: Observation,
    /// The Eq. 3 score the controller assigned.
    pub score: f64,
}

/// The result of a warm-start lookup: prior samples plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Stored samples, best score first (ties broken by partition bytes).
    pub entries: Vec<WarmEntry>,
    /// L∞ load distance from the stored bucket to the querying mix.
    pub load_distance: f64,
    /// True if the stored bucket is at the querying load exactly.
    pub exact: bool,
}

impl WarmStart {
    /// Whether any warm entry met every LC job's QoS target.
    #[must_use]
    pub fn any_qos_met(&self) -> bool {
        self.entries.iter().any(|e| e.observation.all_qos_met())
    }
}

/// A retained record: what the index keeps per append.
#[derive(Debug, Clone)]
struct Retained {
    seq: u64,
    record: StoreRecord,
}

/// The observation store: a crash-safe log with a warm-start index.
#[derive(Debug)]
pub struct ObservationStore {
    path: Option<PathBuf>,
    log: Option<LogFile>,
    /// mix key → quantized load vector → retained records.
    index: HashMap<MixKey, HashMap<Vec<u32>, Vec<Retained>>>,
    policy: StorePolicy,
    stats: StoreStats,
    next_seq: u64,
    /// Frames currently in the durable log (retained + evicted garbage);
    /// 0 for in-memory stores. Compaction resets this to the retained
    /// count.
    log_records: u64,
    /// Records currently retained in the index (incremental mirror of
    /// [`ObservationStore::record_count`]).
    retained_records: u64,
}

/// A store shared across controllers and cluster nodes.
pub type SharedStore = Arc<Mutex<ObservationStore>>;

impl ObservationStore {
    /// Opens (or creates) the store at `path` with the default policy.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] on filesystem failures. A torn or
    /// bit-flipped tail is not an error: the valid prefix is recovered and
    /// the damage reported in [`ObservationStore::stats`].
    pub fn open(path: impl AsRef<Path>) -> StoreResult<Self> {
        Self::open_with(path, StorePolicy::default())
    }

    /// Opens (or creates) the store at `path` with an explicit policy.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] on filesystem failures.
    pub fn open_with(path: impl AsRef<Path>, policy: StorePolicy) -> StoreResult<Self> {
        Self::open_observed(path, policy, &Telemetry::disabled())
    }

    /// [`ObservationStore::open_with`] with telemetry: when reopen-time
    /// recovery had to discard anything — a torn/corrupt tail, a bad
    /// header, or frames that framed correctly but no longer decode — an
    /// [`Event::StoreRecovered`] is emitted instead of truncating
    /// silently. The same counts are surfaced in
    /// [`ObservationStore::stats`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] on filesystem failures.
    pub fn open_observed(
        path: impl AsRef<Path>,
        policy: StorePolicy,
        telemetry: &Telemetry<'_>,
    ) -> StoreResult<Self> {
        let path = path.as_ref().to_path_buf();
        let (log, recovery) = LogFile::open(&path)?;
        let mut store = Self {
            path: Some(path),
            log: Some(log),
            index: HashMap::new(),
            policy,
            stats: StoreStats::default(),
            next_seq: 0,
            log_records: 0,
            retained_records: 0,
        };
        store.load_recovery(&recovery);
        let damaged = store.stats.dropped_bytes > 0
            || store.stats.undecodable_records > 0
            || recovery.header_rewritten;
        if damaged {
            telemetry.emit(Event::StoreRecovered {
                records: usize::try_from(store.stats.recovered_records).unwrap_or(usize::MAX),
                dropped_bytes: store.stats.dropped_bytes,
                undecodable: usize::try_from(store.stats.undecodable_records).unwrap_or(usize::MAX),
            });
        }
        Ok(store)
    }

    /// A store with no backing file; useful for tests and one-shot runs.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::in_memory_with(StorePolicy::default())
    }

    /// An in-memory store with an explicit policy.
    #[must_use]
    pub fn in_memory_with(policy: StorePolicy) -> Self {
        Self {
            path: None,
            log: None,
            index: HashMap::new(),
            policy,
            stats: StoreStats::default(),
            next_seq: 0,
            log_records: 0,
            retained_records: 0,
        }
    }

    /// Wraps a store for `Arc`-wide sharing across nodes/controllers.
    #[must_use]
    pub fn into_shared(self) -> SharedStore {
        Arc::new(Mutex::new(self))
    }

    fn load_recovery(&mut self, recovery: &Recovery) {
        self.stats.dropped_bytes = recovery.dropped_bytes;
        for payload in &recovery.payloads {
            // A payload that framed correctly but no longer decodes (e.g.
            // written by a newer codec) is skipped, not fatal.
            if let Ok(record) = decode_record(payload) {
                self.stats.recovered_records += 1;
                self.log_records += 1;
                self.index_record(record);
            } else {
                self.stats.undecodable_records += 1;
                self.log_records += 1;
            }
        }
    }

    /// The reuse/eviction policy in force.
    #[must_use]
    pub fn policy(&self) -> StorePolicy {
        self.policy
    }

    /// Session counters (appends, hits, recovery results, ...).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Number of distinct mixes currently indexed.
    #[must_use]
    pub fn mix_count(&self) -> usize {
        self.index.len()
    }

    /// Number of records currently retained in the index (post-eviction).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.index.values().flat_map(HashMap::values).map(Vec::len).sum()
    }

    /// Frames currently in the durable log, including evicted garbage not
    /// yet compacted away. Always 0 for in-memory stores.
    #[must_use]
    pub fn log_records(&self) -> u64 {
        self.log_records
    }

    /// Fraction of the durable log occupied by garbage — frames whose
    /// records have since been evicted from the index (or never decoded).
    /// The sharded front-end triggers background compaction when this
    /// crosses its threshold. 0.0 for in-memory or empty logs.
    #[must_use]
    pub fn garbage_ratio(&self) -> f64 {
        if self.log_records == 0 {
            return 0.0;
        }
        let retained = self.retained_records.min(self.log_records);
        1.0 - retained as f64 / self.log_records as f64
    }

    /// Appends one sample, updating the log and the index.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] if the log write fails; the index
    /// is left unchanged in that case.
    pub fn append(
        &mut self,
        signature: &MixSignature,
        partition: &Partition,
        observation: &Observation,
        score: f64,
    ) -> StoreResult<()> {
        self.append_with(signature, partition, observation, score, &Telemetry::disabled())
    }

    /// [`ObservationStore::append`] with telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] if the log write fails.
    pub fn append_with(
        &mut self,
        signature: &MixSignature,
        partition: &Partition,
        observation: &Observation,
        score: f64,
        telemetry: &Telemetry<'_>,
    ) -> StoreResult<()> {
        let record = StoreRecord {
            signature: signature.clone(),
            partition: partition.clone(),
            observation: observation.clone(),
            score,
        };
        if let Some(log) = &mut self.log {
            let payload = encode_record(&record);
            if let Err(e) = log.append(&payload) {
                self.stats.append_errors += 1;
                return Err(e);
            }
            self.log_records += 1;
        }
        self.stats.appends += 1;
        self.index_record(record);
        telemetry.emit(Event::StoreAppend { score });
        Ok(())
    }

    /// Records an append failure observed by a best-effort caller.
    pub fn note_append_error(&mut self) {
        self.stats.append_errors += 1;
    }

    fn index_record(&mut self, record: StoreRecord) {
        let key = record.signature.key();
        let loads = record.signature.loads();
        let seq = self.next_seq;
        self.next_seq += 1;
        let bucket = self.index.entry(key).or_default().entry(loads).or_default();
        bucket.push(Retained { seq, record });
        let evicted = evict(bucket, self.policy.entries_per_mix) as u64;
        self.stats.evictions += evicted;
        self.retained_records += 1;
        self.retained_records -= evicted;
    }

    /// Read-only warm-start lookup: identical results to
    /// [`ObservationStore::warm_start`] but without touching the hit/miss
    /// counters, so it needs only `&self`. This is the sharded store's
    /// read fast path — many concurrent lookups can run under one shared
    /// (read) lock while the counters live outside as atomics.
    #[must_use]
    pub fn peek(&self, signature: &MixSignature) -> Option<WarmStart> {
        self.lookup(signature)
    }

    /// Looks up warm-start samples for `signature`.
    ///
    /// Returns the exact-load bucket if present, otherwise the nearest
    /// bucket within [`StorePolicy::max_load_distance`] (ties broken by
    /// the lexicographically smallest load vector), or `None` on a miss.
    pub fn warm_start(&mut self, signature: &MixSignature) -> Option<WarmStart> {
        self.warm_start_with(signature, &Telemetry::disabled())
    }

    /// [`ObservationStore::warm_start`] with telemetry.
    pub fn warm_start_with(
        &mut self,
        signature: &MixSignature,
        telemetry: &Telemetry<'_>,
    ) -> Option<WarmStart> {
        let found = self.lookup(signature);
        match &found {
            Some(warm) => {
                self.stats.hits += 1;
                telemetry.emit(Event::StoreHit {
                    entries: warm.entries.len(),
                    load_distance: warm.load_distance,
                    exact: warm.exact,
                });
            }
            None => {
                self.stats.misses += 1;
                telemetry.emit(Event::StoreMiss { mixes: self.index.len() });
            }
        }
        found
    }

    fn lookup(&self, signature: &MixSignature) -> Option<WarmStart> {
        let buckets = self.index.get(&signature.key())?;
        let query = signature.loads();

        // Nearest bucket by (distance, load vector) — both content-derived,
        // so the choice is independent of hash iteration order.
        let (loads, bucket) = buckets
            .iter()
            .map(|(loads, bucket)| (load_vector_distance(loads, &query), loads, bucket))
            .filter(|(d, _, _)| *d <= self.policy.max_load_distance)
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(b.1))
            })
            .map(|(_, loads, bucket)| (loads, bucket))?;
        if bucket.is_empty() {
            return None;
        }

        let load_distance = load_vector_distance(loads, &query);
        let mut ranked: Vec<&Retained> = bucket.iter().collect();
        ranked.sort_by(|a, b| rank(&a.record, &b.record));
        let entries = ranked
            .into_iter()
            .take(self.policy.max_warm_entries)
            .map(|r| WarmEntry {
                partition: r.record.partition.clone(),
                observation: r.record.observation.clone(),
                score: r.record.score,
            })
            .collect();
        Some(WarmStart { entries, load_distance, exact: load_distance == 0.0 })
    }

    /// Rewrites the log keeping only currently retained records, in their
    /// original append order. A crash mid-compaction leaves either the old
    /// or the new log intact.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] on filesystem failures; the
    /// in-memory index is valid either way.
    pub fn compact(&mut self) -> StoreResult<()> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        let mut retained: Vec<&Retained> =
            self.index.values().flat_map(HashMap::values).flatten().collect();
        retained.sort_by_key(|r| r.seq);
        let payloads: Vec<Vec<u8>> = retained.iter().map(|r| encode_record(&r.record)).collect();
        self.log = Some(LogFile::rewrite(&path, &payloads)?);
        self.log_records = payloads.len() as u64;
        self.stats.compactions += 1;
        Ok(())
    }
}

/// Best-first ordering for retained records: higher score first, ties by
/// partition unit rows (content-determined, so stable across runs).
fn rank(a: &StoreRecord, b: &StoreRecord) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| partition_units(&a.partition).cmp(&partition_units(&b.partition)))
}

fn partition_units(p: &Partition) -> Vec<u32> {
    p.rows().iter().flat_map(|r| r.all_units()).collect()
}

/// Dedupes identical partitions (keeping the higher score) and trims the
/// bucket to its best `keep` records. Returns how many were dropped.
fn evict(bucket: &mut Vec<Retained>, keep: usize) -> usize {
    let before = bucket.len();
    bucket.sort_by(|a, b| rank(&a.record, &b.record));
    let mut seen: Vec<Vec<u32>> = Vec::with_capacity(bucket.len());
    bucket.retain(|r| {
        let units = partition_units(&r.record.partition);
        if seen.contains(&units) {
            false
        } else {
            seen.push(units);
            true
        }
    });
    bucket.truncate(keep);
    before - bucket.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;
    use clite_sim::testbed::Testbed;
    use clite_telemetry::MemoryRecorder;

    fn server(load: f64) -> Server {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, load),
            JobSpec::background(WorkloadId::Swaptions),
        ];
        Server::new(ResourceCatalog::testbed(), jobs, 11).unwrap()
    }

    fn sample(server: &mut Server, partition: &Partition) -> (MixSignature, Observation) {
        let obs = Testbed::observe(server, partition);
        (MixSignature::capture(server), obs)
    }

    #[test]
    fn exact_hit_returns_best_first() {
        let mut store = ObservationStore::in_memory();
        let mut s = server(0.5);
        let cat = *Testbed::catalog(&s);
        let p1 = Partition::equal_share(&cat, 2).unwrap();
        let p2 = Partition::max_for_job(&cat, 2, 0).unwrap();
        let (sig, o1) = sample(&mut s, &p1);
        let (_, o2) = sample(&mut s, &p2);
        store.append(&sig, &p1, &o1, 0.3).unwrap();
        store.append(&sig, &p2, &o2, 0.9).unwrap();

        let warm = store.warm_start(&sig).expect("exact hit");
        assert!(warm.exact);
        assert_eq!(warm.load_distance, 0.0);
        assert_eq!(warm.entries.len(), 2);
        assert_eq!(warm.entries[0].score, 0.9);
        assert_eq!(warm.entries[0].partition, p2);
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn nearby_load_hits_distant_load_misses() {
        let mut store = ObservationStore::in_memory();
        let mut s = server(0.50);
        let cat = *Testbed::catalog(&s);
        let p = Partition::equal_share(&cat, 2).unwrap();
        let (sig, obs) = sample(&mut s, &p);
        store.append(&sig, &p, &obs, 0.5).unwrap();

        let near = MixSignature::capture(&server(0.55));
        let warm = store.warm_start(&near).expect("within 10% budget");
        assert!(!warm.exact);
        assert!((warm.load_distance - 0.05).abs() < 1e-12);

        let far = MixSignature::capture(&server(0.90));
        assert!(store.warm_start(&far).is_none());
        assert_eq!(
            store.stats(),
            StoreStats { appends: 1, hits: 1, misses: 1, ..Default::default() }
        );
    }

    #[test]
    fn different_mix_never_hits() {
        let mut store = ObservationStore::in_memory();
        let mut s = server(0.5);
        let cat = *Testbed::catalog(&s);
        let p = Partition::equal_share(&cat, 2).unwrap();
        let (sig, obs) = sample(&mut s, &p);
        store.append(&sig, &p, &obs, 0.5).unwrap();

        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Xapian, 0.5),
            JobSpec::background(WorkloadId::Swaptions),
        ];
        let other = Server::new(ResourceCatalog::testbed(), jobs, 11).unwrap();
        assert!(store.warm_start(&MixSignature::capture(&other)).is_none());
    }

    #[test]
    fn eviction_keeps_best_and_dedupes() {
        let policy = StorePolicy { entries_per_mix: 3, ..StorePolicy::default() };
        let mut store = ObservationStore::in_memory_with(policy);
        let mut s = server(0.5);
        let cat = *Testbed::catalog(&s);
        let p = Partition::equal_share(&cat, 2).unwrap();
        let (sig, obs) = sample(&mut s, &p);

        // Same partition at rising scores: dedupe keeps only the best.
        for k in 0..5 {
            store.append(&sig, &p, &obs, 0.1 * f64::from(k)).unwrap();
        }
        assert_eq!(store.record_count(), 1);
        let warm = store.warm_start(&sig).unwrap();
        assert_eq!(warm.entries[0].score, 0.4);

        // Distinct partitions: best `entries_per_mix` retained.
        for j in 0..2 {
            let pj = Partition::max_for_job(&cat, 2, j).unwrap();
            let (_, oj) = sample(&mut s, &pj);
            store.append(&sig, &pj, &oj, 0.6 + f64::from(u32::try_from(j).unwrap())).unwrap();
        }
        assert_eq!(store.record_count(), 3);
        assert!(store.stats().evictions >= 4);
    }

    #[test]
    fn warm_entries_capped_by_policy() {
        let policy = StorePolicy { max_warm_entries: 1, ..StorePolicy::default() };
        let mut store = ObservationStore::in_memory_with(policy);
        let mut s = server(0.5);
        let cat = *Testbed::catalog(&s);
        let p1 = Partition::equal_share(&cat, 2).unwrap();
        let p2 = Partition::max_for_job(&cat, 2, 0).unwrap();
        let (sig, o1) = sample(&mut s, &p1);
        let (_, o2) = sample(&mut s, &p2);
        store.append(&sig, &p1, &o1, 0.2).unwrap();
        store.append(&sig, &p2, &o2, 0.8).unwrap();
        let warm = store.warm_start(&sig).unwrap();
        assert_eq!(warm.entries.len(), 1);
        assert_eq!(warm.entries[0].score, 0.8);
    }

    #[test]
    fn lookup_emits_hit_and_miss_events() {
        let sink = MemoryRecorder::new();
        let telemetry = Telemetry::new(&sink);
        let mut store = ObservationStore::in_memory();
        let mut s = server(0.5);
        let cat = *Testbed::catalog(&s);
        let p = Partition::equal_share(&cat, 2).unwrap();
        let (sig, obs) = sample(&mut s, &p);
        assert!(store.warm_start_with(&sig, &telemetry).is_none());
        store.append_with(&sig, &p, &obs, 0.5, &telemetry).unwrap();
        assert!(store.warm_start_with(&sig, &telemetry).is_some());
        assert_eq!(sink.count_kind("store_miss"), 1);
        assert_eq!(sink.count_kind("store_append"), 1);
        assert_eq!(sink.count_kind("store_hit"), 1);
    }

    #[test]
    fn persists_across_reopen_and_compacts() {
        let dir = std::env::temp_dir().join(format!("clite-store-reopen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs.log");

        let mut s = server(0.5);
        let cat = *Testbed::catalog(&s);
        let p = Partition::equal_share(&cat, 2).unwrap();
        let (sig, obs) = sample(&mut s, &p);
        {
            let policy = StorePolicy { entries_per_mix: 1, ..StorePolicy::default() };
            let mut store = ObservationStore::open_with(&path, policy).unwrap();
            store.append(&sig, &p, &obs, 0.3).unwrap();
            let p2 = Partition::max_for_job(&cat, 2, 0).unwrap();
            let (_, o2) = sample(&mut s, &p2);
            store.append(&sig, &p2, &o2, 0.7).unwrap();
            store.compact().unwrap();
        }

        let mut store = ObservationStore::open(&path).unwrap();
        assert_eq!(store.stats().recovered_records, 1, "compaction kept only the best");
        assert_eq!(store.stats().dropped_bytes, 0);
        let warm = store.warm_start(&sig).expect("recovered hit");
        assert_eq!(warm.entries[0].score, 0.7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_recovery_emits_store_recovered_event() {
        use std::io::Write;

        let dir = std::env::temp_dir().join(format!("clite-store-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("obs.log");

        let mut s = server(0.5);
        let cat = *Testbed::catalog(&s);
        let p = Partition::equal_share(&cat, 2).unwrap();
        let (sig, obs) = sample(&mut s, &p);
        {
            let mut store = ObservationStore::open(&path).unwrap();
            store.append(&sig, &p, &obs, 0.4).unwrap();
        }
        // Tear the log: half a frame of garbage at the tail.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF; 13]).unwrap();
        }

        let sink = MemoryRecorder::new();
        let telemetry = Telemetry::new(&sink);
        let mut store =
            ObservationStore::open_observed(&path, StorePolicy::default(), &telemetry).unwrap();
        assert_eq!(store.stats().recovered_records, 1, "valid prefix survives");
        assert!(store.stats().dropped_bytes > 0, "torn tail must be counted");
        assert_eq!(sink.count_kind("store_recovered"), 1, "damage must be reported, not silent");
        assert!(store.warm_start(&sig).is_some());

        // A clean log reports nothing.
        {
            let mut clean = ObservationStore::open(&path).unwrap();
            clean.append(&sig, &p, &obs, 0.5).unwrap();
            clean.compact().unwrap();
        }
        let quiet = MemoryRecorder::new();
        let t2 = Telemetry::new(&quiet);
        let reopened = ObservationStore::open_observed(&path, StorePolicy::default(), &t2).unwrap();
        assert_eq!(reopened.stats().dropped_bytes, 0);
        assert_eq!(quiet.count_kind("store_recovered"), 0, "clean reopen stays silent");
        std::fs::remove_dir_all(&dir).ok();
    }
}
