//! Sharded store front-end: per-shard locks, a read fast path, and
//! background compaction.
//!
//! One fleet-wide `Arc<Mutex<ObservationStore>>` serializes every probe's
//! warm-start lookup behind every commit's append. [`ShardedStore`] splits
//! the store into `N` independent [`ObservationStore`]s and routes each
//! signature by [`MixSignature::shard_hash`] — a stable FNV-1a hash of the
//! mix *key* (catalog, workloads, classes, QoS; load excluded), so every
//! load point of one mix lands on the same shard and nearby-load reuse
//! never crosses a shard boundary.
//!
//! Because the underlying index is keyed by mix key and buckets never
//! interact, **every lookup and eviction decision is a pure function of
//! the records previously appended for that key** — which shard holds the
//! key is unobservable. That is the shard-count invariance contract:
//! 1, 4, or 16 shards produce byte-identical warm starts and fleet
//! outcomes for the same append history (pinned by
//! `tests/shard_invariance.rs`).
//!
//! Concurrency model:
//! * reads take `RwLock::try_read` first (many concurrent probes share the
//!   lock); a blocked attempt bumps the shard's `lock_waits` atomic and
//!   falls back to a blocking read, so contention is measured, never
//!   hidden;
//! * hit/miss/lock-wait counters live *outside* the lock as per-shard
//!   atomics — the read path never needs `&mut ObservationStore`
//!   (it calls [`ObservationStore::peek`]);
//! * appends take the write lock, and afterwards check the shard's
//!   [`ObservationStore::garbage_ratio`]; past the policy threshold the
//!   shard index is queued to a detached background compactor thread that
//!   rewrites the log tmp+rename (crash leaves old or new log intact —
//!   same discipline as [`ObservationStore::compact`]).
//!
//! The compactor holds only a [`Weak`] reference: dropping the last
//! [`ShardedStore`] handle closes the work channel and the thread exits on
//! its own — no `Drop`-time join, no shutdown deadlock.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError, Weak};

use clite_sim::alloc::Partition;
use clite_sim::metrics::Observation;
use clite_telemetry::{Event, Telemetry};

use crate::signature::MixSignature;
use crate::store::{ObservationStore, SharedStore, StorePolicy, StoreStats, WarmStart};
use crate::StoreResult;

/// Tunables for the sharded front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPolicy {
    /// Number of independent shards (≥ 1).
    pub shards: usize,
    /// Per-shard store policy (reuse distance, eviction).
    pub store: StorePolicy,
    /// Garbage fraction of a shard's log above which compaction is
    /// scheduled (see [`ObservationStore::garbage_ratio`]).
    pub compaction_garbage_ratio: f64,
    /// Logs smaller than this many frames are never compacted — rewriting
    /// a tiny file buys nothing.
    pub compaction_min_log_records: u64,
    /// Run compactions on the background thread. When `false`, callers
    /// compact explicitly via [`ShardedStore::compact_pending`] /
    /// [`ShardedStore::compact_all`] (deterministic tests, shutdown).
    pub background_compaction: bool,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self {
            shards: 8,
            store: StorePolicy::default(),
            compaction_garbage_ratio: 0.5,
            compaction_min_log_records: 128,
            background_compaction: true,
        }
    }
}

impl ShardPolicy {
    /// A policy with `shards` shards and defaults elsewhere.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self { shards: shards.max(1), ..Self::default() }
    }
}

/// One shard: the store behind a read/write lock plus contention counters
/// kept outside it.
#[derive(Debug)]
struct Shard {
    store: RwLock<ObservationStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    lock_waits: AtomicU64,
    /// Set while a compaction for this shard is queued or running, so the
    /// append path schedules each shard at most once at a time.
    compaction_queued: AtomicBool,
}

impl Shard {
    fn new(store: ObservationStore) -> Self {
        Self {
            store: RwLock::new(store),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
            compaction_queued: AtomicBool::new(false),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, ObservationStore> {
        match self.store.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.lock_waits.fetch_add(1, Ordering::Relaxed);
                self.store.read().unwrap_or_else(std::sync::PoisonError::into_inner)
            }
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, ObservationStore> {
        match self.store.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.lock_waits.fetch_add(1, Ordering::Relaxed);
                self.store.write().unwrap_or_else(std::sync::PoisonError::into_inner)
            }
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }
}

/// A store split across independently locked shards.
///
/// Always handled through `Arc` (the constructors return `Arc<Self>`) so
/// the background compactor can hold a [`Weak`] reference.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Shard>,
    policy: ShardPolicy,
    /// Work queue to the background compactor; `None` when background
    /// compaction is disabled or the store is in-memory.
    compactor: Mutex<Option<mpsc::Sender<usize>>>,
}

impl ShardedStore {
    /// Opens (or creates) a sharded store rooted at `path`: shard `i`
    /// lives in `<path>.shard<i>`. Spawns the background compactor when
    /// the policy asks for one.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] on filesystem failures. Torn or
    /// corrupt shard tails are recovered, not errors (see
    /// [`ObservationStore::open`]).
    pub fn open(path: impl AsRef<Path>, policy: ShardPolicy) -> StoreResult<Arc<Self>> {
        Self::open_observed(path, policy, &Telemetry::disabled())
    }

    /// [`ShardedStore::open`] with telemetry for per-shard recovery
    /// events.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] on filesystem failures.
    pub fn open_observed(
        path: impl AsRef<Path>,
        policy: ShardPolicy,
        telemetry: &Telemetry<'_>,
    ) -> StoreResult<Arc<Self>> {
        let policy = ShardPolicy { shards: policy.shards.max(1), ..policy };
        let path = path.as_ref();
        let mut shards = Vec::with_capacity(policy.shards);
        for i in 0..policy.shards {
            let store =
                ObservationStore::open_observed(shard_path(path, i), policy.store, telemetry)?;
            shards.push(Shard::new(store));
        }
        let store = Arc::new(Self { shards, policy, compactor: Mutex::new(None) });
        if policy.background_compaction {
            Self::spawn_compactor(&store);
        }
        Ok(store)
    }

    /// A sharded store with no backing files (background compaction is
    /// moot: in-memory stores have no log).
    #[must_use]
    pub fn in_memory(policy: ShardPolicy) -> Arc<Self> {
        let policy = ShardPolicy { shards: policy.shards.max(1), ..policy };
        let shards = (0..policy.shards)
            .map(|_| Shard::new(ObservationStore::in_memory_with(policy.store)))
            .collect();
        Arc::new(Self { shards, policy, compactor: Mutex::new(None) })
    }

    /// The front-end policy in force.
    #[must_use]
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `signature` routes to.
    #[must_use]
    pub fn shard_for(&self, signature: &MixSignature) -> usize {
        (signature.shard_hash() % self.shards.len() as u64) as usize
    }

    /// Warm-start lookup on the owning shard's read fast path.
    ///
    /// Results are byte-identical to a single [`ObservationStore`] holding
    /// the same records, and to any other shard count.
    #[must_use]
    pub fn warm_start(&self, signature: &MixSignature) -> Option<WarmStart> {
        self.warm_start_with(signature, &Telemetry::disabled())
    }

    /// [`ShardedStore::warm_start`] with telemetry (same
    /// `StoreHit`/`StoreMiss` events as the unsharded store; miss events
    /// report the owning shard's mix count).
    pub fn warm_start_with(
        &self,
        signature: &MixSignature,
        telemetry: &Telemetry<'_>,
    ) -> Option<WarmStart> {
        let shard = &self.shards[self.shard_for(signature)];
        let guard = shard.read();
        let found = guard.peek(signature);
        let mixes = guard.mix_count();
        drop(guard);
        match &found {
            Some(warm) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                telemetry.emit(Event::StoreHit {
                    entries: warm.entries.len(),
                    load_distance: warm.load_distance,
                    exact: warm.exact,
                });
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                telemetry.emit(Event::StoreMiss { mixes });
            }
        }
        found
    }

    /// Appends one sample to the owning shard, scheduling a background
    /// compaction if the shard's log crossed the garbage threshold.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] if the shard's log write fails;
    /// the shard index is left unchanged in that case.
    pub fn append(
        &self,
        signature: &MixSignature,
        partition: &Partition,
        observation: &Observation,
        score: f64,
    ) -> StoreResult<()> {
        self.append_with(signature, partition, observation, score, &Telemetry::disabled())
    }

    /// [`ShardedStore::append`] with telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] if the shard's log write fails.
    pub fn append_with(
        &self,
        signature: &MixSignature,
        partition: &Partition,
        observation: &Observation,
        score: f64,
        telemetry: &Telemetry<'_>,
    ) -> StoreResult<()> {
        let idx = self.shard_for(signature);
        let shard = &self.shards[idx];
        let mut guard = shard.write();
        let result = guard.append_with(signature, partition, observation, score, telemetry);
        let wants_compaction = result.is_ok() && self.wants_compaction(&guard);
        drop(guard);
        if wants_compaction {
            self.schedule_compaction(idx);
        }
        result
    }

    /// Records an append failure observed by a best-effort caller (e.g. a
    /// cluster commit that logged the error and moved on).
    pub fn note_append_error(&self, signature: &MixSignature) {
        self.shards[self.shard_for(signature)].write().note_append_error();
    }

    fn wants_compaction(&self, store: &ObservationStore) -> bool {
        store.log_records() >= self.policy.compaction_min_log_records
            && store.garbage_ratio() > self.policy.compaction_garbage_ratio
    }

    fn schedule_compaction(&self, idx: usize) {
        let shard = &self.shards[idx];
        if shard.compaction_queued.swap(true, Ordering::AcqRel) {
            return; // already queued or running
        }
        let queued =
            match &*self.compactor.lock().unwrap_or_else(std::sync::PoisonError::into_inner) {
                Some(tx) => tx.send(idx).is_ok(),
                None => false,
            };
        if !queued {
            // No worker (disabled, in-memory, or exiting): leave the flag
            // set so compact_pending() picks the shard up synchronously.
        }
    }

    /// Compacts every shard whose compaction is pending (queued but not
    /// yet run). Synchronous; for deterministic tests and shutdown.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::StoreError::Io`] hit; remaining shards
    /// keep their pending flag.
    pub fn compact_pending(&self) -> StoreResult<()> {
        for idx in 0..self.shards.len() {
            if self.shards[idx].compaction_queued.load(Ordering::Acquire) {
                self.compact_shard(idx)?;
            }
        }
        Ok(())
    }

    /// Compacts every shard unconditionally. Synchronous.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::StoreError::Io`] hit.
    pub fn compact_all(&self) -> StoreResult<()> {
        for idx in 0..self.shards.len() {
            self.compact_shard(idx)?;
        }
        Ok(())
    }

    /// Compacts one shard (tmp write + rename) and clears its pending
    /// flag. The flag clears even on error so a later append can
    /// re-schedule.
    fn compact_shard(&self, idx: usize) -> StoreResult<()> {
        let shard = &self.shards[idx];
        let result = shard.write().compact();
        shard.compaction_queued.store(false, Ordering::Release);
        result
    }

    /// Per-shard counters: the shard store's own stats with the
    /// front-end's atomic hit/miss/lock-wait counters overlaid.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards
            .iter()
            .map(|shard| {
                let mut stats =
                    shard.store.read().unwrap_or_else(std::sync::PoisonError::into_inner).stats();
                stats.hits += shard.hits.load(Ordering::Relaxed);
                stats.misses += shard.misses.load(Ordering::Relaxed);
                stats.lock_waits += shard.lock_waits.load(Ordering::Relaxed);
                stats
            })
            .collect()
    }

    /// Aggregate counters across all shards.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for stats in self.shard_stats() {
            total.appends += stats.appends;
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.evictions += stats.evictions;
            total.recovered_records += stats.recovered_records;
            total.dropped_bytes += stats.dropped_bytes;
            total.undecodable_records += stats.undecodable_records;
            total.append_errors += stats.append_errors;
            total.lock_waits += stats.lock_waits;
            total.compactions += stats.compactions;
        }
        total
    }

    /// Records retained across all shard indexes.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.store.read().unwrap_or_else(std::sync::PoisonError::into_inner).record_count()
            })
            .sum()
    }

    /// Distinct mixes indexed across all shards.
    #[must_use]
    pub fn mix_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.store.read().unwrap_or_else(std::sync::PoisonError::into_inner).mix_count())
            .sum()
    }

    /// Exports per-shard occupancy and contention counters as gauge
    /// families on `registry` (`clite_store_shard_*{shard="i"}`), so
    /// shard-count tuning is measurable from the metrics endpoint.
    pub fn export_metrics(&self, registry: &clite_telemetry::MetricsRegistry) {
        for (i, stats) in self.shard_stats().iter().enumerate() {
            let label = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", label.as_str())];
            registry.set_gauge("clite_store_shard_hits", labels, stats.hits as f64);
            registry.set_gauge("clite_store_shard_misses", labels, stats.misses as f64);
            registry.set_gauge("clite_store_shard_lock_waits", labels, stats.lock_waits as f64);
            registry.set_gauge("clite_store_shard_appends", labels, stats.appends as f64);
            registry.set_gauge("clite_store_shard_evictions", labels, stats.evictions as f64);
            registry.set_gauge("clite_store_shard_compactions", labels, stats.compactions as f64);
        }
    }

    fn spawn_compactor(this: &Arc<Self>) {
        let (tx, rx) = mpsc::channel::<usize>();
        *this.compactor.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(tx);
        let weak: Weak<Self> = Arc::downgrade(this);
        // Detached on purpose: the worker owns no Arc between jobs, so
        // dropping the last ShardedStore handle closes the channel and the
        // loop ends. Joining in Drop could deadlock if the worker briefly
        // holds the last Arc itself.
        let spawned = std::thread::Builder::new()
            .name("clite-store-compactor".into())
            .spawn(move || {
                while let Ok(idx) = rx.recv() {
                    let Some(store) = weak.upgrade() else { break };
                    // Best-effort: an I/O failure leaves the old log (the
                    // rewrite is tmp+rename) and clears the pending flag so
                    // a later append can retry.
                    let _ = store.compact_shard(idx);
                }
            })
            .is_ok();
        if !spawned {
            *this.compactor.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        }
    }
}

/// Shard `i`'s file: `<path>.shard<i>`.
fn shard_path(path: &Path, i: usize) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".shard{i}"));
    std::path::PathBuf::from(os)
}

/// A handle to either store shape, so call sites (the cluster `Node`)
/// stay agnostic: one mutex-guarded [`ObservationStore`] (the PR 4
/// layout, still used by the controller CLI) or a [`ShardedStore`].
#[derive(Debug, Clone)]
pub enum StoreHandle {
    /// One store behind one exclusive lock.
    Single(SharedStore),
    /// Sharded front-end.
    Sharded(Arc<ShardedStore>),
}

impl StoreHandle {
    /// Warm-start lookup (shared read on the sharded path).
    pub fn warm_start_with(
        &self,
        signature: &MixSignature,
        telemetry: &Telemetry<'_>,
    ) -> Option<WarmStart> {
        match self {
            StoreHandle::Single(store) => store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .warm_start_with(signature, telemetry),
            StoreHandle::Sharded(store) => store.warm_start_with(signature, telemetry),
        }
    }

    /// Appends one sample.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] if the log write fails.
    pub fn append_with(
        &self,
        signature: &MixSignature,
        partition: &Partition,
        observation: &Observation,
        score: f64,
        telemetry: &Telemetry<'_>,
    ) -> StoreResult<()> {
        match self {
            StoreHandle::Single(store) => store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .append_with(signature, partition, observation, score, telemetry),
            StoreHandle::Sharded(store) => {
                store.append_with(signature, partition, observation, score, telemetry)
            }
        }
    }

    /// Records an append failure observed by a best-effort caller.
    pub fn note_append_error(&self, signature: &MixSignature) {
        match self {
            StoreHandle::Single(store) => {
                store.lock().unwrap_or_else(std::sync::PoisonError::into_inner).note_append_error();
            }
            StoreHandle::Sharded(store) => store.note_append_error(signature),
        }
    }

    /// Aggregate counters (across shards on the sharded path).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        match self {
            StoreHandle::Single(store) => {
                store.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats()
            }
            StoreHandle::Sharded(store) => store.stats(),
        }
    }
}

impl From<SharedStore> for StoreHandle {
    fn from(store: SharedStore) -> Self {
        StoreHandle::Single(store)
    }
}

impl From<Arc<ShardedStore>> for StoreHandle {
    fn from(store: Arc<ShardedStore>) -> Self {
        StoreHandle::Sharded(store)
    }
}
