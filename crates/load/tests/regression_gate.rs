//! The acceptance-criteria demonstration: the ci.sh regression gate (the
//! real `loadgate` binary) fails with exit code 1 when a synthetic
//! report's p99 is degraded beyond tolerance, and passes when the
//! degradation stays inside it.

use std::path::Path;
use std::process::Command;

use clite_load::{JobTail, LoadReport, ScenarioReport};
use clite_telemetry::TailTracker;

/// A one-scenario report whose latencies spread up to `magnitude_us`.
fn synthetic_report(magnitude_us: f64) -> LoadReport {
    let mut tracker = TailTracker::new(Some(5_000.0));
    for i in 0..2_000 {
        tracker.record(magnitude_us * f64::from(i) / 2_000.0);
    }
    let mut report = LoadReport::new(42);
    report.push(ScenarioReport {
        mix: "memcached@70% img-dnn@50%".into(),
        trace: "steady".into(),
        policy: "CLITE".into(),
        windows: 8,
        queries: 2_000,
        wall_seconds: 0.2,
        jobs: vec![JobTail {
            job: "memcached".into(),
            class: "LC".into(),
            tail: tracker.summary(),
        }],
    });
    report
}

fn run_gate(current: &Path, previous: &Path, tolerance: f64) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_loadgate"))
        .arg(current)
        .arg("--previous")
        .arg(previous)
        .arg("--tolerance")
        .arg(tolerance.to_string())
        .output()
        .expect("spawn loadgate")
}

#[test]
fn gate_fails_on_degraded_p99_and_passes_within_tolerance() {
    let dir = std::env::temp_dir().join(format!("clite-loadgate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prev_path = dir.join("previous.json");
    let degraded_path = dir.join("degraded.json");
    let ok_path = dir.join("ok.json");

    synthetic_report(1_000.0).save(&prev_path).unwrap();
    synthetic_report(2_500.0).save(&degraded_path).unwrap(); // p99 × 2.5
    synthetic_report(1_050.0).save(&ok_path).unwrap(); // p99 + 5%

    // Degraded beyond the 25% tolerance: the gate must fail (exit 1)
    // and name the offending job and percentile.
    let fail = run_gate(&degraded_path, &prev_path, 0.25);
    assert_eq!(fail.status.code(), Some(1), "degraded report must fail the gate");
    let stderr = String::from_utf8_lossy(&fail.stderr);
    assert!(stderr.contains("memcached"), "{stderr}");
    assert!(stderr.contains("p99"), "{stderr}");

    // Within tolerance: the gate passes.
    let pass = run_gate(&ok_path, &prev_path, 0.25);
    assert_eq!(pass.status.code(), Some(0), "{}", String::from_utf8_lossy(&pass.stderr));
    let stdout = String::from_utf8_lossy(&pass.stdout);
    assert!(stdout.contains("PASS"), "{stdout}");

    // Identity: a report always passes against itself.
    let same = run_gate(&prev_path, &prev_path, 0.0);
    assert_eq!(same.status.code(), Some(0));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gate_errors_cleanly_on_missing_or_malformed_input() {
    let dir = std::env::temp_dir().join(format!("clite-loadgate-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.json");
    synthetic_report(1_000.0).save(&good).unwrap();

    // A missing BASELINE is the bootstrap signal: exit 3 with a
    // copy-paste remediation naming both paths.
    let missing = run_gate(&good, &dir.join("nope.json"), 0.25);
    assert_eq!(missing.status.code(), Some(3), "missing baseline is the bootstrap exit");
    let stderr = String::from_utf8_lossy(&missing.stderr);
    assert!(stderr.contains("baseline report missing"), "{stderr}");
    assert!(stderr.contains("nope.json"), "remediation must name the baseline path: {stderr}");
    assert!(stderr.contains("cp "), "remediation must be actionable: {stderr}");

    // A corrupt BASELINE is also exit 3 (stale artifacts must not wedge
    // CI), with a replace-and-commit remediation.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{not json").unwrap();
    let corrupt_baseline = run_gate(&good, &garbage, 0.25);
    assert_eq!(corrupt_baseline.status.code(), Some(3), "corrupt baseline is the bootstrap exit");
    let stderr = String::from_utf8_lossy(&corrupt_baseline.stderr);
    assert!(stderr.contains("unreadable"), "{stderr}");

    // A malformed CURRENT report is a real I/O error: exit 2.
    let malformed = run_gate(&garbage, &good, 0.25);
    assert_eq!(malformed.status.code(), Some(2), "broken current report is exit 2");

    std::fs::remove_dir_all(&dir).ok();
}
