//! Serial ≡ threaded determinism for the load harness: the same config
//! produces byte-identical trackers whether workers run on threads or
//! sequentially, across every trace shape.

use clite_load::{fire_queries, run_load, LoadConfig, QuerySampler, TraceKind};
use clite_sim::prelude::*;
use clite_telemetry::Telemetry;

#[test]
fn threaded_and_serial_firing_are_byte_identical() {
    let sampler = QuerySampler::from_scale_us(300.0);
    for (queries, threads) in [(10_000u64, 4usize), (9_999, 3), (1, 8), (0, 2)] {
        let threaded = fire_queries(&sampler, Some(1_500.0), queries, threads, 77, true);
        let serial = fire_queries(&sampler, Some(1_500.0), queries, threads, 77, false);
        assert_eq!(threaded, serial, "queries={queries} threads={threads}");
        assert_eq!(threaded.count(), queries);
        // Sorted merge output: identical quantile sweep, not just struct
        // equality.
        for i in 0..=100 {
            let q = f64::from(i) / 100.0;
            assert_eq!(
                threaded.histogram().value_at_quantile(q),
                serial.histogram().value_at_quantile(q)
            );
        }
    }
}

#[test]
fn full_runs_are_reproducible_across_thread_counts_only_via_worker_streams() {
    // Thread count is part of the stream layout, so the *same* thread
    // count must reproduce exactly; this pins the full pipeline (server
    // + trace + sampler + pool) per trace shape.
    for trace in TraceKind::ALL {
        let run = |parallel_threads: usize| {
            let jobs = vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.6),
                JobSpec::latency_critical(WorkloadId::ImgDnn, 0.4),
                JobSpec::background(WorkloadId::Blackscholes),
            ];
            let mut server = Server::new(ResourceCatalog::testbed(), jobs, 21).unwrap();
            let config = LoadConfig {
                windows: 4,
                queries_per_window: 3_000,
                threads: parallel_threads,
                trace,
                seed: 1234,
            };
            run_load(&mut server, &config, &Telemetry::disabled()).unwrap()
        };
        let (a, b) = (run(4), run(4));
        assert_eq!(a.jobs, b.jobs, "trace {trace} not reproducible");
        assert_eq!(a.queries, b.queries);
    }
}

#[test]
fn congestion_shows_up_as_latency() {
    // The same mix under the bursty trace must see a worse LC tail than
    // under a steady low trace: colocation pressure becomes latency.
    let run = |trace: TraceKind| {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.9),
            JobSpec::background(WorkloadId::Streamcluster),
        ];
        let mut server = Server::new(ResourceCatalog::testbed(), jobs, 3).unwrap();
        let config =
            LoadConfig { windows: 6, queries_per_window: 5_000, threads: 2, trace, seed: 9 };
        run_load(&mut server, &config, &Telemetry::disabled()).unwrap()
    };
    let steady = run(TraceKind::Steady);
    let diurnal = run(TraceKind::Diurnal);
    // Steady drives 90% load every window; the diurnal trace averages
    // ~63% of that, so its p99 must be strictly better.
    let steady_p99 = steady.jobs[0].tracker.summary().p99_us;
    let diurnal_p99 = diurnal.jobs[0].tracker.summary().p99_us;
    assert!(
        diurnal_p99 < steady_p99,
        "diurnal p99 {diurnal_p99} not below steady p99 {steady_p99}"
    );
}
