//! The client thread-pool: drives a [`Testbed`] through a load trace and
//! fires batches of simulated queries at every job each window.
//!
//! Window loop:
//!
//! 1. set each LC job's load to the trace's value for this window,
//! 2. observe the window (the simulator resolves interference into
//!    per-job p95s),
//! 3. under [`Phase::LoadGen`], derive each job's [`QuerySampler`] from
//!    its observation and fire `queries_per_window` queries per job
//!    across the worker pool, each worker recording into a private
//!    [`LatencyHistogram`](clite_telemetry::LatencyHistogram).
//!
//! Worker `w` of a window always handles the same query-index range with
//! the same SplitMix64-derived stream, and per-worker histograms merge
//! in worker order — so a run with `threads = k` produces byte-identical
//! results whether the workers actually run on threads or sequentially
//! (the `determinism` integration test pins this).

use clite_sim::testbed::Testbed;
use clite_sim::SimError;
use clite_telemetry::{Phase, TailTracker, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::service::{mix, QuerySampler};
use crate::trace::TraceKind;

/// Stream tag keeping query RNG streams disjoint from any other
/// consumer of the run seed.
const QUERY_TAG: u64 = 0x51_52_59_53; // "QRYS"

/// Load-run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Observation windows to drive.
    pub windows: usize,
    /// Queries fired per job per window.
    pub queries_per_window: u64,
    /// Worker threads sharing each window's query batch.
    pub threads: usize,
    /// Offered-load shape over the run.
    pub trace: TraceKind,
    /// Run seed; query streams derive from it per (job, window, worker).
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            windows: 8,
            queries_per_window: 10_000,
            threads: 4,
            trace: TraceKind::Steady,
            seed: 42,
        }
    }
}

/// One job's accumulated latency record over a load run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobLoad {
    /// Workload name.
    pub job: String,
    /// `"LC"` or `"BG"`.
    pub class: String,
    /// The job's tail tracker (histogram + QoS violations).
    pub tracker: TailTracker,
}

/// The result of a load run against one testbed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadOutcome {
    /// Per-job latency records, in job order.
    pub jobs: Vec<JobLoad>,
    /// Windows driven.
    pub windows: usize,
    /// Total queries fired across all jobs and windows.
    pub queries: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
}

/// Fires `queries` queries through `sampler`, split across `threads`
/// workers, and returns the merged tracker. `parallel = false` runs the
/// identical worker loop sequentially — the result is byte-identical
/// (per-worker streams and merge order do not depend on scheduling).
#[must_use]
pub fn fire_queries(
    sampler: &QuerySampler,
    qos_target_us: Option<f64>,
    queries: u64,
    threads: usize,
    stream: u64,
    parallel: bool,
) -> TailTracker {
    let threads = threads.max(1);
    let per_worker = queries.div_ceil(threads as u64);
    let worker = |w: usize| {
        let start = w as u64 * per_worker;
        let n = per_worker.min(queries.saturating_sub(start));
        let mut rng = StdRng::seed_from_u64(mix(stream, QUERY_TAG, w as u64));
        let mut tracker = TailTracker::new(qos_target_us);
        for _ in 0..n {
            let u: f64 = rng.gen();
            tracker.record(sampler.latency_us(u));
        }
        tracker
    };

    let parts: Vec<TailTracker> = if parallel && threads > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|w| scope.spawn(move || worker(w))).collect();
            handles.into_iter().map(|h| h.join().expect("load worker panicked")).collect()
        })
    } else {
        (0..threads).map(worker).collect()
    };

    let mut merged = TailTracker::new(qos_target_us);
    for part in &parts {
        merged.merge(part);
    }
    merged
}

/// Runs a full load trace against `testbed` (whatever partition is
/// currently enforced stays in force) and returns per-job tail records.
///
/// Query firing and recording is attributed to [`Phase::LoadGen`] on
/// `telemetry`, separable from the search phases in one
/// [`OverheadReport`](clite_telemetry::OverheadReport).
///
/// # Errors
///
/// Propagates simulator errors from load changes or window observation.
pub fn run_load<T: Testbed + ?Sized>(
    testbed: &mut T,
    config: &LoadConfig,
    telemetry: &Telemetry<'_>,
) -> Result<LoadOutcome, SimError> {
    let start = std::time::Instant::now();
    let jobs = testbed.job_count();
    let base_loads: Vec<f64> = (0..jobs).map(|j| testbed.load(j)).collect();
    let lc: Vec<bool> = (0..jobs)
        .map(|j| testbed.class(j) == clite_sim::workload::JobClass::LatencyCritical)
        .collect();
    let mut trackers: Vec<TailTracker> =
        (0..jobs).map(|j| TailTracker::new(testbed.qos(j).map(|q| q.target_us))).collect();
    let mut fired = 0u64;

    for window in 0..config.windows {
        for j in 0..jobs {
            if lc[j] {
                testbed
                    .set_load(j, config.trace.scaled_load(base_loads[j], window, config.windows))?;
            }
        }
        let observation = testbed.try_observe_window()?;
        telemetry.time(Phase::LoadGen, || {
            for (j, tracker) in trackers.iter_mut().enumerate() {
                let sampler = QuerySampler::from_observation(&observation.jobs[j]);
                let stream = mix(config.seed, QUERY_TAG, ((j as u64) << 32) | window as u64);
                let batch = fire_queries(
                    &sampler,
                    testbed.qos(j).map(|q| q.target_us),
                    config.queries_per_window,
                    config.threads,
                    stream,
                    true,
                );
                fired += batch.count();
                tracker.merge(&batch);
            }
        });
    }

    let jobs = (0..jobs)
        .map(|j| JobLoad {
            job: testbed.workload(j).name().to_owned(),
            class: testbed.class(j).to_string(),
            tracker: trackers[j].clone(),
        })
        .collect();
    Ok(LoadOutcome {
        jobs,
        windows: config.windows,
        queries: fired,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    fn small_server() -> Server {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.5),
            JobSpec::background(WorkloadId::Streamcluster),
        ];
        Server::new(ResourceCatalog::testbed(), jobs, 7).unwrap()
    }

    #[test]
    fn fire_queries_matches_the_analytic_tail() {
        let sampler = QuerySampler::from_scale_us(200.0);
        let tracker = fire_queries(&sampler, None, 200_000, 4, 99, true);
        assert_eq!(tracker.count(), 200_000);
        let s = tracker.summary();
        let exact_p99 = sampler.quantile_us(0.99);
        let err = (s.p99_us as f64 - exact_p99).abs() / exact_p99;
        assert!(err < 0.08, "p99 {} vs analytic {exact_p99}", s.p99_us);
    }

    #[test]
    fn run_load_covers_every_job_and_window() {
        let mut server = small_server();
        let config = LoadConfig {
            windows: 5,
            queries_per_window: 2_000,
            threads: 2,
            trace: TraceKind::Diurnal,
            seed: 11,
        };
        let out = run_load(&mut server, &config, &Telemetry::disabled()).unwrap();
        assert_eq!(out.jobs.len(), 2);
        assert_eq!(out.windows, 5);
        assert_eq!(out.queries, 2 * 5 * 2_000);
        for job in &out.jobs {
            assert_eq!(job.tracker.count(), 5 * 2_000);
            let s = job.tracker.summary();
            assert!(s.p50_us <= s.p99_us && s.p99_us <= s.p999_us);
        }
        assert_eq!(out.jobs[0].class, "LC");
        assert_eq!(out.jobs[1].class, "BG");
    }

    #[test]
    fn load_gen_time_lands_in_the_overhead_report() {
        let mut server = small_server();
        let telemetry = Telemetry::disabled();
        let config = LoadConfig { windows: 2, queries_per_window: 500, ..LoadConfig::default() };
        run_load(&mut server, &config, &telemetry).unwrap();
        let report = telemetry.report();
        assert_eq!(report.phase(Phase::LoadGen).count, 2, "one span per window");
        assert!(report.phase(Phase::LoadGen).total_seconds > 0.0);
    }

    #[test]
    fn same_seed_same_histograms() {
        let run = || {
            let mut server = small_server();
            let config = LoadConfig {
                windows: 3,
                queries_per_window: 1_000,
                threads: 3,
                trace: TraceKind::Bursty,
                seed: 5,
            };
            run_load(&mut server, &config, &Telemetry::disabled()).unwrap()
        };
        let (a, b) = (run(), run());
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.tracker, jb.tracker);
        }
    }
}
