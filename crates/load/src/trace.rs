//! Load traces: deterministic per-window multipliers on each LC job's
//! base load fraction.
//!
//! Shapes (multiplier over the run, window `w` of `n`):
//!
//! ```text
//! steady   1.0  ───────────────────────────────
//! diurnal  0.4→1.0→0.4  half-sinusoid trough-peak-trough (0.7 − 0.3·cos 2πw/n)
//! bursty   0.6 baseline with a 1.45× flash crowd for n/6 windows at w = n/3
//! ```
//!
//! The harness applies the multiplier to the job's base load and clamps
//! into the simulator's valid `(0, 1]` range, so a flash crowd on an
//! already-loaded job saturates at 100% load — the congestion regime
//! where tail latencies blow up.

use serde::{Deserialize, Serialize};

/// Smallest load the harness will drive a job to (the simulator rejects
/// non-positive loads).
const MIN_LOAD: f64 = 0.05;

/// Bursty-trace baseline multiplier outside the flash crowd.
const BURST_BASELINE: f64 = 0.6;
/// Bursty-trace multiplier during the flash crowd.
const BURST_PEAK: f64 = 1.45;

/// The shape of offered load over a load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Constant offered load at the mix's configured fractions.
    Steady,
    /// Diurnal sinusoid: trough at the run's start and end, peak at the
    /// midpoint.
    Diurnal,
    /// Flash crowd: depressed baseline with a sharp overload burst
    /// one-third of the way through the run.
    Bursty,
}

impl TraceKind {
    /// Every trace, in report order.
    pub const ALL: [TraceKind; 3] = [TraceKind::Steady, TraceKind::Diurnal, TraceKind::Bursty];

    /// Stable lowercase name (CLI token and report field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Steady => "steady",
            TraceKind::Diurnal => "diurnal",
            TraceKind::Bursty => "bursty",
        }
    }

    /// Parses a trace name (case-insensitive); `None` for unknown names.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.name().eq_ignore_ascii_case(token))
    }

    /// Load multiplier at window `window` of a `windows`-window run.
    #[must_use]
    pub fn multiplier(self, window: usize, windows: usize) -> f64 {
        let n = windows.max(1);
        match self {
            TraceKind::Steady => 1.0,
            TraceKind::Diurnal => {
                let phase = 2.0 * std::f64::consts::PI * window as f64 / n as f64;
                0.7 - 0.3 * phase.cos()
            }
            TraceKind::Bursty => {
                let start = n / 3;
                let len = (n / 6).max(1);
                if window >= start && window < start + len {
                    BURST_PEAK
                } else {
                    BURST_BASELINE
                }
            }
        }
    }

    /// The load fraction to drive a job at: `base × multiplier`, clamped
    /// into the simulator's valid range.
    #[must_use]
    pub fn scaled_load(self, base: f64, window: usize, windows: usize) -> f64 {
        (base * self.multiplier(window, windows)).clamp(MIN_LOAD, 1.0)
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_flat() {
        for w in 0..10 {
            assert!((TraceKind::Steady.multiplier(w, 10) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diurnal_troughs_at_ends_and_peaks_mid_run() {
        let n = 20;
        let start = TraceKind::Diurnal.multiplier(0, n);
        let mid = TraceKind::Diurnal.multiplier(n / 2, n);
        assert!((start - 0.4).abs() < 1e-12, "{start}");
        assert!((mid - 1.0).abs() < 1e-12, "{mid}");
        for w in 0..n {
            let m = TraceKind::Diurnal.multiplier(w, n);
            assert!((0.4 - 1e-9..=1.0 + 1e-9).contains(&m), "window {w} multiplier {m}");
        }
    }

    #[test]
    fn bursty_has_a_flash_crowd() {
        let n = 12;
        let peaks: Vec<usize> =
            (0..n).filter(|&w| TraceKind::Bursty.multiplier(w, n) > 1.0).collect();
        assert_eq!(peaks, vec![4, 5], "flash crowd at n/3 for n/6 windows");
        assert!((TraceKind::Bursty.multiplier(0, n) - BURST_BASELINE).abs() < 1e-12);
    }

    #[test]
    fn scaled_load_stays_in_simulator_range() {
        for trace in TraceKind::ALL {
            for w in 0..16 {
                for base in [0.01, 0.3, 0.7, 1.0] {
                    let l = trace.scaled_load(base, w, 16);
                    assert!(l > 0.0 && l <= 1.0, "{trace} base {base} window {w} load {l}");
                }
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for t in TraceKind::ALL {
            assert_eq!(TraceKind::parse(t.name()), Some(t));
        }
        assert_eq!(TraceKind::parse("BURSTY"), Some(TraceKind::Bursty));
        assert_eq!(TraceKind::parse("square"), None);
    }
}
