//! `clite-load` — the workload-driven load harness of the CLITE
//! reproduction.
//!
//! The search layers decide *where* resources go; this crate measures
//! what that decision feels like to a client. A thread-pool fires
//! millions of simulated queries at jobs running on any
//! [`Testbed`](clite_sim::testbed::Testbed) under configurable load
//! traces ([`TraceKind`]: steady, diurnal sinusoid, bursty flash-crowd).
//! Each job's per-query service time is drawn from the memoryless
//! distribution implied by its *observed* QoS state for the current
//! window ([`QuerySampler`]), so colocation pressure shows up directly
//! as tail latency. Latencies land in per-thread
//! [`LatencyHistogram`](clite_telemetry::LatencyHistogram)s merged in
//! worker order — serial and threaded runs are byte-identical.
//!
//! On top sits a versioned report pipeline: [`LoadReport`] JSON files
//! with per-job p50/p90/p99/p99.9, tail CCDFs, and QoS-violation
//! fractions, and a comparator ([`compare`]) plus the `loadgate` binary
//! that fails CI when a new report's tails regress beyond a tolerance.

pub mod compare;
pub mod harness;
pub mod report;
pub mod service;
pub mod trace;

pub use compare::{compare_reports, GateConfig, Regression};
pub use harness::{fire_queries, run_load, JobLoad, LoadConfig, LoadOutcome};
pub use report::{scenario_report, JobTail, LoadReport, ScenarioReport, REPORT_VERSION};
pub use service::QuerySampler;
pub use trace::TraceKind;
