//! The tail-regression gate: diffs a current [`LoadReport`] against the
//! previous one and flags any job whose p99 or p99.9 degraded beyond a
//! configurable tolerance.
//!
//! Scenarios are matched by their (mix, trace, policy) identity and jobs
//! by name; scenarios or jobs that only exist on one side are skipped
//! (adding a new mix must not fail the gate, and wall-clock fields are
//! never compared). A regression requires both a relative excursion
//! beyond `tolerance` *and* an absolute one beyond `min_delta_us`, so
//! sub-bucket jitter on microsecond-scale tails cannot trip the gate.

use crate::report::LoadReport;

/// Gate thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Maximum tolerated relative growth of a tail percentile
    /// (`0.25` = +25%).
    pub tolerance: f64,
    /// Minimum absolute growth (µs) before a relative excursion counts.
    pub min_delta_us: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self { tolerance: 0.25, min_delta_us: 20.0 }
    }
}

/// One flagged tail regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scenario identity: `mix / trace / policy`.
    pub scenario: String,
    /// Job (workload) name.
    pub job: String,
    /// Which percentile regressed (`"p99"` or `"p99.9"`).
    pub metric: &'static str,
    /// Previous value (µs).
    pub previous_us: u64,
    /// Current value (µs).
    pub current_us: u64,
    /// Growth ratio `current / previous`.
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} :: {} {} regressed {}us -> {}us ({:+.1}%)",
            self.scenario,
            self.job,
            self.metric,
            self.previous_us,
            self.current_us,
            (self.ratio - 1.0) * 100.0
        )
    }
}

fn check(
    out: &mut Vec<Regression>,
    scenario: &str,
    job: &str,
    metric: &'static str,
    previous_us: u64,
    current_us: u64,
    config: &GateConfig,
) {
    let prev = previous_us as f64;
    let cur = current_us as f64;
    if cur > prev * (1.0 + config.tolerance) && cur - prev > config.min_delta_us {
        out.push(Regression {
            scenario: scenario.to_owned(),
            job: job.to_owned(),
            metric,
            previous_us,
            current_us,
            ratio: if prev > 0.0 { cur / prev } else { f64::INFINITY },
        });
    }
}

/// Compares `current` against `previous` and returns every tail
/// regression beyond the gate's tolerance (empty = gate passes).
#[must_use]
pub fn compare_reports(
    previous: &LoadReport,
    current: &LoadReport,
    config: &GateConfig,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for prev_scenario in &previous.scenarios {
        let Some(cur_scenario) =
            current.scenario(&prev_scenario.mix, &prev_scenario.trace, &prev_scenario.policy)
        else {
            continue;
        };
        let id =
            format!("{} / {} / {}", prev_scenario.mix, prev_scenario.trace, prev_scenario.policy);
        for prev_job in &prev_scenario.jobs {
            let Some(cur_job) = cur_scenario.jobs.iter().find(|j| j.job == prev_job.job) else {
                continue;
            };
            check(
                &mut regressions,
                &id,
                &prev_job.job,
                "p99",
                prev_job.tail.p99_us,
                cur_job.tail.p99_us,
                config,
            );
            check(
                &mut regressions,
                &id,
                &prev_job.job,
                "p99.9",
                prev_job.tail.p999_us,
                cur_job.tail.p999_us,
                config,
            );
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{JobTail, ScenarioReport};
    use clite_telemetry::TailTracker;

    fn report_with_p99(p99_seed_us: f64) -> LoadReport {
        // An exponential-ish spread around the requested magnitude so the
        // summary's percentiles are ordered and non-trivial.
        let mut tracker = TailTracker::new(Some(10_000.0));
        for i in 0..1000 {
            tracker.record(p99_seed_us * f64::from(i) / 1000.0);
        }
        let mut report = LoadReport::new(1);
        report.push(ScenarioReport {
            mix: "m".into(),
            trace: "steady".into(),
            policy: "CLITE".into(),
            windows: 4,
            queries: 1000,
            wall_seconds: 0.1,
            jobs: vec![JobTail {
                job: "memcached".into(),
                class: "LC".into(),
                tail: tracker.summary(),
            }],
        });
        report
    }

    #[test]
    fn identical_reports_pass() {
        let r = report_with_p99(1000.0);
        assert!(compare_reports(&r, &r, &GateConfig::default()).is_empty());
    }

    #[test]
    fn degraded_p99_fails_and_is_described() {
        let prev = report_with_p99(1000.0);
        let cur = report_with_p99(2000.0);
        let regressions = compare_reports(&prev, &cur, &GateConfig::default());
        assert!(!regressions.is_empty());
        let text = regressions[0].to_string();
        assert!(text.contains("memcached"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn growth_within_tolerance_passes() {
        let prev = report_with_p99(1000.0);
        let cur = report_with_p99(1100.0);
        let config = GateConfig { tolerance: 0.25, min_delta_us: 20.0 };
        assert!(compare_reports(&prev, &cur, &config).is_empty());
        // The same growth fails a tighter gate.
        let tight = GateConfig { tolerance: 0.05, min_delta_us: 1.0 };
        assert!(!compare_reports(&prev, &cur, &tight).is_empty());
    }

    #[test]
    fn new_scenarios_and_jobs_are_skipped() {
        let prev = report_with_p99(1000.0);
        let mut cur = report_with_p99(1000.0);
        cur.scenarios[0].trace = "bursty".into();
        // No matching (mix, trace, policy) on the current side: nothing
        // to compare, gate passes.
        assert!(compare_reports(&prev, &cur, &GateConfig::default()).is_empty());
    }
}
