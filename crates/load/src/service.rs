//! Per-query service-time sampling, derived deterministically from a
//! job's observed QoS state.
//!
//! The simulator reports one p95 per job per window; the simulated
//! server behind it is a processor-sharing queue whose sojourn times are
//! memoryless. [`QuerySampler`] inverts that: an exponential
//! distribution whose p95 equals the observed p95
//! ([`JobObservation::service_scale_us`]), sampled by inverse CDF from a
//! per-(job, window, worker) SplitMix64-derived stream. Identical
//! windows therefore produce identical query latencies, query for query
//! — the determinism the serial ≡ threaded harness guarantee builds on.

use clite_sim::metrics::JobObservation;

/// An inverse-CDF sampler for one job's per-query latency distribution
/// in one observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySampler {
    scale_us: f64,
}

impl QuerySampler {
    /// A sampler with an explicit exponential scale (µs).
    #[must_use]
    pub fn from_scale_us(scale_us: f64) -> Self {
        Self { scale_us: scale_us.max(f64::MIN_POSITIVE) }
    }

    /// The sampler implied by a window's observation of one job: the
    /// memoryless distribution whose p95 is the observed p95.
    #[must_use]
    pub fn from_observation(job: &JobObservation) -> Self {
        Self::from_scale_us(job.service_scale_us())
    }

    /// The exponential scale (mean latency) in µs.
    #[must_use]
    pub fn scale_us(&self) -> f64 {
        self.scale_us
    }

    /// Latency (µs) at uniform variate `u ∈ [0, 1)`:
    /// `−ln(1 − u) · scale`.
    #[must_use]
    pub fn latency_us(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        -(1.0 - u).ln() * self.scale_us
    }

    /// Exact `q`-quantile of the sampled distribution (µs).
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.latency_us(q)
    }

    /// Analytic fraction of queries exceeding `target_us`:
    /// `exp(−target / scale)`.
    #[must_use]
    pub fn violation_fraction(&self, target_us: f64) -> f64 {
        (-target_us / self.scale_us).exp()
    }
}

/// SplitMix64 finalizer decorrelating structured `(seed, tag, index)`
/// triples into well-mixed RNG seeds — the same stream-derivation idiom
/// the fault-injection layer uses, so per-(job, window, worker) query
/// streams stay mutually independent.
#[must_use]
pub fn mix(seed: u64, tag: u64, index: u64) -> u64 {
    let mut z = seed ^ tag.rotate_left(32) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::queueing::P95_FACTOR;

    #[test]
    fn sampler_reproduces_the_observed_p95() {
        // A scale of p95/ln20 puts the inverse CDF's 0.95 point exactly
        // at the observed p95 — the invariant from_observation encodes.
        let observed_p95 = 1000.0;
        let sampler = QuerySampler::from_scale_us(observed_p95 / P95_FACTOR);
        assert!((sampler.quantile_us(0.95) - observed_p95).abs() < 1e-6);
    }

    #[test]
    fn quantiles_are_monotone_and_scale_linearly() {
        let s = QuerySampler::from_scale_us(250.0);
        assert!(s.quantile_us(0.5) < s.quantile_us(0.95));
        assert!(s.quantile_us(0.95) < s.quantile_us(0.999));
        let double = QuerySampler::from_scale_us(500.0);
        assert!((double.quantile_us(0.9) - 2.0 * s.quantile_us(0.9)).abs() < 1e-9);
    }

    #[test]
    fn violation_fraction_matches_the_tail() {
        let s = QuerySampler::from_scale_us(100.0);
        // P(X > scale·ln 20) = 1/20.
        let target = 100.0 * P95_FACTOR;
        assert!((s.violation_fraction(target) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn mix_streams_differ_by_any_coordinate() {
        let a = mix(42, 1, 0);
        assert_ne!(a, mix(43, 1, 0));
        assert_ne!(a, mix(42, 2, 0));
        assert_ne!(a, mix(42, 1, 1));
        assert_eq!(a, mix(42, 1, 0), "pure function");
    }
}
