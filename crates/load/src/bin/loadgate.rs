//! `loadgate` — the CI tail-regression gate over two load reports.
//!
//! ```text
//! loadgate CURRENT.json --previous PREVIOUS.json [--tolerance 0.25] [--min-delta-us 20]
//! ```
//!
//! Exit codes: 0 = no regression, 1 = at least one tail regressed
//! beyond tolerance, 2 = usage or I/O error on the *current* report,
//! 3 = the baseline (`--previous`) report is missing or unreadable.
//! Exit 3 is the bootstrap signal: ci.sh reacts to it by committing the
//! current report as the new baseline instead of failing the build.

use std::path::PathBuf;
use std::process::ExitCode;

use clite_load::{compare_reports, GateConfig, LoadReport};

fn usage() -> &'static str {
    "loadgate — fail when a load report's tail latencies regress

USAGE:
  loadgate CURRENT.json --previous PREVIOUS.json [--tolerance F] [--min-delta-us F]

  --tolerance F      relative growth allowed per p99/p99.9 (default 0.25)
  --min-delta-us F   absolute growth (us) required to count (default 20)"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut current: Option<PathBuf> = None;
    let mut previous: Option<PathBuf> = None;
    let mut config = GateConfig::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--previous" => match it.next() {
                Some(p) => previous = Some(PathBuf::from(p)),
                None => return fail_usage("--previous requires a path"),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => config.tolerance = t,
                None => return fail_usage("--tolerance requires a number"),
            },
            "--min-delta-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(d) => config.min_delta_us = d,
                None => return fail_usage("--min-delta-us requires a number"),
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return fail_usage(&format!("unknown flag '{other}'"));
            }
            other if current.is_none() => current = Some(PathBuf::from(other)),
            other => return fail_usage(&format!("unexpected argument '{other}'")),
        }
    }
    let (Some(current), Some(previous)) = (current, previous) else {
        return fail_usage("both CURRENT and --previous are required");
    };

    let prev = match LoadReport::load(&previous) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return fail_baseline(&format!(
                "baseline report missing at {path}\n\
                 bootstrap it from the current run and commit the result:\n\
                 \n  cp {current} {path}\n",
                path = previous.display(),
                current = current.display(),
            ));
        }
        Err(e) => {
            return fail_baseline(&format!(
                "baseline report at {path} is unreadable ({e})\n\
                 it is stale or corrupt — replace it with the current run and commit:\n\
                 \n  cp {current} {path}\n",
                path = previous.display(),
                current = current.display(),
            ));
        }
    };
    let cur = match LoadReport::load(&current) {
        Ok(r) => r,
        Err(e) => {
            return fail_io(&format!("cannot read current report {}: {e}", current.display()))
        }
    };

    let regressions = compare_reports(&prev, &cur, &config);
    if regressions.is_empty() {
        println!(
            "loadgate: PASS ({} scenarios compared, tolerance {:.0}%)",
            prev.scenarios.len(),
            config.tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            eprintln!("loadgate: FAIL {r}");
        }
        eprintln!(
            "loadgate: {} tail regression(s) beyond {:.0}% tolerance",
            regressions.len(),
            config.tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}

fn fail_usage(message: &str) -> ExitCode {
    eprintln!("error: {message}\n\n{}", usage());
    ExitCode::from(2)
}

fn fail_io(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

/// The baseline-problem exit: distinct from I/O errors so CI can react
/// by bootstrapping a fresh baseline instead of failing the build.
fn fail_baseline(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(3)
}
