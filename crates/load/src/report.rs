//! The versioned JSON report pipeline: one [`LoadReport`] per load run,
//! holding a [`ScenarioReport`] per (mix, trace, policy) combination
//! with per-job percentiles, tail CCDFs, QoS-violation fractions,
//! windows spent, and wall-clock time.
//!
//! Reports are written pretty-printed under `results/reports/` by the
//! `loadtest` experiment and `colocate load`; the comparator in
//! [`crate::compare`] diffs two of them and the `loadgate` binary turns
//! regressions into a CI failure.

use std::fs;
use std::io;
use std::path::Path;

use clite_telemetry::TailSummary;
use serde::{Deserialize, Serialize};

use crate::harness::LoadOutcome;

/// Current report schema version; bump on breaking field changes.
pub const REPORT_VERSION: u32 = 1;

/// A full load-run report: every scenario measured by one invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Run seed (percentiles are deterministic given the seed).
    pub seed: u64,
    /// One entry per (mix, trace, policy).
    pub scenarios: Vec<ScenarioReport>,
}

/// One measured scenario: a job mix under a load trace with a policy's
/// partition enforced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Mix display name.
    pub mix: String,
    /// Trace name (`steady` / `diurnal` / `bursty`).
    pub trace: String,
    /// Policy label (`CLITE`, `equal-share`, …).
    pub policy: String,
    /// Observation windows driven.
    pub windows: usize,
    /// Total queries fired.
    pub queries: u64,
    /// Wall-clock seconds (informational; never gated on).
    pub wall_seconds: f64,
    /// Per-job tails, in job order.
    pub jobs: Vec<JobTail>,
}

/// One job's tail record inside a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTail {
    /// Workload name.
    pub job: String,
    /// `"LC"` or `"BG"`.
    pub class: String,
    /// Percentiles, violation fraction, and CCDF points.
    pub tail: TailSummary,
}

impl LoadReport {
    /// An empty report for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { version: REPORT_VERSION, seed, scenarios: Vec::new() }
    }

    /// Appends a scenario.
    pub fn push(&mut self, scenario: ScenarioReport) {
        self.scenarios.push(scenario);
    }

    /// Finds a scenario by its identity triple.
    #[must_use]
    pub fn scenario(&self, mix: &str, trace: &str, policy: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.mix == mix && s.trace == trace && s.policy == policy)
    }

    /// Writes the report as pretty JSON, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(path, json)
    }

    /// Reads a report back, rejecting unknown schema versions.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed JSON or a version
    /// mismatch surfaces as [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        let report: Self = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if report.version != REPORT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "report version {} at {} (this build reads version {REPORT_VERSION})",
                    report.version,
                    path.display()
                ),
            ));
        }
        Ok(report)
    }
}

/// Folds a harness [`LoadOutcome`] into a scenario record.
#[must_use]
pub fn scenario_report(
    mix: &str,
    trace: &str,
    policy: &str,
    outcome: &LoadOutcome,
) -> ScenarioReport {
    ScenarioReport {
        mix: mix.to_owned(),
        trace: trace.to_owned(),
        policy: policy.to_owned(),
        windows: outcome.windows,
        queries: outcome.queries,
        wall_seconds: outcome.wall_seconds,
        jobs: outcome
            .jobs
            .iter()
            .map(|j| JobTail {
                job: j.job.clone(),
                class: j.class.clone(),
                tail: j.tracker.summary(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_telemetry::TailTracker;

    fn sample_report() -> LoadReport {
        let mut tracker = TailTracker::new(Some(500.0));
        for i in 0..1000 {
            tracker.record(f64::from(i));
        }
        let mut report = LoadReport::new(42);
        report.push(ScenarioReport {
            mix: "memcached@70%".into(),
            trace: "steady".into(),
            policy: "CLITE".into(),
            windows: 8,
            queries: 1000,
            wall_seconds: 0.5,
            jobs: vec![JobTail {
                job: "memcached".into(),
                class: "LC".into(),
                tail: tracker.summary(),
            }],
        });
        report
    }

    #[test]
    fn report_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("clite-load-report-{}", std::process::id()));
        let path = dir.join("nested/report.json");
        let report = sample_report();
        report.save(&path).unwrap();
        let back = LoadReport::load(&path).unwrap();
        assert_eq!(report, back);
        assert!(back.scenario("memcached@70%", "steady", "CLITE").is_some());
        assert!(back.scenario("memcached@70%", "bursty", "CLITE").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join(format!("clite-load-version-{}", std::process::id()));
        let path = dir.join("report.json");
        let mut report = sample_report();
        report.version = REPORT_VERSION + 1;
        report.save(&path).unwrap();
        let err = LoadReport::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
