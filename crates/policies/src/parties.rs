//! PARTIES (Chen, Delimitrou & Martínez, ASPLOS 2019) — the paper's main
//! baseline.
//!
//! PARTIES monitors each LC job and makes *incremental, one-resource-at-a-
//! time* adjustments through a per-job finite state machine that cycles
//! through the resources: when a job violates QoS, upsize the FSM's current
//! resource by one unit (taken from the BG pool first, then from the LC job
//! with the most slack); if the adjustment didn't help, advance the FSM to
//! the next resource and try again. Once every LC job meets QoS, leftover
//! resources are donated to the BG jobs (downsizing the job with the most
//! slack, reverting on a new violation) — and then PARTIES **stops**: it
//! never optimizes BG performance beyond donating leftovers, which is the
//! inefficiency CLITE exploits (paper Fig. 15b).
//!
//! The give-up behaviour matters for fidelity: the paper's Fig. 9b shows
//! PARTIES cycling through its FSM for 100 samples without meeting QoS and
//! concluding the jobs cannot be co-located. We reproduce that: if a full
//! tour of every resource for the violating job brings no improvement, the
//! run is declared stuck.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clite_sim::alloc::Partition;
use clite_sim::resource::{ResourceKind, NUM_RESOURCES};
use clite_sim::testbed::Testbed;
use clite_sim::workload::JobClass;

use clite_telemetry::Telemetry;

use crate::policy::{
    observe_and_record_with, outcome_from_samples, Policy, PolicyOutcome, PolicySample,
};
use crate::PolicyError;

/// Configuration for the PARTIES baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartiesConfig {
    /// Hard cap on sampled configurations (paper Fig. 9b runs it to 100).
    pub max_samples: usize,
    /// Relative latency improvement below which an adjustment is judged
    /// "didn't help" and the FSM advances.
    pub improvement_epsilon: f64,
    /// Consecutive unhelpful adjustments (across full resource tours)
    /// before concluding the set is not co-locatable.
    pub stuck_tours: usize,
    /// Seed for the FSM's randomized starting resource per job (the
    /// trial-and-error path dependence behind PARTIES' run-to-run
    /// variability in the paper's Fig. 11).
    pub seed: u64,
}

impl Default for PartiesConfig {
    fn default() -> Self {
        Self { max_samples: 100, improvement_epsilon: 0.02, stuck_tours: 2, seed: 0x9A27 }
    }
}

/// The PARTIES policy.
#[derive(Debug, Clone, Default)]
pub struct Parties {
    config: PartiesConfig,
}

impl Parties {
    /// Builds PARTIES with an explicit configuration.
    #[must_use]
    pub fn new(config: PartiesConfig) -> Self {
        Self { config }
    }

    /// Returns a copy re-seeded for variability studies.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }
}

impl<T: Testbed> Policy<T> for Parties {
    fn name(&self) -> &'static str {
        "PARTIES"
    }

    fn run_with(
        &mut self,
        server: &mut T,
        telemetry: &Telemetry<'_>,
    ) -> Result<PolicyOutcome, PolicyError> {
        let jobs = server.job_count();
        let mut samples: Vec<PolicySample> = Vec::new();
        let mut current = Partition::equal_share(server.catalog(), jobs)?;
        observe_and_record_with(server, &current, &mut samples, telemetry);

        // Per-job FSM position in the resource cycle; the starting
        // resource is randomized per run (trial-and-error path dependence).
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut fsm: Vec<usize> = (0..jobs).map(|_| rng.gen_range(0..NUM_RESOURCES)).collect();
        let mut unhelpful_streak = 0usize;
        let mut gave_up = false;

        // ── Upsizing: until every LC job meets QoS ────────────────────────
        // PARTIES etiquette: the best-effort pool donates first; once it is
        // drained for a resource, an LC job with comfortable slack is
        // downsized instead. Adjustments that do not improve the violator
        // are reverted (trial-and-error), advancing the per-job FSM to the
        // next resource.
        while samples.len() < self.config.max_samples {
            let last = samples.last().expect("recorded at least one sample");
            let last_obs = last.observation.clone();
            let Some(job) = worst_violator(last) else { break }; // all QoS met
            let before_slack = last_obs.jobs[job].qos_slack().unwrap_or(0.0);

            // Try the FSM's current resource; advance past resources where
            // no donor exists at all.
            let mut adjusted = None;
            for _ in 0..NUM_RESOURCES {
                let resource = ResourceKind::from_index(fsm[job] % NUM_RESOURCES);
                if let Some(donor) =
                    pick_donor(server, &current, &last_obs, resource, job, &mut rng)
                {
                    adjusted = Some((resource, donor));
                    break;
                }
                fsm[job] += 1;
            }
            let Some((resource, donor)) = adjusted else {
                // Nothing left to take anywhere: stuck.
                gave_up = true;
                break;
            };

            let candidate = current
                .transfer(resource, donor, job, 1)
                .expect("donor validated to have more than one unit");
            observe_and_record_with(server, &candidate, &mut samples, telemetry);
            let after = samples.last().expect("just recorded");
            let after_slack = after.observation.jobs[job].qos_slack().unwrap_or(0.0);

            // Keep the adjustment only if the violator improved AND no
            // previously-satisfied LC job was pushed into violation (the
            // real PARTIES undoes actions that break a bystander's QoS).
            let broke_bystander = (0..server.job_count()).any(|j| {
                j != job
                    && last_obs.jobs[j].qos_met == Some(true)
                    && after.observation.jobs[j].qos_slack().unwrap_or(2.0) < 0.95
            });
            if after_slack > before_slack * (1.0 + self.config.improvement_epsilon)
                && !broke_bystander
            {
                current = candidate;
                unhelpful_streak = 0; // helped: stay on this resource
            } else {
                // Didn't help: revert (the sample is still paid for) and
                // try the next resource.
                fsm[job] += 1;
                unhelpful_streak += 1;
                if unhelpful_streak >= self.config.stuck_tours * NUM_RESOURCES {
                    gave_up = true;
                    break;
                }
            }
        }

        // ── Downsizing: donate leftover slack to the BG pool ──────────────
        if !gave_up {
            let mut blocked = vec![[false; NUM_RESOURCES]; jobs];
            while samples.len() < self.config.max_samples {
                let last = samples.last().expect("non-empty");
                if !last.observation.all_qos_met() {
                    break;
                }
                let Some((job, resource, recipient)) =
                    pick_shrink(server, &current, last, &blocked)
                else {
                    break; // nothing shrinkable left
                };
                let candidate = current
                    .transfer(resource, job, recipient, 1)
                    .expect("shrink candidate validated");
                observe_and_record_with(server, &candidate, &mut samples, telemetry);
                let after = samples.last().expect("just recorded");
                // PARTIES returns leftovers conservatively: the donor must
                // stay comfortably above its target (slack >= 1.45), not
                // be walked to the QoS edge.
                let donor_still_comfortable =
                    after.observation.jobs[job].qos_slack().unwrap_or(0.0) >= 1.45;
                if after.observation.all_qos_met() && donor_still_comfortable {
                    current = candidate;
                } else {
                    // Revert (the revert re-observation is counted too:
                    // PARTIES pays for its trial-and-error).
                    blocked[job][resource.index()] = true;
                    observe_and_record_with(server, &current, &mut samples, telemetry);
                }
            }
        }

        if samples.len() >= self.config.max_samples
            && !samples.last().expect("non-empty").observation.all_qos_met()
        {
            gave_up = true;
        }
        Ok(outcome_from_samples(Policy::<T>::name(self), samples, gave_up))
    }
}

/// The LC job violating QoS with the least slack (`None` if all met).
fn worst_violator(sample: &PolicySample) -> Option<usize> {
    sample
        .observation
        .jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| j.qos_met == Some(false))
        .min_by(|(_, a), (_, b)| {
            a.qos_slack().unwrap_or(0.0).total_cmp(&b.qos_slack().unwrap_or(0.0))
        })
        .map(|(i, _)| i)
}

/// Donor for upsizing `job`'s `resource`: the BG job holding the most
/// units (PARTIES throttles best-effort jobs first), else the LC job with
/// the most QoS slack — but only if that slack is comfortable (> 1.5).
/// Stealing from a job that barely meets (or misses) its own target just
/// ping-pongs the violation between jobs — the FSM cycling the paper's
/// Fig. 9b illustrates. Donors must keep one unit.
fn pick_donor<T: Testbed>(
    server: &T,
    partition: &Partition,
    last_obs: &clite_sim::metrics::Observation,
    resource: ResourceKind,
    job: usize,
    rng: &mut StdRng,
) -> Option<usize> {
    let bg = (0..server.job_count())
        .filter(|&j| {
            j != job && server.class(j) == JobClass::Background && partition.units(j, resource) > 1
        })
        .max_by_key(|&j| partition.units(j, resource));
    if bg.is_some() {
        return bg;
    }
    let eligible: Vec<usize> = (0..server.job_count())
        .filter(|&j| {
            j != job
                && server.class(j) == JobClass::LatencyCritical
                && partition.units(j, resource) > 1
                && last_obs.jobs[j].qos_slack().unwrap_or(0.0) > 1.5
        })
        .collect();
    if eligible.is_empty() {
        None
    } else {
        // Ad-hoc trial-and-error: any comfortable donor may be picked,
        // which is a large part of PARTIES' run-to-run variability
        // (paper Fig. 11).
        Some(eligible[rng.gen_range(0..eligible.len())])
    }
}

/// Shrink choice for the downsizing phase: the LC job with the most slack
/// donates one unit of the next non-blocked resource it holds to the BG
/// job with the fewest units of it. `None` when there are no BG jobs or
/// nothing is shrinkable.
fn pick_shrink<T: Testbed>(
    server: &T,
    partition: &Partition,
    last: &PolicySample,
    blocked: &[[bool; NUM_RESOURCES]],
) -> Option<(usize, ResourceKind, usize)> {
    let recipient_pool: Vec<usize> = server.bg_indices();
    if recipient_pool.is_empty() {
        return None; // PARTIES only downsizes to feed best-effort jobs
    }
    // LC jobs by descending slack.
    let mut lc: Vec<usize> = server.lc_indices();
    lc.sort_by(|&a, &b| {
        let sa = last.observation.jobs[a].qos_slack().unwrap_or(0.0);
        let sb = last.observation.jobs[b].qos_slack().unwrap_or(0.0);
        sb.total_cmp(&sa)
    });
    for job in lc {
        // Only shrink jobs with comfortable slack: PARTIES keeps LC jobs
        // over-provisioned rather than walking them to the QoS edge (the
        // leftover-donation inefficiency CLITE exploits), and it does not
        // consider which resource the BG job actually wants.
        if last.observation.jobs[job].qos_slack().unwrap_or(0.0) < 1.6 {
            continue;
        }
        for r in ResourceKind::ALL {
            if blocked[job][r.index()] || partition.units(job, r) <= 1 {
                continue;
            }
            // Best-effort donation: PARTIES does not consider which BG
            // job (or which resource) benefits most — the first BG job in
            // index order receives the leftover.
            let recipient = recipient_pool[0];
            if recipient != job {
                return Some((job, r, recipient));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    fn server(jobs: Vec<JobSpec>, seed: u64) -> Server {
        Server::new(ResourceCatalog::testbed(), jobs, seed).unwrap()
    }

    #[test]
    fn meets_qos_on_easy_mix_and_stops() {
        let mut s = server(
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
                JobSpec::latency_critical(WorkloadId::ImgDnn, 0.2),
                JobSpec::background(WorkloadId::Blackscholes),
            ],
            1,
        );
        let outcome = Parties::default().run(&mut s).unwrap();
        assert!(outcome.qos_met, "best score {}", outcome.best_score);
        assert!(!outcome.gave_up);
        assert!(outcome.samples_used() <= 100);
    }

    #[test]
    fn gives_up_on_impossible_mix() {
        let mut s = server(
            vec![
                JobSpec::latency_critical(WorkloadId::ImgDnn, 1.0),
                JobSpec::latency_critical(WorkloadId::Masstree, 1.0),
                JobSpec::latency_critical(WorkloadId::Memcached, 1.0),
                JobSpec::latency_critical(WorkloadId::Specjbb, 1.0),
            ],
            2,
        );
        let outcome = Parties::default().run(&mut s).unwrap();
        assert!(!outcome.qos_met);
        assert!(outcome.gave_up);
    }

    #[test]
    fn never_exceeds_sample_budget() {
        let mut s = server(
            vec![
                JobSpec::latency_critical(WorkloadId::Masstree, 0.9),
                JobSpec::latency_critical(WorkloadId::ImgDnn, 0.9),
                JobSpec::background(WorkloadId::Streamcluster),
            ],
            3,
        );
        let config = PartiesConfig { max_samples: 40, ..PartiesConfig::default() };
        let outcome = Parties::new(config).run(&mut s).unwrap();
        // Downsizing reverts may add one extra observation per shrink trial.
        assert!(outcome.samples_used() <= 42, "used {}", outcome.samples_used());
    }

    #[test]
    fn downsizing_feeds_bg_jobs() {
        // With a single low-load LC job and a BG job, PARTIES should donate
        // generous leftovers to the BG job.
        let mut s = server(
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.1),
                JobSpec::background(WorkloadId::Swaptions),
            ],
            4,
        );
        let outcome = Parties::default().run(&mut s).unwrap();
        assert!(outcome.qos_met);
        let bg_perf = outcome.best_bg_perf().unwrap();
        assert!(bg_perf > 0.4, "BG perf after downsizing {bg_perf}");
    }

    #[test]
    fn worst_violator_picks_least_slack() {
        let mut s = server(
            vec![
                JobSpec::latency_critical(WorkloadId::Masstree, 0.9),
                JobSpec::latency_critical(WorkloadId::Memcached, 0.1),
            ],
            5,
        );
        // Starve masstree: it should be the violator at equal share or a
        // masstree-starved partition.
        let p = Partition::max_for_job(s.catalog(), 2, 1).unwrap();
        let mut samples = Vec::new();
        crate::policy::observe_and_record(&mut s, &p, &mut samples);
        assert_eq!(worst_violator(&samples[0]), Some(0));
    }
}
