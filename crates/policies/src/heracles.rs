//! Heracles (Lo et al., ISCA 2015) — the 1-LC baseline.
//!
//! Heracles protects exactly **one** latency-critical job: it grows that
//! job's resource shares until its QoS is met, treating everything else as
//! best effort, and "does not create resource partitions among the BG
//! jobs, letting them run unmanaged" (paper Sec. 6). It was never designed
//! for multiple LC jobs, which is why the paper's Fig. 7 shows it unable to
//! co-locate memcached at any load alongside two other loaded LC jobs: the
//! *other* LC jobs' QoS is simply not part of its objective.
//!
//! Reproduction: the first LC job (index order) is the protected one. The
//! controller cycles resources, upsizing the protected job by one unit at
//! a time (from the best-effort job holding the most of that resource)
//! while its QoS is violated, and stops as soon as the protected job is
//! happy — whether or not anyone else is.

use clite_sim::alloc::Partition;
use clite_sim::resource::{ResourceKind, NUM_RESOURCES};
use clite_sim::testbed::Testbed;

use clite_telemetry::Telemetry;

use crate::policy::{
    observe_and_record_with, outcome_from_samples, Policy, PolicyOutcome, PolicySample,
};
use crate::PolicyError;

/// Configuration for the Heracles baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeraclesConfig {
    /// Hard cap on sampled configurations.
    pub max_samples: usize,
    /// Relative latency improvement below which an adjustment is judged
    /// unhelpful and the controller moves to the next resource.
    pub improvement_epsilon: f64,
}

impl Default for HeraclesConfig {
    fn default() -> Self {
        Self { max_samples: 60, improvement_epsilon: 0.02 }
    }
}

/// The Heracles policy.
#[derive(Debug, Clone, Default)]
pub struct Heracles {
    config: HeraclesConfig,
}

impl Heracles {
    /// Builds Heracles with an explicit configuration.
    #[must_use]
    pub fn new(config: HeraclesConfig) -> Self {
        Self { config }
    }
}

impl<T: Testbed> Policy<T> for Heracles {
    fn name(&self) -> &'static str {
        "Heracles"
    }

    fn run_with(
        &mut self,
        server: &mut T,
        telemetry: &Telemetry<'_>,
    ) -> Result<PolicyOutcome, PolicyError> {
        let jobs = server.job_count();
        let protected = server.lc_indices().first().copied();
        let mut samples: Vec<PolicySample> = Vec::new();
        let mut current = Partition::equal_share(server.catalog(), jobs)?;
        observe_and_record_with(server, &current, &mut samples, telemetry);

        let Some(protected) = protected else {
            // No LC job at all: Heracles has nothing to protect.
            return Ok(outcome_from_samples(Policy::<T>::name(self), samples, false));
        };

        let mut resource_idx = 0usize;
        let mut exhausted_rotations = 0usize;
        while samples.len() < self.config.max_samples {
            let last = samples.last().expect("non-empty");
            if last.observation.jobs[protected].qos_met != Some(false) {
                break; // the only job Heracles cares about is satisfied
            }
            let before_slack = last.observation.jobs[protected].qos_slack().unwrap_or(0.0);

            // Find a donatable resource starting from the rotation cursor.
            let mut step = None;
            for k in 0..NUM_RESOURCES {
                let resource = ResourceKind::from_index((resource_idx + k) % NUM_RESOURCES);
                let donor = (0..jobs)
                    .filter(|&j| j != protected && current.units(j, resource) > 1)
                    .max_by_key(|&j| current.units(j, resource));
                if let Some(donor) = donor {
                    step = Some((resource, donor, k));
                    break;
                }
            }
            let Some((resource, donor, skipped)) = step else {
                break; // protected job already owns everything transferable
            };
            resource_idx = (resource_idx + skipped) % NUM_RESOURCES;

            current = current
                .transfer(resource, donor, protected, 1)
                .expect("donor validated to hold more than one unit");
            observe_and_record_with(server, &current, &mut samples, telemetry);
            let after_slack = samples.last().expect("just recorded").observation.jobs[protected]
                .qos_slack()
                .unwrap_or(0.0);
            if after_slack <= before_slack * (1.0 + self.config.improvement_epsilon) {
                resource_idx = (resource_idx + 1) % NUM_RESOURCES;
                exhausted_rotations += 1;
            } else {
                exhausted_rotations = 0;
            }
            if exhausted_rotations >= 2 * NUM_RESOURCES {
                break; // cycling without progress
            }
        }

        let gave_up = samples
            .last()
            .map(|s| s.observation.jobs[protected].qos_met == Some(false))
            .unwrap_or(true);
        Ok(outcome_from_samples(Policy::<T>::name(self), samples, gave_up))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    #[test]
    fn protects_first_lc_job_only() {
        // Protected memcached at high load is satisfied; the second LC job
        // (masstree, also loaded) is ignored and typically violated.
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.8),
            JobSpec::latency_critical(WorkloadId::Masstree, 0.8),
            JobSpec::background(WorkloadId::Blackscholes),
        ];
        let mut s = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
        let outcome = Heracles::default().run(&mut s).unwrap();
        // Heracles's stopping state (the last sample) satisfies the
        // protected job; the Eq. 3-best sample may be a different one since
        // Heracles does not optimize that score.
        let last = outcome.samples.last().unwrap();
        assert_eq!(last.observation.jobs[0].qos_met, Some(true), "protected job satisfied");
        assert!(!outcome.gave_up);
        // Heracles does not pursue the overall QoS goal.
        assert!(
            !outcome.qos_met,
            "both heavily-loaded LC jobs satisfied — Heracles should not manage the second"
        );
    }

    #[test]
    fn trivial_case_stops_immediately() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.1),
            JobSpec::background(WorkloadId::Swaptions),
        ];
        let mut s = Server::new(ResourceCatalog::testbed(), jobs, 2).unwrap();
        let outcome = Heracles::default().run(&mut s).unwrap();
        assert!(outcome.qos_met);
        assert!(outcome.samples_used() <= 3, "used {}", outcome.samples_used());
    }

    #[test]
    fn respects_budget() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Masstree, 1.0),
            JobSpec::latency_critical(WorkloadId::ImgDnn, 1.0),
            JobSpec::latency_critical(WorkloadId::Specjbb, 1.0),
        ];
        let mut s = Server::new(ResourceCatalog::testbed(), jobs, 3).unwrap();
        let outcome = Heracles::new(HeraclesConfig { max_samples: 25, ..Default::default() })
            .run(&mut s)
            .unwrap();
        assert!(outcome.samples_used() <= 25);
    }
}
