//! CLITE adapted to the common [`Policy`] trait.

use clite::config::CliteConfig;
use clite::controller::CliteController;

use clite_sim::testbed::Testbed;
use clite_telemetry::Telemetry;

use crate::policy::{Policy, PolicyOutcome, PolicySample};
use crate::PolicyError;

/// The CLITE controller behind the [`Policy`] interface.
#[derive(Debug, Clone, Default)]
pub struct ClitePolicy {
    controller: CliteController,
}

impl ClitePolicy {
    /// Builds the policy with an explicit CLITE configuration.
    #[must_use]
    pub fn new(config: CliteConfig) -> Self {
        Self { controller: CliteController::new(config) }
    }

    /// Returns a copy re-seeded for variability studies.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        Self::new(self.controller.config().clone().with_seed(seed))
    }
}

impl<T: Testbed> Policy<T> for ClitePolicy {
    fn name(&self) -> &'static str {
        "CLITE"
    }

    fn run_with(
        &mut self,
        server: &mut T,
        telemetry: &Telemetry<'_>,
    ) -> Result<PolicyOutcome, PolicyError> {
        let outcome = self.controller.run_with(server, telemetry)?;
        let samples: Vec<PolicySample> = outcome
            .samples
            .iter()
            .map(|r| PolicySample {
                index: r.index,
                partition: r.partition.clone(),
                observation: r.observation.clone(),
                score: r.score.value,
            })
            .collect();
        Ok(PolicyOutcome {
            policy: Policy::<T>::name(self).to_owned(),
            best_partition: outcome.best_partition.clone(),
            best_score: outcome.best_score,
            qos_met: outcome.qos_met(),
            samples_to_qos: outcome.samples_to_qos,
            samples,
            gave_up: !outcome.infeasible_jobs.is_empty(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    #[test]
    fn adapter_preserves_outcome_shape() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
            JobSpec::latency_critical(WorkloadId::Xapian, 0.2),
            JobSpec::background(WorkloadId::Fluidanimate),
        ];
        let mut s = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
        let outcome = ClitePolicy::default().run(&mut s).unwrap();
        assert_eq!(outcome.policy, "CLITE");
        assert!(outcome.qos_met);
        assert!(!outcome.samples.is_empty());
        assert_eq!(outcome.samples[0].index, 0);
        // Server really ran those windows (unlike ORACLE).
        assert_eq!(s.samples_observed() as usize, outcome.samples_used());
    }
}
