//! GENETIC — genetic-algorithm-inspired search (paper Sec. 5.1).
//!
//! "GENETIC starts by sampling multiple configurations. It selects the two
//! with the highest objective function values and generates new
//! configurations by combining the resource allocations of the two
//! configurations in different forms ('cross-over'). Then, the generated
//! combinations are tweaked using random changes ('mutation') such as
//! increasing one type of resource allocation of one job by one unit and
//! decreasing allocation of another job by one unit. After sampling a
//! pre-set number of configurations, GENETIC chooses the configuration
//! with the highest objective function value."
//!
//! Crossover operates on whole resource *columns* (each child takes each
//! resource's full allocation vector from one parent), which preserves the
//! per-resource simplex constraint by construction; mutation is 1–3 random
//! unit transfers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clite_sim::alloc::{JobAllocation, Partition};
use clite_sim::resource::{ResourceKind, NUM_RESOURCES};
use clite_sim::testbed::Testbed;

use clite_telemetry::Telemetry;

use crate::policy::{
    observe_and_record_with, outcome_from_samples, Policy, PolicyOutcome, PolicySample,
};
use crate::PolicyError;

/// Configuration for the GENETIC baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// Initial population size (random partitions plus the equal split).
    pub population: usize,
    /// Children generated per generation.
    pub children_per_generation: usize,
    /// Total sample budget (pre-set, per the paper higher than CLITE's
    /// typical sample count).
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        Self { population: 12, children_per_generation: 4, budget: 80, seed: 0x6E6E }
    }
}

/// The GENETIC policy.
#[derive(Debug, Clone)]
pub struct Genetic {
    config: GeneticConfig,
}

impl Genetic {
    /// Builds GENETIC with an explicit configuration.
    #[must_use]
    pub fn new(config: GeneticConfig) -> Self {
        Self { config }
    }

    /// Returns a copy re-seeded for variability studies.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }
}

impl Default for Genetic {
    fn default() -> Self {
        Self::new(GeneticConfig::default())
    }
}

impl<T: Testbed> Policy<T> for Genetic {
    fn name(&self) -> &'static str {
        "GENETIC"
    }

    fn run_with(
        &mut self,
        server: &mut T,
        telemetry: &Telemetry<'_>,
    ) -> Result<PolicyOutcome, PolicyError> {
        let jobs = server.job_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut samples: Vec<PolicySample> = Vec::new();

        // Initial population: equal share + random partitions.
        let mut scored: Vec<(Partition, f64)> = Vec::new();
        let equal = Partition::equal_share(server.catalog(), jobs)?;
        let idx = observe_and_record_with(server, &equal, &mut samples, telemetry);
        scored.push((equal, samples[idx].score));
        while scored.len() < self.config.population && samples.len() < self.config.budget {
            let p = Partition::random(server.catalog(), jobs, &mut rng)?;
            let idx = observe_and_record_with(server, &p, &mut samples, telemetry);
            scored.push((p, samples[idx].score));
        }

        // The paper's GENETIC selects the two best of the *initial*
        // sampling as parents, then spends the rest of the budget on their
        // crossed-over, mutated combinations (a single-generation scheme --
        // it does not re-select parents from the children).
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let parent_a = scored[0].0.clone();
        let parent_b = scored.get(1).map_or_else(|| scored[0].0.clone(), |p| p.0.clone());
        while samples.len() < self.config.budget {
            let child = mutate(&crossover(&parent_a, &parent_b, &mut rng), &mut rng);
            observe_and_record_with(server, &child, &mut samples, telemetry);
        }
        Ok(outcome_from_samples(Policy::<T>::name(self), samples, false))
    }
}

/// Column-wise crossover: each resource's whole allocation vector comes
/// from one parent, preserving the simplex constraint.
fn crossover(a: &Partition, b: &Partition, rng: &mut StdRng) -> Partition {
    let jobs = a.job_count();
    let mut rows: Vec<[u32; NUM_RESOURCES]> = (0..jobs).map(|j| a.job(j).all_units()).collect();
    for r in ResourceKind::ALL {
        if rng.gen_bool(0.5) {
            for (j, row) in rows.iter_mut().enumerate() {
                row[r.index()] = b.units(j, r);
            }
        }
    }
    let rows = rows.into_iter().map(JobAllocation::from_units).collect();
    Partition::from_rows(*a.catalog(), rows).expect("column crossover preserves feasibility")
}

/// Mutation: 1–3 random single-unit transfers.
fn mutate(p: &Partition, rng: &mut StdRng) -> Partition {
    let mut out = p.clone();
    for _ in 0..rng.gen_range(1..=3) {
        let neighbors = out.neighbors(None);
        if neighbors.is_empty() {
            break;
        }
        out = neighbors[rng.gen_range(0..neighbors.len())].clone();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    #[test]
    fn respects_budget_exactly() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
            JobSpec::latency_critical(WorkloadId::ImgDnn, 0.3),
            JobSpec::background(WorkloadId::Streamcluster),
        ];
        let mut s = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
        let outcome = Genetic::default().run(&mut s).unwrap();
        assert_eq!(outcome.samples_used(), 80);
    }

    #[test]
    fn crossover_children_are_feasible() {
        let catalog = ResourceCatalog::testbed();
        let mut rng = StdRng::seed_from_u64(1);
        let a = Partition::random(&catalog, 3, &mut rng).unwrap();
        let b = Partition::random(&catalog, 3, &mut rng).unwrap();
        for _ in 0..50 {
            // from_rows inside crossover validates feasibility; just
            // exercise many random column mixes.
            let c = crossover(&a, &b, &mut rng);
            let m = mutate(&c, &mut rng);
            assert_eq!(m.job_count(), 3);
        }
    }

    #[test]
    fn finds_reasonable_configuration_on_easy_mix() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
            JobSpec::background(WorkloadId::Blackscholes),
        ];
        let mut s = Server::new(ResourceCatalog::testbed(), jobs, 2).unwrap();
        let outcome = Genetic::default().run(&mut s).unwrap();
        assert!(outcome.qos_met, "easy mix should be satisfiable, best {}", outcome.best_score);
    }
}
