//! RAND+ — random-plus search (paper Sec. 5.1).
//!
//! "RAND+ stochastically selects a configuration to sample from a set of
//! all possible configurations using a uniform distribution. To avoid
//! sampling similar configuration multiple times, it selectively discards
//! a new sample if the Euclidean distance between the selected
//! configuration and existing ones are smaller than a threshold." It
//! collects a pre-set number of samples (chosen higher than CLITE's
//! average, per Fig. 15a) and keeps the best.

use rand::rngs::StdRng;
use rand::SeedableRng;

use clite_sim::alloc::Partition;
use clite_sim::testbed::Testbed;

use clite_telemetry::Telemetry;

use crate::policy::{
    observe_and_record_with, outcome_from_samples, Policy, PolicyOutcome, PolicySample,
};
use crate::PolicyError;

/// Configuration for RAND+.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomPlusConfig {
    /// Pre-set number of configurations to sample.
    pub budget: usize,
    /// Minimum Euclidean distance (in normalized feature space) to every
    /// previously sampled configuration.
    pub min_distance: f64,
    /// Rejection attempts per sample before accepting a close one anyway.
    pub max_rejects: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomPlusConfig {
    fn default() -> Self {
        Self { budget: 80, min_distance: 0.15, max_rejects: 25, seed: 0x5241_4E44 }
    }
}

/// The RAND+ policy.
#[derive(Debug, Clone)]
pub struct RandomPlus {
    config: RandomPlusConfig,
}

impl RandomPlus {
    /// Builds RAND+ with an explicit configuration.
    #[must_use]
    pub fn new(config: RandomPlusConfig) -> Self {
        Self { config }
    }

    /// Returns a copy re-seeded for variability studies.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }
}

impl Default for RandomPlus {
    fn default() -> Self {
        Self::new(RandomPlusConfig::default())
    }
}

impl<T: Testbed> Policy<T> for RandomPlus {
    fn name(&self) -> &'static str {
        "RAND+"
    }

    fn run_with(
        &mut self,
        server: &mut T,
        telemetry: &Telemetry<'_>,
    ) -> Result<PolicyOutcome, PolicyError> {
        let jobs = server.job_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut samples: Vec<PolicySample> = Vec::new();
        let mut kept: Vec<Partition> = Vec::new();

        while samples.len() < self.config.budget {
            let mut candidate = Partition::random(server.catalog(), jobs, &mut rng)?;
            for _ in 0..self.config.max_rejects {
                let too_close =
                    kept.iter().any(|p| p.distance(&candidate) < self.config.min_distance);
                if !too_close {
                    break;
                }
                candidate = Partition::random(server.catalog(), jobs, &mut rng)?;
            }
            observe_and_record_with(server, &candidate, &mut samples, telemetry);
            kept.push(candidate);
        }
        Ok(outcome_from_samples(Policy::<T>::name(self), samples, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    #[test]
    fn collects_exactly_budget_samples() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
            JobSpec::background(WorkloadId::Canneal),
        ];
        let mut s = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
        let mut policy =
            RandomPlus::new(RandomPlusConfig { budget: 20, ..RandomPlusConfig::default() });
        let outcome = policy.run(&mut s).unwrap();
        assert_eq!(outcome.samples_used(), 20);
        assert!(!outcome.gave_up);
    }

    #[test]
    fn samples_are_spread_out() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Xapian, 0.3),
            JobSpec::background(WorkloadId::Freqmine),
        ];
        let mut s = Server::new(ResourceCatalog::testbed(), jobs, 2).unwrap();
        let outcome = RandomPlus::default().run(&mut s).unwrap();
        // Average pairwise distance must comfortably exceed the filter
        // threshold: the filter did its job.
        let parts: Vec<&Partition> = outcome.samples.iter().map(|s| &s.partition).collect();
        let mut total = 0.0;
        let mut count = 0;
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                total += parts[i].distance(parts[j]);
                count += 1;
            }
        }
        assert!(total / f64::from(count as u32) > 0.15);
    }

    #[test]
    fn different_seeds_different_samples() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
            JobSpec::background(WorkloadId::Swaptions),
        ];
        let mut s1 = Server::new(ResourceCatalog::testbed(), jobs.clone(), 1).unwrap();
        let mut s2 = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
        let a = RandomPlus::default().with_seed(1).run(&mut s1).unwrap();
        let b = RandomPlus::default().with_seed(2).run(&mut s2).unwrap();
        assert_ne!(a.samples[0].partition, b.samples[0].partition);
    }
}
