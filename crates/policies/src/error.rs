use std::fmt;

use clite::CliteError;
use clite_sim::SimError;

/// Error type for co-location policies.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PolicyError {
    /// The CLITE controller failed.
    Clite(CliteError),
    /// The simulator rejected a request.
    Sim(SimError),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::Clite(e) => write!(f, "clite failure: {e}"),
            PolicyError::Sim(e) => write!(f, "simulator failure: {e}"),
        }
    }
}

impl std::error::Error for PolicyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolicyError::Clite(e) => Some(e),
            PolicyError::Sim(e) => Some(e),
        }
    }
}

impl From<CliteError> for PolicyError {
    fn from(e: CliteError) -> Self {
        PolicyError::Clite(e)
    }
}

impl From<SimError> for PolicyError {
    fn from(e: SimError) -> Self {
        PolicyError::Sim(e)
    }
}

impl From<clite_bo::BoError> for PolicyError {
    fn from(e: clite_bo::BoError) -> Self {
        PolicyError::Clite(CliteError::from(e))
    }
}
