//! The common interface every co-location scheduling policy implements.

use serde::Serialize;

use clite::score::score_value;
use clite_sim::alloc::Partition;
use clite_sim::metrics::Observation;
use clite_sim::testbed::Testbed;
use clite_telemetry::{Event, Phase, Telemetry};

use crate::PolicyError;

/// One evaluated configuration during a policy run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PolicySample {
    /// 0-based sample index.
    pub index: usize,
    /// The partition that was enforced.
    pub partition: Partition,
    /// The observation window's measurements.
    pub observation: Observation,
    /// Eq. 3 score of the window (computed uniformly for every policy so
    /// outcomes are comparable, even for policies that don't use it
    /// internally).
    pub score: f64,
}

/// Outcome of one policy run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PolicyOutcome {
    /// Policy name (paper spelling: "PARTIES", "CLITE", …).
    pub policy: String,
    /// Best-scoring partition found.
    pub best_partition: Partition,
    /// Its score.
    pub best_score: f64,
    /// Every evaluated sample, in order.
    pub samples: Vec<PolicySample>,
    /// Whether the best sample met every LC job's QoS.
    pub qos_met: bool,
    /// 0-based index of the first sample meeting all QoS (`None` if never).
    pub samples_to_qos: Option<usize>,
    /// Whether the policy gave up (concluded the set is not co-locatable).
    pub gave_up: bool,
}

impl PolicyOutcome {
    /// Number of configurations sampled — the paper's Fig. 15a overhead
    /// metric. ORACLE reports its offline ground-truth evaluation count.
    #[must_use]
    pub fn samples_used(&self) -> usize {
        self.samples.len()
    }

    /// The best sample's record.
    #[must_use]
    pub fn best_sample(&self) -> Option<&PolicySample> {
        self.samples.iter().max_by(|a, b| a.score.total_cmp(&b.score))
    }

    /// Mean BG normalized performance at the best sample (`None` if no BG
    /// jobs).
    #[must_use]
    pub fn best_bg_perf(&self) -> Option<f64> {
        self.best_sample().and_then(|s| s.observation.mean_bg_perf())
    }

    /// Mean LC normalized (isolation-relative) performance at the best
    /// sample (`None` if no LC jobs).
    #[must_use]
    pub fn best_lc_perf(&self) -> Option<f64> {
        self.best_sample().and_then(|s| s.observation.mean_lc_perf())
    }
}

/// A co-location scheduling policy: partitions `server`'s resources until
/// its own stopping rule fires, and reports everything it sampled.
///
/// Policies are generic over the [`Testbed`] backend they drive, so the
/// same implementation runs against the noisy simulator, a memoized
/// wrapper, or any future hardware adapter. Online policies bound `T` by
/// plain [`Testbed`]; only ORACLE demands
/// [`OracleTestbed`](clite_sim::testbed::OracleTestbed) (noise-free ground
/// truth), which keeps the privileged channel out of reach of everything
/// that is supposed to learn from measurements.
pub trait Policy<T: Testbed> {
    /// The paper's name for this policy.
    fn name(&self) -> &'static str;

    /// Runs the policy to completion on `server`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] on simulator or internal failures.
    fn run(&mut self, server: &mut T) -> Result<PolicyOutcome, PolicyError> {
        self.run_with(server, &Telemetry::disabled())
    }

    /// [`run`](Policy::run) with telemetry: policies emit structured
    /// events (QoS violations at minimum) and attribute observe/score time
    /// to the profiling phases. The default-telemetry `run` discards both.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] on simulator or internal failures.
    fn run_with(
        &mut self,
        server: &mut T,
        telemetry: &Telemetry<'_>,
    ) -> Result<PolicyOutcome, PolicyError>;
}

/// Shared helper: observe `partition` on `server`, score it, and append a
/// [`PolicySample`]. Returns the sample's index.
pub fn observe_and_record<T: Testbed>(
    server: &mut T,
    partition: &Partition,
    samples: &mut Vec<PolicySample>,
) -> usize {
    observe_and_record_with(server, partition, samples, &Telemetry::disabled())
}

/// [`observe_and_record`] with telemetry: times the observation window and
/// the scoring as their profiling phases and emits one
/// [`Event::QosViolation`] per LC job missing its target.
pub fn observe_and_record_with<T: Testbed>(
    server: &mut T,
    partition: &Partition,
    samples: &mut Vec<PolicySample>,
    telemetry: &Telemetry<'_>,
) -> usize {
    let observation = telemetry.time(Phase::Observe, || server.observe(partition));
    let score = telemetry.time(Phase::Score, || score_value(&observation));
    let index = samples.len();
    for (job, obs) in observation.jobs.iter().enumerate() {
        if obs.qos_met == Some(false) {
            telemetry.emit(Event::QosViolation {
                sample: index,
                job,
                ratio: obs.qos_slack().unwrap_or(0.0),
            });
        }
    }
    samples.push(PolicySample { index, partition: partition.clone(), observation, score });
    index
}

/// Shared helper: assemble a [`PolicyOutcome`] from recorded samples.
///
/// # Panics
///
/// Panics if `samples` is empty (every policy evaluates at least one
/// configuration).
#[must_use]
pub fn outcome_from_samples(
    policy: &str,
    samples: Vec<PolicySample>,
    gave_up: bool,
) -> PolicyOutcome {
    let best = samples
        .iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .expect("policy evaluated at least one configuration");
    let samples_to_qos = samples.iter().position(|s| s.observation.all_qos_met());
    PolicyOutcome {
        policy: policy.to_owned(),
        best_partition: best.partition.clone(),
        best_score: best.score,
        qos_met: best.observation.all_qos_met(),
        samples_to_qos,
        samples,
        gave_up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    #[test]
    fn record_and_outcome_roundtrip() {
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
            JobSpec::background(WorkloadId::Swaptions),
        ];
        let mut server = Server::new(ResourceCatalog::testbed(), jobs, 1).unwrap();
        let mut samples = Vec::new();
        let p = Partition::equal_share(server.catalog(), 2).unwrap();
        let q = Partition::max_for_job(server.catalog(), 2, 0).unwrap();
        assert_eq!(observe_and_record(&mut server, &p, &mut samples), 0);
        assert_eq!(observe_and_record(&mut server, &q, &mut samples), 1);
        let outcome = outcome_from_samples("TEST", samples, false);
        assert_eq!(outcome.policy, "TEST");
        assert_eq!(outcome.samples_used(), 2);
        assert!(outcome.best_score >= outcome.samples[0].score.min(outcome.samples[1].score));
        assert!(!outcome.gave_up);
    }
}
