//! # clite-policies — competing co-location scheduling policies
//!
//! The CLITE paper (Sec. 5.1) compares against four schemes plus an
//! offline upper bound; this crate implements all of them behind one
//! [`policy::Policy`] trait so every experiment drives them identically:
//!
//! * [`parties::Parties`] — the PARTIES finite-state-machine baseline
//!   (ASPLOS 2019): one-resource-at-a-time incremental upsizing/downsizing
//!   with trial-and-error, stopping as soon as QoS is met (it never
//!   optimizes BG performance) or giving up after cycling without
//!   progress;
//! * [`heracles::Heracles`] — protects a *single* LC job (the first), all
//!   other jobs served best-effort: the scheme's documented limitation to
//!   1-LC co-locations;
//! * [`random_plus::RandomPlus`] — RAND+: uniform random configurations
//!   with a minimum-Euclidean-distance filter, fixed sample budget;
//! * [`genetic::Genetic`] — GENETIC: population crossover on resource
//!   columns plus unit-transfer mutations, fixed sample budget;
//! * [`oracle::Oracle`] — ORACLE: offline brute-force/exhaustive search;
//!   here it is granted privileged access to the simulator's noise-free
//!   ground truth (the paper samples "thousands of configurations"
//!   offline; the role is identical — an upper bound no online policy can
//!   beat);
//! * [`clite_policy::ClitePolicy`] — the CLITE controller adapted to the
//!   same trait.
//!
//! ## Example
//!
//! ```
//! use clite_policies::policy::Policy;
//! use clite_policies::parties::Parties;
//! use clite_sim::prelude::*;
//!
//! let jobs = vec![
//!     JobSpec::latency_critical(WorkloadId::Memcached, 0.2),
//!     JobSpec::background(WorkloadId::Swaptions),
//! ];
//! let mut server = Server::new(ResourceCatalog::testbed(), jobs, 3)?;
//! let outcome = Parties::default().run(&mut server)?;
//! assert!(outcome.samples_used() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clite_policy;
pub mod genetic;
pub mod heracles;
pub mod oracle;
pub mod parties;
pub mod policy;
pub mod random_plus;

mod error;

pub use error::PolicyError;

/// Builds one boxed instance of every online policy plus ORACLE, in the
/// paper's presentation order, for experiments that sweep all of them.
///
/// Generic over the [`Testbed`](clite_sim::testbed::Testbed) backend; the
/// [`OracleTestbed`](clite_sim::testbed::OracleTestbed) bound comes from
/// ORACLE's need for ground-truth access.
#[must_use]
pub fn all_policies<T: clite_sim::testbed::OracleTestbed + 'static>(
) -> Vec<Box<dyn policy::Policy<T>>> {
    vec![
        Box::new(heracles::Heracles::default()),
        Box::new(parties::Parties::default()),
        Box::new(random_plus::RandomPlus::default()),
        Box::new(genetic::Genetic::default()),
        Box::new(clite_policy::ClitePolicy::default()),
        Box::new(oracle::Oracle::default()),
    ]
}
