//! ORACLE — the offline brute-force upper bound (paper Sec. 5.1).
//!
//! "ORACLE results are obtained offline by sampling every possible
//! configuration and selecting the best one. While this strategy is
//! infeasible due to the need to sample thousands/millions of
//! configurations, we use it to compare CLITE against the optimal
//! results."
//!
//! Exhaustively enumerating the testbed space (hundreds of millions of
//! configurations for 3+ jobs) is pointless busywork even offline, so this
//! reproduction grants ORACLE two privileges no online policy has:
//! noise-free access to the testbed's ground truth
//! ([`OracleTestbed::ground_truth`]) and an unmetered evaluation budget, spent on
//! exhaustive-ish multi-start steepest-ascent over the unit-transfer
//! neighbourhood with memoization. The role in every figure is identical
//! to the paper's: an upper bound. Its reported "samples" count the
//! ground-truth evaluations performed (thousands, matching the paper's
//! description of ORACLE overhead in Fig. 15a).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use clite::score::score_value;
use clite_bo::space::SearchSpace;
use clite_sim::alloc::Partition;
use clite_sim::testbed::OracleTestbed;

use clite_telemetry::Telemetry;

use crate::policy::{outcome_from_samples, Policy, PolicyOutcome, PolicySample};
use crate::PolicyError;

/// Configuration for the ORACLE search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// Random restarts in addition to the deterministic seeds (equal split
    /// and every per-job maximum).
    pub random_restarts: usize,
    /// Maximum steepest-ascent steps per start.
    pub max_steps: usize,
    /// Spaces up to this many configurations are swept *exhaustively*
    /// (the paper's literal ORACLE); larger spaces fall back to memoized
    /// multi-start hill climbing.
    pub exhaustive_cap: u128,
    /// RNG seed for the restarts.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self { random_restarts: 28, max_steps: 90, exhaustive_cap: 100_000, seed: 0x0AC1E }
    }
}

/// The ORACLE policy.
#[derive(Debug, Clone)]
pub struct Oracle {
    config: OracleConfig,
}

impl Oracle {
    /// Builds ORACLE with an explicit configuration.
    #[must_use]
    pub fn new(config: OracleConfig) -> Self {
        Self { config }
    }
}

impl Default for Oracle {
    fn default() -> Self {
        Self::new(OracleConfig::default())
    }
}

impl<T: OracleTestbed> Policy<T> for Oracle {
    fn name(&self) -> &'static str {
        "ORACLE"
    }

    fn run_with(
        &mut self,
        server: &mut T,
        _telemetry: &Telemetry<'_>,
    ) -> Result<PolicyOutcome, PolicyError> {
        let jobs = server.job_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut memo: HashMap<Partition, f64> = HashMap::new();
        let mut evals = 0usize;

        let eval = |p: &Partition, memo: &mut HashMap<Partition, f64>, evals: &mut usize| {
            if let Some(&v) = memo.get(p) {
                return v;
            }
            let v = score_value(&server.ground_truth(p));
            memo.insert(p.clone(), v);
            *evals += 1;
            v
        };

        let mut best: Option<(Partition, f64)> = None;
        let space = SearchSpace::new(*server.catalog(), jobs)?;
        if space.size() <= self.config.exhaustive_cap {
            // Small space: the literal exhaustive sweep of the paper.
            for p in space.enumerate()? {
                let v = eval(&p, &mut memo, &mut evals);
                if best.as_ref().is_none_or(|(_, bv)| v > *bv) {
                    best = Some((p, v));
                }
            }
        } else {
            // Start set: equal split, all extrema, random restarts.
            let mut starts: Vec<Partition> = vec![Partition::equal_share(server.catalog(), jobs)?];
            for j in 0..jobs {
                starts.push(Partition::max_for_job(server.catalog(), jobs, j)?);
            }
            for _ in 0..self.config.random_restarts {
                starts.push(Partition::random(server.catalog(), jobs, &mut rng)?);
            }

            for start in starts {
                let mut current = start;
                let mut current_val = eval(&current, &mut memo, &mut evals);
                for _ in 0..self.config.max_steps {
                    let mut improved = false;
                    for n in current.neighbors(None) {
                        let v = eval(&n, &mut memo, &mut evals);
                        if v > current_val {
                            current = n;
                            current_val = v;
                            improved = true;
                        }
                    }
                    if !improved {
                        break;
                    }
                }
                if best.as_ref().is_none_or(|(_, bv)| current_val > *bv) {
                    best = Some((current, current_val));
                }
            }
        }

        let (best_partition, _) = best.expect("start set is non-empty");
        // Record a single representative sample with the noise-free
        // observation of the optimum, plus the evaluation count as the
        // overhead metric (one placeholder sample per eval would be
        // wasteful; samples_used() is overridden through `evals`).
        let observation = server.ground_truth(&best_partition);
        let score = score_value(&observation);
        let samples =
            vec![PolicySample { index: 0, partition: best_partition, observation, score }];
        let mut outcome = outcome_from_samples(Policy::<T>::name(self), samples, false);
        outcome.samples_to_qos = if outcome.qos_met { Some(evals) } else { None };
        // Overhead bookkeeping: expose the true evaluation count by
        // padding the index of the single stored sample.
        outcome.samples[0].index = evals;
        Ok(outcome)
    }
}

impl Oracle {
    /// The number of ground-truth evaluations a finished outcome performed
    /// (stored in the single sample's index).
    #[must_use]
    pub fn evaluations(outcome: &PolicyOutcome) -> usize {
        outcome.samples.first().map_or(0, |s| s.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::prelude::*;

    fn server(jobs: Vec<JobSpec>, seed: u64) -> Server {
        Server::new(ResourceCatalog::testbed(), jobs, seed).unwrap()
    }

    #[test]
    fn oracle_beats_or_matches_naive_partitions() {
        let mut s = server(
            vec![
                JobSpec::latency_critical(WorkloadId::Memcached, 0.4),
                JobSpec::latency_critical(WorkloadId::Masstree, 0.3),
                JobSpec::background(WorkloadId::Streamcluster),
            ],
            1,
        );
        let outcome = Oracle::default().run(&mut s).unwrap();
        let equal = Partition::equal_share(s.catalog(), 3).unwrap();
        let equal_score = score_value(&s.ground_truth(&equal));
        assert!(outcome.best_score >= equal_score);
        assert!(outcome.qos_met);
        assert!(Oracle::evaluations(&outcome) > 100, "oracle is an offline heavyweight");
    }

    #[test]
    fn oracle_does_not_consume_online_windows() {
        let mut s = server(
            vec![
                JobSpec::latency_critical(WorkloadId::Xapian, 0.3),
                JobSpec::background(WorkloadId::Canneal),
            ],
            2,
        );
        let before = s.samples_observed();
        Oracle::default().run(&mut s).unwrap();
        assert_eq!(s.samples_observed(), before, "ORACLE works offline");
    }

    #[test]
    fn hill_climb_matches_exhaustive_on_small_space() {
        // Coarse 2-job space is exhaustively enumerable; the hill-climbing
        // fallback must land on (or very near) the same optimum.
        let jobs = vec![
            JobSpec::latency_critical(WorkloadId::Memcached, 0.4),
            JobSpec::background(WorkloadId::Streamcluster),
        ];
        let mut s1 = Server::new(ResourceCatalog::coarse(), jobs.clone(), 4).unwrap();
        let mut s2 = Server::new(ResourceCatalog::coarse(), jobs, 4).unwrap();
        let exhaustive =
            Oracle::new(OracleConfig { exhaustive_cap: u128::MAX, ..OracleConfig::default() })
                .run(&mut s1)
                .unwrap();
        let climbed = Oracle::new(OracleConfig { exhaustive_cap: 0, ..OracleConfig::default() })
            .run(&mut s2)
            .unwrap();
        assert!(
            climbed.best_score >= exhaustive.best_score - 0.02,
            "hill climb {:.4} vs exhaustive {:.4}",
            climbed.best_score,
            exhaustive.best_score
        );
        assert!(
            climbed.best_score <= exhaustive.best_score + 1e-9,
            "nothing beats the exhaustive sweep"
        );
    }

    #[test]
    fn oracle_is_deterministic() {
        let run = || {
            let mut s = server(
                vec![
                    JobSpec::latency_critical(WorkloadId::ImgDnn, 0.5),
                    JobSpec::background(WorkloadId::Freqmine),
                ],
                3,
            );
            Oracle::default().run(&mut s).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_partition, b.best_partition);
        assert_eq!(a.best_score, b.best_score);
    }
}
