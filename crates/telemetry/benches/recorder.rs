//! Throughput of the JSONL recorder hot path: buffered writer with
//! periodic flush points ([`JsonlRecorder::create`]) vs an unbuffered
//! `File` ([`JsonlRecorder::from_writer`]) vs flushing on every event.
//!
//! The buffered + batched-flush configuration is the default; the other
//! two rows quantify what the satellite fix bought — on a tmpfs the
//! unbuffered and flush-every-event variants pay one-plus syscalls per
//! event, the default pays ~one per page of events.

use std::fs::File;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use clite_telemetry::recorder::Recorder;
use clite_telemetry::{Event, JsonlRecorder};

fn sample_event(i: usize) -> Event {
    Event::PhaseTiming { phase: clite_telemetry::Phase::Observe, nanos: 1_000 + i as u64 }
}

fn bench_recorder(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("clite-recorder-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    let mut group = c.benchmark_group("jsonl_recorder");
    group.sample_size(30);

    let buffered = JsonlRecorder::create(dir.join("buffered.jsonl")).expect("create");
    group.bench_function("buffered_batched_flush", |b| {
        let mut i = 0usize;
        b.iter(|| {
            buffered.record(black_box(&sample_event(i)));
            i = i.wrapping_add(1);
        });
    });

    let unbuffered =
        JsonlRecorder::from_writer(File::create(dir.join("unbuffered.jsonl")).expect("create"));
    group.bench_function("unbuffered_file", |b| {
        let mut i = 0usize;
        b.iter(|| {
            unbuffered.record(black_box(&sample_event(i)));
            i = i.wrapping_add(1);
        });
    });

    let eager = JsonlRecorder::create(dir.join("eager.jsonl")).expect("create").with_flush_every(1);
    group.bench_function("buffered_flush_every_event", |b| {
        let mut i = 0usize;
        b.iter(|| {
            eager.record(black_box(&sample_event(i)));
            i = i.wrapping_add(1);
        });
    });

    group.finish();
    drop((buffered, unbuffered, eager));
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_recorder);
criterion_main!(benches);
