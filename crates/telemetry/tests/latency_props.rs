//! Property tests for [`LatencyHistogram`]: merging is associative (so
//! per-thread histograms can fold in any grouping), quantile estimates
//! stay inside the advertised relative-error bound, and threaded
//! recording merged in worker order is byte-identical to serial
//! recording.

use proptest::prelude::*;

use clite_telemetry::LatencyHistogram;

fn hist(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..2_000_000_000, 0..120),
        b in prop::collection::vec(0u64..2_000_000_000, 0..120),
        c in prop::collection::vec(0u64..2_000_000_000, 0..120),
    ) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        // a ⊕ (b ⊕ c)
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right);

        // Both equal the histogram of the concatenation.
        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &hist(&all));
    }

    #[test]
    fn quantile_error_is_bounded(
        values in prop::collection::vec(0u64..2_000_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = hist(&values);
        let mut values = values;
        values.sort_unstable();
        let n = values.len();
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = values[target - 1];
        let est = h.value_at_quantile(q);
        // The estimate is the upper bound of the bucket holding the
        // exact order statistic: never below it, and above it by at most
        // the advertised relative error.
        prop_assert!(est >= exact, "estimate {est} below exact {exact}");
        prop_assert!(
            est as f64 <= exact as f64 * (1.0 + LatencyHistogram::RELATIVE_ERROR),
            "estimate {} exceeds error bound around {}", est, exact
        );
    }

    #[test]
    fn threaded_recording_matches_serial(
        values in prop::collection::vec(0u64..2_000_000_000, 0..400),
        threads in 1usize..5,
    ) {
        // Serial reference: one histogram over everything.
        let serial = hist(&values);

        // Threaded: each worker records its chunk privately; merge in
        // worker-index order (the harness discipline).
        let chunk = values.len().div_ceil(threads).max(1);
        let parts: Vec<LatencyHistogram> = std::thread::scope(|scope| {
            let handles: Vec<_> = values
                .chunks(chunk)
                .map(|slice| scope.spawn(move || hist(slice)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        });
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.count(), values.len() as u64);
        // Sorted merge output: the full quantile sweep agrees point for
        // point, not just the struct equality above.
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            prop_assert_eq!(merged.value_at_quantile(q), serial.value_at_quantile(q));
        }
    }
}
