//! The per-run telemetry context threaded through the controller, the BO
//! engine, the policies, and the scheduler: one handle bundling an event
//! sink with the phase stopwatch.

use std::cell::RefCell;

use crate::event::Event;
use crate::profile::{OverheadReport, Phase, PhaseTimer};
use crate::recorder::{NoopRecorder, Recorder};

static NOOP: NoopRecorder = NoopRecorder;

/// A borrowed event sink plus the run's phase stopwatch.
///
/// Instrumented code takes `&Telemetry`; the phase timer sits behind a
/// `RefCell` so timing needs no `&mut` plumbing. Spans measure first and
/// book the elapsed time after the closure returns, so nested `time`
/// calls (e.g. a GP fit inside an engine step) are safe — though callers
/// should keep phases non-overlapping so the report's phase totals sum to
/// at most wall time.
pub struct Telemetry<'a> {
    recorder: &'a dyn Recorder,
    timer: RefCell<PhaseTimer>,
}

impl<'a> Telemetry<'a> {
    /// A context forwarding events to `recorder`.
    #[must_use]
    pub fn new(recorder: &'a dyn Recorder) -> Self {
        Self { recorder, timer: RefCell::new(PhaseTimer::new()) }
    }

    /// A context that discards events; the default for uninstrumented
    /// entry points.
    #[must_use]
    pub fn disabled() -> Telemetry<'static> {
        Telemetry::new(&NOOP)
    }

    /// Emits one event to the sink.
    pub fn emit(&self, event: Event) {
        self.recorder.record(&event);
    }

    /// The underlying sink (for forwarding to sub-components).
    #[must_use]
    pub fn recorder(&self) -> &'a dyn Recorder {
        self.recorder
    }

    /// Runs `f`, attributing its wall-clock time to `phase` and emitting
    /// a [`Event::PhaseTiming`] span event.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        self.timer.borrow_mut().add(phase, elapsed);
        self.recorder.record(&Event::PhaseTiming {
            phase,
            nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        });
        out
    }

    /// The run's profiling summary so far.
    #[must_use]
    pub fn report(&self) -> OverheadReport {
        self.timer.borrow().report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    #[test]
    fn spans_emit_events_and_accumulate() {
        let sink = MemoryRecorder::new();
        let telemetry = Telemetry::new(&sink);
        let v = telemetry.time(Phase::Observe, || 41) + 1;
        assert_eq!(v, 42);
        telemetry.time(Phase::Observe, || ());
        assert_eq!(sink.count_kind("phase_timing"), 2);
        let report = telemetry.report();
        assert_eq!(report.phase(Phase::Observe).count, 2);
        assert_eq!(report.phase(Phase::GpFit).count, 0);
    }

    #[test]
    fn nested_spans_do_not_panic() {
        let telemetry = Telemetry::disabled();
        let out = telemetry.time(Phase::Acquisition, || telemetry.time(Phase::GpFit, || 2) + 1);
        assert_eq!(out, 3);
        assert_eq!(telemetry.report().phase(Phase::GpFit).count, 1);
    }
}
