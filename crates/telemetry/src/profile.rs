//! Span-style stopwatch profiling for the search phases the paper's
//! Fig. 15b breaks down: GP fit, acquisition maximization, sample
//! observation, and scoring.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// A profiled search phase (the Fig. 15b cost components).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Fitting the GP surrogate (hyper-grid refreshes: full refits).
    GpFit,
    /// Extending the GP surrogate by one observation between refreshes
    /// (rank-1 Cholesky update — the O(n²) incremental path).
    GpExtend,
    /// Maximizing the acquisition function over candidates.
    Acquisition,
    /// Fanning work out over the shared `clite-par` worker pool
    /// (dispatch + barrier time of partitioned parallel sections, e.g.
    /// threaded cluster admission probes). Nested inside the phase that
    /// owns the work, so compare it against that phase's total rather
    /// than adding it to wall time.
    ParDispatch,
    /// Evaluating a partition on the server/simulator.
    Observe,
    /// Computing the Eq. 3 score from an observation.
    Score,
    /// Firing simulated queries and recording their latencies (the load
    /// harness's hot loop; not part of the search itself).
    LoadGen,
    /// Merging per-thread histograms and building percentile/CCDF
    /// reports after a load run.
    LoadReport,
}

impl Phase {
    /// All phases, in report order: the search phases first (the paper's
    /// Fig. 15b components), then the load-harness phases so one report
    /// separates search overhead from load-generation time.
    pub const ALL: [Phase; 8] = [
        Phase::GpFit,
        Phase::GpExtend,
        Phase::Acquisition,
        Phase::ParDispatch,
        Phase::Observe,
        Phase::Score,
        Phase::LoadGen,
        Phase::LoadReport,
    ];

    /// Stable snake_case name, used as the `phase` metric label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::GpFit => "gp_fit",
            Phase::GpExtend => "gp_extend",
            Phase::Acquisition => "acquisition",
            Phase::ParDispatch => "par_dispatch",
            Phase::Observe => "observe",
            Phase::Score => "score",
            Phase::LoadGen => "load_gen",
            Phase::LoadReport => "load_report",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::GpFit => 0,
            Phase::GpExtend => 1,
            Phase::Acquisition => 2,
            Phase::ParDispatch => 3,
            Phase::Observe => 4,
            Phase::Score => 5,
            Phase::LoadGen => 6,
            Phase::LoadReport => 7,
        }
    }
}

/// Accumulated cost of one phase across a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Which phase.
    pub phase: Phase,
    /// Total wall-clock seconds spent in the phase.
    pub total_seconds: f64,
    /// Number of timed sections.
    pub count: u64,
}

/// Per-run profiling summary: phase totals against the run's wall-clock
/// search time (the shape of the paper's Fig. 15b bars).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Cost of each phase, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseCost>,
    /// Wall-clock seconds of the whole search run.
    pub wall_seconds: f64,
    /// Fraction of wall time covered by the profiled phases.
    pub coverage: f64,
}

impl OverheadReport {
    /// Total profiled seconds across all phases.
    #[must_use]
    pub fn profiled_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.total_seconds).sum()
    }

    /// Cost entry for `phase`.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &PhaseCost {
        &self.phases[phase.index()]
    }
}

/// Accumulating stopwatch over the search phases.
#[derive(Debug, Clone)]
pub struct PhaseTimer {
    totals: [Duration; Phase::ALL.len()],
    counts: [u64; Phase::ALL.len()],
    started: Instant,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// A fresh timer; wall-clock measurement starts now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            totals: [Duration::ZERO; Phase::ALL.len()],
            counts: [0; Phase::ALL.len()],
            started: Instant::now(),
        }
    }

    /// Adds an already-measured span to `phase`.
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        self.totals[phase.index()] += elapsed;
        self.counts[phase.index()] += 1;
    }

    /// Runs `f`, attributing its wall-clock time to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Total accumulated time in `phase`.
    #[must_use]
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Finalizes the report against wall time since construction.
    #[must_use]
    pub fn report(&self) -> OverheadReport {
        let wall = self.started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
        let phases: Vec<PhaseCost> = Phase::ALL
            .iter()
            .map(|&phase| PhaseCost {
                phase,
                total_seconds: self.totals[phase.index()].as_secs_f64(),
                count: self.counts[phase.index()],
            })
            .collect();
        let profiled: f64 = phases.iter().map(|p| p.total_seconds).sum();
        OverheadReport { phases, wall_seconds: wall, coverage: profiled / wall }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates_per_phase() {
        let mut t = PhaseTimer::new();
        let v = t.time(Phase::GpFit, || {
            std::thread::sleep(Duration::from_millis(2));
            7
        });
        assert_eq!(v, 7);
        t.add(Phase::GpFit, Duration::from_millis(1));
        t.add(Phase::Score, Duration::from_micros(10));
        assert!(t.total(Phase::GpFit) >= Duration::from_millis(3));
        let report = t.report();
        assert_eq!(report.phase(Phase::GpFit).count, 2);
        assert_eq!(report.phase(Phase::Score).count, 1);
        assert_eq!(report.phase(Phase::Observe).count, 0);
        // Synthetic `add`s can exceed wall time; coverage just has to be
        // consistent with the totals.
        assert!(report.coverage > 0.0);
        assert!((report.profiled_seconds() / report.wall_seconds - report.coverage).abs() < 1e-12);
    }

    #[test]
    fn coverage_bounded_when_only_timing_real_spans() {
        let mut t = PhaseTimer::new();
        for _ in 0..3 {
            t.time(Phase::Observe, || std::thread::sleep(Duration::from_millis(1)));
        }
        let report = t.report();
        assert!(report.coverage > 0.0 && report.coverage <= 1.0 + 1e-9, "{}", report.coverage);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut t = PhaseTimer::new();
        t.add(Phase::Acquisition, Duration::from_millis(5));
        let report = t.report();
        let text = serde_json::to_string(&report).unwrap();
        let back: OverheadReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report, back);
    }
}
