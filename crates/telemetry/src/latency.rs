//! Per-query latency accounting: a log-bucketed HDR-style histogram with
//! bounded relative quantile error, and the per-job [`TailTracker`] the
//! load harness reports p50/p90/p99/p99.9 and tail CCDFs from.
//!
//! # Bucket math
//!
//! Values below `2^SUB_BITS` (= 32) land in one bucket each and are
//! recorded **exactly**. Above that, each power-of-two range `[2^k,
//! 2^(k+1))` is split into `2^SUB_BITS` equal sub-buckets, so a bucket's
//! width is at most `low / 2^SUB_BITS` of its lower bound and any quantile
//! read back from the histogram overestimates the true sample by at most
//! [`LatencyHistogram::RELATIVE_ERROR`] (1/32 ≈ 3.1%). Counts are exact;
//! only the value within a bucket is quantized.
//!
//! The histogram is deliberately lock-free *by construction* rather than
//! by atomics: each worker thread records into its own private histogram
//! and the harness merges them in worker-index order. `merge` is an
//! element-wise add, hence associative and commutative, so the merged
//! result is byte-identical between serial and threaded runs.

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsRegistry;

/// Sub-bucket resolution: each log2 range splits into `2^SUB_BITS`
/// buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per log2 range (and the linear-exact threshold).
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count: one linear group (indices `0..32`) plus one group
/// of 32 sub-buckets per log2 range `[2^k, 2^(k+1))` for `k` in
/// `SUB_BITS..=63`.
const BUCKET_COUNT: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS as usize;

/// The quantile grid reported in summaries and CCDF exports.
const CCDF_QUANTILES: [f64; 8] = [0.50, 0.75, 0.90, 0.95, 0.99, 0.995, 0.999, 0.9999];

/// A mergeable log-bucketed latency histogram over `u64` values
/// (microseconds, by convention in this workspace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Upper bound on the relative error of any quantile estimate:
    /// bucket widths never exceed `1/32` of their lower bound.
    pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKET_COUNT], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index for `value`: identity below [`SUB_BUCKETS`], then
    /// log2 group × sub-bucket above.
    fn index(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let shift = exp - SUB_BITS;
        let group = (shift + 1) as usize;
        group * SUB_BUCKETS as usize + ((value >> shift) - SUB_BUCKETS) as usize
    }

    /// Upper bound of bucket `index` (the quantile representative).
    fn bound(index: usize) -> u64 {
        let group = index as u64 / SUB_BUCKETS;
        let sub = index as u64 % SUB_BUCKETS;
        if group == 0 {
            return sub;
        }
        let shift = group - 1;
        let high = (u128::from(SUB_BUCKETS + sub + 1) << shift) - 1;
        u64::try_from(high).unwrap_or(u64::MAX)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` at once (used by the metrics
    /// export and by weighted replays).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Element-wise merge of `other` into `self`. Associative and
    /// commutative, so per-thread histograms can be folded in any order
    /// with identical results.
    pub fn merge(&mut self, other: &Self) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` (clamped to `[0, 1]`): the upper bound of
    /// the bucket holding the `ceil(q·count)`-th smallest sample, clamped
    /// to the recorded maximum. Overestimates the true sample by at most
    /// [`Self::RELATIVE_ERROR`]; returns 0 when empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Tail-CCDF points `(value, P(X > value))` on the standard quantile
    /// grid (p50 … p99.99), deduplicated on value. Fractions decrease
    /// monotonically; an empty histogram yields no points.
    #[must_use]
    pub fn ccdf_points(&self) -> Vec<CcdfPoint> {
        let mut points: Vec<CcdfPoint> = Vec::new();
        if self.is_empty() {
            return points;
        }
        for &q in &CCDF_QUANTILES {
            let value = self.value_at_quantile(q);
            let fraction = 1.0 - q;
            match points.last_mut() {
                Some(last) if last.latency_us == value => last.fraction = fraction,
                _ => points.push(CcdfPoint { latency_us: value, fraction }),
            }
        }
        points
    }

    /// Non-empty `(bucket upper bound, count)` pairs in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (Self::bound(idx), c))
    }
}

/// One point of a tail CCDF: the fraction of queries slower than
/// `latency_us`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcdfPoint {
    /// Latency threshold (µs).
    pub latency_us: u64,
    /// Fraction of samples strictly above the threshold's quantile.
    pub fraction: f64,
}

/// Per-job tail-latency tracker: a [`LatencyHistogram`] plus QoS-target
/// violation accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TailTracker {
    hist: LatencyHistogram,
    qos_target_us: Option<f64>,
    violations: u64,
}

impl TailTracker {
    /// A tracker for a job with the given QoS target (µs), or `None` for
    /// best-effort jobs.
    #[must_use]
    pub fn new(qos_target_us: Option<f64>) -> Self {
        Self { hist: LatencyHistogram::new(), qos_target_us, violations: 0 }
    }

    /// Records one query latency (µs, rounded to the histogram's integer
    /// domain) and counts it as a violation when it exceeds the QoS
    /// target.
    pub fn record(&mut self, latency_us: f64) {
        let value = latency_us.max(0.0).round() as u64;
        self.hist.record(value);
        if let Some(target) = self.qos_target_us {
            if latency_us > target {
                self.violations += 1;
            }
        }
    }

    /// Merges another tracker for the same job (same QoS target).
    pub fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.qos_target_us, other.qos_target_us, "merging different jobs");
        self.hist.merge(&other.hist);
        self.violations += other.violations;
    }

    /// The underlying histogram.
    #[must_use]
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Number of recorded queries.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Fraction of queries over the QoS target (0 for best-effort jobs
    /// or empty trackers).
    #[must_use]
    pub fn violation_fraction(&self) -> f64 {
        if self.hist.is_empty() {
            0.0
        } else {
            self.violations as f64 / self.hist.count() as f64
        }
    }

    /// The percentile/CCDF summary reported per job.
    #[must_use]
    pub fn summary(&self) -> TailSummary {
        TailSummary {
            count: self.hist.count(),
            p50_us: self.hist.value_at_quantile(0.50),
            p90_us: self.hist.value_at_quantile(0.90),
            p99_us: self.hist.value_at_quantile(0.99),
            p999_us: self.hist.value_at_quantile(0.999),
            mean_us: self.hist.mean(),
            max_us: self.hist.max(),
            qos_target_us: self.qos_target_us,
            violation_fraction: self.violation_fraction(),
            ccdf: self.hist.ccdf_points(),
        }
    }

    /// Exports the histogram into `metrics` as the
    /// `clite_query_latency_us{job=…}` family (bucket upper bounds as
    /// weighted observations), plus violation/query counters.
    pub fn export_into(&self, metrics: &MetricsRegistry, job: &str) {
        let labels = [("job", job)];
        for (bound, count) in self.hist.nonzero_buckets() {
            metrics.observe_n("clite_query_latency_us", &labels, bound as f64, count);
        }
        metrics.inc_counter("clite_queries_total", &labels, self.hist.count());
        metrics.inc_counter("clite_query_qos_violations_total", &labels, self.violations);
    }
}

/// Serializable per-job tail summary (the report-pipeline payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailSummary {
    /// Number of queries.
    pub count: u64,
    /// Median latency (µs).
    pub p50_us: u64,
    /// 90th-percentile latency (µs).
    pub p90_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th-percentile latency (µs).
    pub p999_us: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Largest observed latency (µs).
    pub max_us: u64,
    /// QoS target (µs), when the job has one.
    pub qos_target_us: Option<f64>,
    /// Fraction of queries over the QoS target.
    pub violation_fraction: f64,
    /// Tail CCDF points on the standard quantile grid.
    pub ccdf: Vec<CcdfPoint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32u64 {
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(h.value_at_quantile(q), v, "quantile {q}");
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover_u64() {
        let mut prev = None;
        for idx in 0..BUCKET_COUNT {
            let b = LatencyHistogram::bound(idx);
            if let Some(p) = prev {
                assert!(b > p, "bound({idx}) = {b} not above {p}");
            }
            prev = Some(b);
        }
        assert_eq!(LatencyHistogram::index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(LatencyHistogram::bound(BUCKET_COUNT - 1), u64::MAX);
        // Every value's bucket upper bound is >= the value and within the
        // relative-error budget.
        for v in [0u64, 1, 31, 32, 33, 1000, 12_345, 1 << 20, (1 << 40) + 7] {
            let b = LatencyHistogram::bound(LatencyHistogram::index(v));
            assert!(b >= v, "bound {b} below value {v}");
            assert!(
                (b - v) as f64 <= (v as f64) * LatencyHistogram::RELATIVE_ERROR,
                "value {v} bound {b} exceeds error budget"
            );
        }
    }

    #[test]
    fn quantiles_track_an_exponential_sample() {
        // Inverse-CDF sampling of an exponential with scale 1000 µs on a
        // uniform grid: the p99 must come out near scale · ln(100).
        let mut h = LatencyHistogram::new();
        let n = 100_000u64;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            h.record((-(1.0 - u).ln() * 1000.0).round() as u64);
        }
        let p99 = h.value_at_quantile(0.99) as f64;
        let exact = 1000.0 * 100f64.ln();
        assert!(
            (p99 - exact).abs() <= exact * (LatencyHistogram::RELATIVE_ERROR + 0.01),
            "p99 {p99} vs exact {exact}"
        );
        assert!(h.value_at_quantile(0.5) < h.value_at_quantile(0.999));
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut all = LatencyHistogram::new();
        let mut parts = vec![LatencyHistogram::new(), LatencyHistogram::new()];
        for v in [3u64, 77, 501, 12_000, 12_001, 9_999_999] {
            all.record(v);
            parts[(v % 2) as usize].record(v);
        }
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, all);
    }

    #[test]
    fn ccdf_is_monotone_decreasing() {
        let mut h = LatencyHistogram::new();
        for i in 0..10_000u64 {
            h.record(i * 3 + 7);
        }
        let points = h.ccdf_points();
        assert!(!points.is_empty());
        assert!(points.windows(2).all(|w| w[0].latency_us < w[1].latency_us));
        assert!(points.windows(2).all(|w| w[0].fraction > w[1].fraction));
    }

    #[test]
    fn tracker_counts_violations_and_summarizes() {
        let mut t = TailTracker::new(Some(500.0));
        for l in [100.0, 200.0, 450.0, 600.0, 9_000.0] {
            t.record(l);
        }
        assert_eq!(t.count(), 5);
        assert!((t.violation_fraction() - 0.4).abs() < 1e-12);
        let s = t.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.qos_target_us, Some(500.0));
        assert!(s.p50_us >= 200 && s.p50_us <= 460, "{}", s.p50_us);
        assert!(s.max_us >= 9_000);
        assert!(!s.ccdf.is_empty());
    }

    #[test]
    fn tracker_summary_round_trips_through_json() {
        let mut t = TailTracker::new(None);
        for l in [10.0, 20.0, 30.0] {
            t.record(l);
        }
        let s = t.summary();
        let text = serde_json::to_string(&s).unwrap();
        let back: TailSummary = serde_json::from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn export_feeds_the_metrics_registry() {
        let m = MetricsRegistry::new();
        let mut t = TailTracker::new(Some(100.0));
        for l in [50.0, 150.0, 150.0] {
            t.record(l);
        }
        t.export_into(&m, "memcached");
        assert_eq!(m.counter_value("clite_queries_total", &[("job", "memcached")]), Some(3));
        assert_eq!(
            m.counter_value("clite_query_qos_violations_total", &[("job", "memcached")]),
            Some(2)
        );
        let snap = m.histogram_snapshot("clite_query_latency_us", &[("job", "memcached")]).unwrap();
        assert_eq!(snap.count, 3);
        let text = m.to_prometheus();
        assert!(text.contains("clite_query_latency_us_count{job=\"memcached\"} 3"), "{text}");
    }
}
