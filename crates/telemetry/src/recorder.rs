//! Event sinks: the [`Recorder`] trait, the zero-cost [`NoopRecorder`],
//! the [`JsonlRecorder`] file sink, and the in-memory [`MemoryRecorder`]
//! used by tests.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;
use crate::metrics::MetricsRegistry;

/// A sink for structured telemetry events.
///
/// Implementations must never panic or otherwise fail the run: telemetry
/// is observational, so sinks swallow their own I/O errors (counting
/// drops where they can).
///
/// Recorders are `Send + Sync` so one sink can be shared by concurrent
/// admission searches (each worker thread wraps the shared recorder in
/// its own thread-local [`Telemetry`](crate::Telemetry) context); the
/// standard sinks already serialize internally through mutexes.
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);
}

/// The default sink: discards everything.
///
/// `record` is an empty inlinable body, so instrumented code paths cost
/// nothing beyond constructing the event argument.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn record(&self, _event: &Event) {}
}

/// Folds an event into the standard metric families (`clite_*`).
pub fn apply_event(metrics: &MetricsRegistry, event: &Event) {
    metrics.inc_counter("clite_events_total", &[("kind", event.kind())], 1);
    match event {
        Event::BootstrapSample { score, .. } => {
            metrics.observe("clite_score", &[], *score);
        }
        Event::DropoutFrozen { .. } => {
            metrics.inc_counter("clite_dropout_freezes_total", &[], 1);
        }
        Event::CandidateChosen { expected_improvement, .. } => {
            metrics.observe("clite_ei", &[], *expected_improvement);
        }
        Event::GpRefit { log_marginal, .. } => {
            metrics.inc_counter("clite_gp_refits_total", &[], 1);
            metrics.set_gauge("clite_gp_log_marginal", &[], *log_marginal);
        }
        Event::Terminated { samples, best_score, .. } => {
            metrics.inc_counter("clite_runs_total", &[], 1);
            metrics.set_gauge("clite_best_score", &[], *best_score);
            metrics.set_gauge("clite_samples_last_run", &[], *samples as f64);
        }
        Event::QosViolation { .. } => {
            metrics.inc_counter("clite_qos_violations_total", &[], 1);
        }
        Event::InfeasibleJob { .. } => {
            metrics.inc_counter("clite_infeasible_jobs_total", &[], 1);
        }
        Event::Placement { .. } => {
            metrics.inc_counter("clite_placements_total", &[], 1);
        }
        Event::Eviction { .. } => {
            metrics.inc_counter("clite_evictions_total", &[], 1);
        }
        Event::PhaseTiming { phase, nanos } => {
            metrics.observe("clite_phase_seconds", &[("phase", phase.name())], *nanos as f64 / 1e9);
        }
        Event::StoreAppend { score } => {
            metrics.inc_counter("clite_store_appends_total", &[], 1);
            metrics.observe("clite_store_score", &[], *score);
        }
        Event::StoreHit { entries, .. } => {
            metrics.inc_counter("clite_store_hits_total", &[], 1);
            metrics.observe("clite_store_hit_entries", &[], *entries as f64);
        }
        Event::StoreMiss { .. } => {
            metrics.inc_counter("clite_store_misses_total", &[], 1);
        }
        Event::WarmStarted { samples, .. } => {
            metrics.inc_counter("clite_warm_starts_total", &[], 1);
            metrics.set_gauge("clite_warm_start_samples", &[], *samples as f64);
        }
        Event::FaultInjected { fault, .. } => {
            metrics.inc_counter("clite_faults_total", &[("fault", fault)], 1);
        }
        Event::ObservationRetried { attempt, .. } => {
            metrics.inc_counter("clite_observation_retries_total", &[], 1);
            metrics.observe("clite_observation_retry_attempt", &[], *attempt as f64);
        }
        Event::SampleQuarantined { sigma, score, predicted, .. } => {
            metrics.inc_counter("clite_quarantined_samples_total", &[], 1);
            metrics.observe(
                "clite_quarantine_deviation_sigma",
                &[],
                (score - predicted).abs() / sigma.max(f64::EPSILON),
            );
        }
        Event::FallbackEngaged { qos_feasible, .. } => {
            metrics.inc_counter("clite_fallbacks_total", &[], 1);
            metrics.set_gauge(
                "clite_fallback_qos_feasible",
                &[],
                if *qos_feasible { 1.0 } else { 0.0 },
            );
        }
        Event::NodeEvicted { jobs, .. } => {
            metrics.inc_counter("clite_node_evictions_total", &[], 1);
            metrics.observe("clite_node_eviction_orphans", &[], *jobs as f64);
        }
        Event::StoreRecovered { records, dropped_bytes, undecodable } => {
            metrics.inc_counter("clite_store_recoveries_total", &[], 1);
            metrics.set_gauge("clite_store_recovered_records", &[], *records as f64);
            metrics.set_gauge("clite_store_dropped_bytes", &[], *dropped_bytes as f64);
            metrics.set_gauge("clite_store_undecodable_records", &[], *undecodable as f64);
        }
        Event::JobArrived { .. } => {
            metrics.inc_counter("clite_fleet_arrivals_total", &[], 1);
        }
        Event::JobDeparted { .. } => {
            metrics.inc_counter("clite_fleet_departures_total", &[], 1);
        }
        Event::LoadShift { load_pct, .. } => {
            metrics.inc_counter("clite_fleet_load_shifts_total", &[], 1);
            metrics.observe("clite_fleet_shifted_load_pct", &[], f64::from(*load_pct));
        }
        Event::NodeOnboarded { .. } => {
            metrics.inc_counter("clite_fleet_nodes_onboarded_total", &[], 1);
        }
        Event::PlacementScored { candidates, best_score, .. } => {
            metrics.inc_counter("clite_placements_scored_total", &[], 1);
            metrics.observe("clite_placement_candidates", &[], *candidates as f64);
            metrics.observe("clite_placement_best_score", &[], *best_score);
        }
        Event::ModelLoaded { feature_version, epochs, train_loss } => {
            metrics.inc_counter("clite_models_loaded_total", &[], 1);
            metrics.set_gauge("clite_model_feature_version", &[], f64::from(*feature_version));
            metrics.set_gauge("clite_model_epochs", &[], f64::from(*epochs));
            metrics.set_gauge("clite_model_train_loss", &[], *train_loss);
        }
        Event::TrainingEpoch { epoch, loss } => {
            metrics.inc_counter("clite_training_epochs_total", &[], 1);
            metrics.set_gauge("clite_training_epoch", &[], f64::from(*epoch));
            metrics.set_gauge("clite_training_loss", &[], *loss);
        }
        Event::JournalAppended { seqno, bytes } => {
            metrics.inc_counter("clite_fleet_journal_appends_total", &[], 1);
            metrics.set_gauge("clite_fleet_journal_seqno", &[], *seqno as f64);
            metrics.observe("clite_fleet_journal_record_bytes", &[], *bytes as f64);
        }
        Event::CheckpointWritten { seqno, bytes } => {
            metrics.inc_counter("clite_fleet_checkpoints_total", &[], 1);
            metrics.set_gauge("clite_fleet_checkpoint_seqno", &[], *seqno as f64);
            metrics.observe("clite_fleet_checkpoint_bytes", &[], *bytes as f64);
        }
        Event::RecoveryReplayed { checkpoint_seqno, replayed } => {
            metrics.inc_counter("clite_fleet_recoveries_total", &[], 1);
            metrics.set_gauge(
                "clite_fleet_recovery_checkpoint_seqno",
                &[],
                *checkpoint_seqno as f64,
            );
            metrics.set_gauge("clite_fleet_recovery_replayed", &[], *replayed as f64);
        }
        Event::RestartAttempted { attempt, backoff_ticks } => {
            metrics.inc_counter("clite_fleet_restarts_total", &[], 1);
            metrics.set_gauge("clite_fleet_restart_attempt", &[], f64::from(*attempt));
            metrics.observe("clite_fleet_restart_backoff_ticks", &[], *backoff_ticks as f64);
        }
        Event::ArrivalShed { backlog, .. } => {
            metrics.inc_counter("clite_fleet_shed_arrivals_total", &[], 1);
            metrics.set_gauge("clite_fleet_shed_backlog", &[], *backlog as f64);
        }
    }
}

/// Events buffered between the periodic flush points of a
/// [`JsonlRecorder`] (overridable via
/// [`with_flush_every`](JsonlRecorder::with_flush_every)).
const DEFAULT_FLUSH_EVERY: usize = 512;

/// The writer half of a [`JsonlRecorder`] plus its flush-point counter;
/// both live under one mutex so the pending count can never race the
/// writes it describes.
struct Sink {
    writer: Box<dyn Write + Send>,
    pending: usize,
}

/// A sink that appends one JSON document per event to a writer and keeps
/// the standard metric families up to date.
///
/// Hot-path discipline: each event is serialized to a single owned line
/// (newline included) and handed to the writer with one `write_all`
/// call, and the writer is only flushed at explicit flush points — every
/// 512 events (the default batch), on [`flush`](JsonlRecorder::flush),
/// and on drop. [`create`](JsonlRecorder::create) additionally wraps the
/// file in a [`BufWriter`] so even the per-line writes coalesce into
/// page-sized syscalls; `benches/recorder.rs` measures the difference.
pub struct JsonlRecorder {
    sink: Mutex<Sink>,
    flush_every: usize,
    metrics: MetricsRegistry,
}

impl JsonlRecorder {
    /// Creates (truncating) the JSONL file at `path`, buffered.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(BufWriter::new(file)))
    }

    /// Wraps an arbitrary writer (used by tests with `Vec<u8>` sinks).
    /// The caller chooses the buffering; `from_writer` adds none, so an
    /// unbuffered `File` here is the worst case the recorder bench
    /// compares [`create`](JsonlRecorder::create) against.
    pub fn from_writer(writer: impl Write + Send + 'static) -> Self {
        Self {
            sink: Mutex::new(Sink { writer: Box::new(writer), pending: 0 }),
            flush_every: DEFAULT_FLUSH_EVERY,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Overrides the flush interval: the writer is flushed after every
    /// `events` recorded events (clamped to at least 1). Smaller values
    /// tighten the crash-loss window at the cost of more syscalls.
    #[must_use]
    pub fn with_flush_every(mut self, events: usize) -> Self {
        self.flush_every = events.max(1);
        self
    }

    /// The metrics derived from every event recorded so far.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Flushes the underlying writer and resets the flush-point counter.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on failure.
    pub fn flush(&self) -> io::Result<()> {
        let mut sink = self.sink.lock().expect("jsonl writer lock");
        sink.pending = 0;
        sink.writer.flush()
    }
}

impl Drop for JsonlRecorder {
    /// Best-effort flush so buffered events reach disk even when callers
    /// forget to call [`JsonlRecorder::flush`]. Errors (including a
    /// poisoned writer lock) are swallowed: telemetry must never turn a
    /// clean exit into a panic.
    fn drop(&mut self) {
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.writer.flush();
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event) {
        apply_event(&self.metrics, event);
        let mut line = match serde_json::to_string(event) {
            Ok(line) => line,
            Err(_) => {
                self.metrics.inc_counter("clite_telemetry_dropped_total", &[], 1);
                return;
            }
        };
        line.push('\n');
        let mut sink = self.sink.lock().expect("jsonl writer lock");
        if sink.writer.write_all(line.as_bytes()).is_err() {
            self.metrics.inc_counter("clite_telemetry_dropped_total", &[], 1);
            return;
        }
        sink.pending += 1;
        if sink.pending >= self.flush_every {
            sink.pending = 0;
            if sink.writer.flush().is_err() {
                self.metrics.inc_counter("clite_telemetry_dropped_total", &[], 1);
            }
        }
    }
}

/// A sink that retains every event in memory; for tests and inspection.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty in-memory sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory recorder lock").clone()
    }

    /// Number of recorded events whose kind name is `kind`.
    #[must_use]
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events
            .lock()
            .expect("memory recorder lock")
            .iter()
            .filter(|e| e.kind() == kind)
            .count()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &Event) {
        self.events.lock().expect("memory recorder lock").push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StopReason;

    #[test]
    fn jsonl_recorder_writes_one_line_per_event_and_derives_metrics() {
        let recorder = JsonlRecorder::from_writer(SharedBuf::default());
        recorder.record(&Event::BootstrapSample { sample: 0, score: 0.3, qos_met: false });
        recorder.record(&Event::CandidateChosen { sample: 1, expected_improvement: 0.01 });
        recorder.record(&Event::Terminated {
            reason: StopReason::EiConverged,
            samples: 2,
            best_score: 0.6,
        });
        assert_eq!(
            recorder.metrics().counter_value("clite_events_total", &[("kind", "terminated")]),
            Some(1)
        );
        assert_eq!(recorder.metrics().gauge_value("clite_best_score", &[]), Some(0.6));
    }

    #[test]
    fn jsonl_lines_parse_back_into_events() {
        let buf = SharedBuf::default();
        let recorder = JsonlRecorder::from_writer(buf.clone());
        let sent = vec![
            Event::Placement { node: 0, job: "xapian".to_owned() },
            Event::Eviction { node: 0, job: "xapian".to_owned() },
        ];
        for e in &sent {
            recorder.record(e);
        }
        recorder.flush().unwrap();
        let text = buf.contents();
        let parsed: Vec<Event> = text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(parsed, sent);
    }

    #[test]
    fn jsonl_recorder_flushes_on_drop() {
        let dir = std::env::temp_dir().join(format!("clite-telemetry-drop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            // `create` wraps the file in a BufWriter, so without the Drop
            // flush these small events would still be sitting in the
            // buffer when the recorder goes out of scope.
            let recorder = JsonlRecorder::create(&path).unwrap();
            recorder.record(&Event::StoreHit { entries: 4, load_distance: 0.0, exact: true });
            recorder.record(&Event::WarmStarted { samples: 4, exact: true });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<Event> = text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(
            parsed,
            vec![
                Event::StoreHit { entries: 4, load_distance: 0.0, exact: true },
                Event::WarmStarted { samples: 4, exact: true },
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_points_fire_every_n_events() {
        // With a BufWriter between the recorder and the shared buffer,
        // lines only become visible when a flush point fires.
        let buf = SharedBuf::default();
        let recorder = JsonlRecorder::from_writer(BufWriter::new(buf.clone())).with_flush_every(3);
        recorder.record(&Event::InfeasibleJob { job: 0 });
        recorder.record(&Event::InfeasibleJob { job: 1 });
        assert_eq!(buf.contents().lines().count(), 0, "no flush point crossed yet");
        recorder.record(&Event::InfeasibleJob { job: 2 });
        assert_eq!(buf.contents().lines().count(), 3, "third event flushed the batch");
        recorder.record(&Event::InfeasibleJob { job: 3 });
        assert_eq!(buf.contents().lines().count(), 3, "next batch buffers again");
        recorder.flush().unwrap();
        assert_eq!(buf.contents().lines().count(), 4);
    }

    #[test]
    fn memory_recorder_counts_kinds() {
        let recorder = MemoryRecorder::new();
        recorder.record(&Event::InfeasibleJob { job: 3 });
        recorder.record(&Event::InfeasibleJob { job: 4 });
        assert_eq!(recorder.count_kind("infeasible_job"), 2);
        assert_eq!(recorder.events().len(), 2);
    }

    /// A clonable in-memory writer for asserting on JSONL output.
    #[derive(Debug, Default, Clone)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}
