//! The structured event vocabulary emitted by the controller, the BO
//! engine, the policies, and the cluster scheduler.

use serde::{Deserialize, Serialize};

use crate::profile::Phase;

/// Why a CLITE search run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Expected improvement fell below the termination threshold.
    EiConverged,
    /// The sampling budget was exhausted.
    BudgetExhausted,
    /// Every feasible job combination was ruled out.
    Infeasible,
}

/// One structured telemetry event.
///
/// Serialized externally tagged (`{"BootstrapSample": {...}}`), one event
/// per line in the JSONL sink. `sample` fields index into the run's
/// sample trace where applicable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A Phase-1 bootstrap configuration was evaluated.
    BootstrapSample {
        /// Index of the sample in the run trace.
        sample: usize,
        /// Eq. 3 score of the observation.
        score: f64,
        /// Whether every LC job met QoS under this partition.
        qos_met: bool,
    },
    /// The dropout policy froze one job's allocation for this iteration.
    DropoutFrozen {
        /// Index of the sample about to be proposed.
        sample: usize,
        /// Index of the frozen job.
        job: usize,
    },
    /// The acquisition maximizer chose the next candidate.
    CandidateChosen {
        /// Index of the sample in the run trace.
        sample: usize,
        /// Expected improvement of the chosen candidate.
        expected_improvement: f64,
    },
    /// GP hyper-parameters were refit over the hyper grid.
    GpRefit {
        /// Number of observations the surrogate was fit on.
        observations: usize,
        /// Selected kernel length-scale.
        lengthscale: f64,
        /// Selected signal variance.
        signal_variance: f64,
        /// Log marginal likelihood at the selected hypers.
        log_marginal: f64,
    },
    /// The run terminated.
    Terminated {
        /// Why the search stopped.
        reason: StopReason,
        /// Total samples evaluated.
        samples: usize,
        /// Best Eq. 3 score reached.
        best_score: f64,
    },
    /// An LC job missed its QoS target in an evaluated sample.
    QosViolation {
        /// Index of the sample in the run trace.
        sample: usize,
        /// Index of the violating job.
        job: usize,
        /// `target / latency` ratio (< 1 means violation).
        ratio: f64,
    },
    /// A job was ruled infeasible and ejected from the co-location.
    InfeasibleJob {
        /// Index of the ejected job.
        job: usize,
    },
    /// The cluster scheduler placed a job on a node.
    Placement {
        /// Node index in the cluster.
        node: usize,
        /// Workload name of the placed job.
        job: String,
    },
    /// The cluster scheduler evicted/removed a job from a node.
    Eviction {
        /// Node index in the cluster.
        node: usize,
        /// Workload name of the removed job.
        job: String,
    },
    /// A profiled search phase completed one timed section.
    PhaseTiming {
        /// Which phase was timed.
        phase: Phase,
        /// Elapsed wall-clock nanoseconds.
        nanos: u64,
    },
    /// An observation was appended to the persistent store.
    StoreAppend {
        /// Eq. 3 score of the stored observation.
        score: f64,
    },
    /// A warm-start lookup found reusable samples for the current mix.
    StoreHit {
        /// Number of warm entries returned.
        entries: usize,
        /// L∞ load distance between the stored and current load vectors.
        load_distance: f64,
        /// True if the stored load vector matches exactly.
        exact: bool,
    },
    /// A warm-start lookup found nothing reusable.
    StoreMiss {
        /// Number of distinct mixes currently indexed by the store.
        mixes: usize,
    },
    /// A search run was primed with stored samples before its first window.
    WarmStarted {
        /// Number of pre-recorded samples fed into the surrogate.
        samples: usize,
        /// True if the warm entries came from an exact load match.
        exact: bool,
    },
    /// The testbed faulted an observation window or an enforcement call.
    FaultInjected {
        /// Index of the sample being attempted when the fault hit.
        sample: usize,
        /// Stable fault-kind label (`window_dropped`, `window_timeout`,
        /// `enforce_fault`, `node_crashed`).
        fault: String,
    },
    /// The controller re-ran an observation after a transient fault or a
    /// flagged outlier.
    ObservationRetried {
        /// Index of the sample being re-observed.
        sample: usize,
        /// Retry attempt number (1-based).
        attempt: usize,
    },
    /// The outlier guard rejected an observation; it never enters the GP
    /// history or the store.
    SampleQuarantined {
        /// Index the sample would have had in the run trace.
        sample: usize,
        /// Eq. 3 score of the rejected observation.
        score: f64,
        /// Posterior mean the surrogate predicted for this partition.
        predicted: f64,
        /// Posterior standard deviation used by the guard.
        sigma: f64,
    },
    /// Retries exhausted: the controller re-enforced its safe fallback
    /// partition and degraded instead of continuing the search.
    FallbackEngaged {
        /// Index of the sample at which the search gave up.
        sample: usize,
        /// True if the fallback is a known QoS-feasible partition (else it
        /// is the equal-share bootstrap partition).
        qos_feasible: bool,
        /// True if re-enforcing the fallback succeeded on the node.
        enforced: bool,
    },
    /// The cluster scheduler evicted a crashed node and re-queued its jobs.
    NodeEvicted {
        /// Node index in the cluster.
        node: usize,
        /// Number of jobs orphaned by the eviction.
        jobs: usize,
    },
    /// The persistent store recovered from corruption while reopening a
    /// log file (torn tail truncated and/or undecodable records skipped).
    StoreRecovered {
        /// Records recovered (decoded and re-validated) from the log.
        records: usize,
        /// Bytes of torn tail dropped by truncation.
        dropped_bytes: u64,
        /// Checksummed frames that decoded to invalid records and were
        /// skipped.
        undecodable: usize,
    },
    /// The fleet service received a job arrival from the trace.
    JobArrived {
        /// Cluster-assigned job id.
        job: u64,
        /// Workload name of the arriving job.
        workload: String,
    },
    /// The fleet service processed a job departure.
    JobDeparted {
        /// Cluster-assigned job id.
        job: u64,
    },
    /// A committed job's offered load changed and its node re-partitioned.
    LoadShift {
        /// Cluster-assigned job id.
        job: u64,
        /// New load as a whole percentage of max QPS.
        load_pct: u32,
    },
    /// The fleet service brought a new node into service.
    NodeOnboarded {
        /// Node index in the cluster.
        node: usize,
    },
    /// The learned placement policy scored a candidate set for one job.
    PlacementScored {
        /// Workload name of the job being placed.
        job: String,
        /// Number of candidates scored.
        candidates: usize,
        /// Best model score among them.
        best_score: f64,
    },
    /// A ranking model was loaded for serving.
    ModelLoaded {
        /// Feature-schema version the model was trained against.
        feature_version: u32,
        /// Training epochs the weights went through.
        epochs: u32,
        /// Final mean pairwise training loss.
        train_loss: f64,
    },
    /// One training epoch over the rollout set completed.
    TrainingEpoch {
        /// Zero-based epoch index.
        epoch: u32,
        /// Mean pairwise loss over the epoch.
        loss: f64,
    },
    /// A fleet event was written to the write-ahead journal before being
    /// applied.
    JournalAppended {
        /// Commit sequence number the record carries.
        seqno: u64,
        /// Encoded payload size in bytes (seqno prefix included).
        bytes: u64,
    },
    /// A fleet checkpoint was atomically written.
    CheckpointWritten {
        /// Journal seqno the checkpoint covers (events `< seqno` are
        /// folded into it).
        seqno: u64,
        /// Checkpoint payload size in bytes.
        bytes: u64,
    },
    /// Recovery loaded a checkpoint (or started cold) and replayed the
    /// journal suffix.
    RecoveryReplayed {
        /// Seqno the loaded checkpoint covered (0 if none was usable).
        checkpoint_seqno: u64,
        /// Journaled events re-applied on top of it.
        replayed: u64,
    },
    /// The supervisor restarted the fleet loop after a failure.
    RestartAttempted {
        /// 1-based restart attempt number.
        attempt: u32,
        /// Deterministic backoff recorded before this attempt, in ticks.
        backoff_ticks: u64,
    },
    /// Overload protection rejected (shed) a low-priority arrival.
    ArrivalShed {
        /// Cluster-assigned job id the arrival consumed.
        job: u64,
        /// Same-tick backlog depth when the arrival was shed.
        backlog: u64,
    },
}

impl Event {
    /// Stable snake_case kind name, used as the `kind` metric label.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::BootstrapSample { .. } => "bootstrap_sample",
            Event::DropoutFrozen { .. } => "dropout_frozen",
            Event::CandidateChosen { .. } => "candidate_chosen",
            Event::GpRefit { .. } => "gp_refit",
            Event::Terminated { .. } => "terminated",
            Event::QosViolation { .. } => "qos_violation",
            Event::InfeasibleJob { .. } => "infeasible_job",
            Event::Placement { .. } => "placement",
            Event::Eviction { .. } => "eviction",
            Event::PhaseTiming { .. } => "phase_timing",
            Event::StoreAppend { .. } => "store_append",
            Event::StoreHit { .. } => "store_hit",
            Event::StoreMiss { .. } => "store_miss",
            Event::WarmStarted { .. } => "warm_started",
            Event::FaultInjected { .. } => "fault_injected",
            Event::ObservationRetried { .. } => "observation_retried",
            Event::SampleQuarantined { .. } => "sample_quarantined",
            Event::FallbackEngaged { .. } => "fallback_engaged",
            Event::NodeEvicted { .. } => "node_evicted",
            Event::StoreRecovered { .. } => "store_recovered",
            Event::JobArrived { .. } => "job_arrived",
            Event::JobDeparted { .. } => "job_departed",
            Event::LoadShift { .. } => "load_shift",
            Event::NodeOnboarded { .. } => "node_onboarded",
            Event::PlacementScored { .. } => "placement_scored",
            Event::ModelLoaded { .. } => "model_loaded",
            Event::TrainingEpoch { .. } => "training_epoch",
            Event::JournalAppended { .. } => "journal_appended",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::RecoveryReplayed { .. } => "recovery_replayed",
            Event::RestartAttempted { .. } => "restart_attempted",
            Event::ArrivalShed { .. } => "arrival_shed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::BootstrapSample { sample: 0, score: 0.41, qos_met: false },
            Event::DropoutFrozen { sample: 9, job: 2 },
            Event::CandidateChosen { sample: 9, expected_improvement: 1.5e-3 },
            Event::GpRefit {
                observations: 12,
                lengthscale: 0.25,
                signal_variance: 0.5,
                log_marginal: -3.75,
            },
            Event::Terminated { reason: StopReason::EiConverged, samples: 23, best_score: 0.81 },
            Event::QosViolation { sample: 3, job: 0, ratio: 0.87 },
            Event::InfeasibleJob { job: 1 },
            Event::Placement { node: 4, job: "memcached".to_owned() },
            Event::Eviction { node: 4, job: "memcached".to_owned() },
            Event::PhaseTiming { phase: Phase::GpFit, nanos: 420_000 },
            Event::StoreAppend { score: 0.73 },
            Event::StoreHit { entries: 6, load_distance: 0.05, exact: false },
            Event::StoreMiss { mixes: 3 },
            Event::WarmStarted { samples: 6, exact: true },
            Event::FaultInjected { sample: 7, fault: "window_dropped".to_owned() },
            Event::ObservationRetried { sample: 7, attempt: 2 },
            Event::SampleQuarantined { sample: 8, score: 0.12, predicted: 0.78, sigma: 0.04 },
            Event::FallbackEngaged { sample: 9, qos_feasible: true, enforced: true },
            Event::NodeEvicted { node: 2, jobs: 3 },
            Event::StoreRecovered { records: 17, dropped_bytes: 42, undecodable: 1 },
            Event::JobArrived { job: 11, workload: "xapian".to_owned() },
            Event::JobDeparted { job: 11 },
            Event::LoadShift { job: 11, load_pct: 45 },
            Event::NodeOnboarded { node: 9 },
            Event::PlacementScored { job: "memcached".to_owned(), candidates: 4, best_score: 0.62 },
            Event::ModelLoaded { feature_version: 1, epochs: 12, train_loss: 0.31 },
            Event::TrainingEpoch { epoch: 3, loss: 0.52 },
            Event::JournalAppended { seqno: 17, bytes: 64 },
            Event::CheckpointWritten { seqno: 16, bytes: 4096 },
            Event::RecoveryReplayed { checkpoint_seqno: 16, replayed: 2 },
            Event::RestartAttempted { attempt: 2, backoff_ticks: 3 },
            Event::ArrivalShed { job: 23, backlog: 5 },
        ];
        for event in events {
            let line = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(event, back, "round-trip failed for {line}");
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Event::InfeasibleJob { job: 0 }.kind(), "infeasible_job");
        assert_eq!(
            Event::Terminated { reason: StopReason::BudgetExhausted, samples: 1, best_score: 0.0 }
                .kind(),
            "terminated"
        );
    }
}
