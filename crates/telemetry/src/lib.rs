//! Observability for the CLITE reproduction: a structured event bus, a
//! metrics registry, and span-style search-phase profiling.

pub mod context;
pub mod event;
pub mod latency;
pub mod metrics;
pub mod profile;
pub mod recorder;

pub use context::Telemetry;
pub use event::{Event, StopReason};
pub use latency::{CcdfPoint, LatencyHistogram, TailSummary, TailTracker};
pub use metrics::MetricsRegistry;
pub use profile::{OverheadReport, Phase, PhaseCost, PhaseTimer};
pub use recorder::{JsonlRecorder, MemoryRecorder, NoopRecorder, Recorder};
