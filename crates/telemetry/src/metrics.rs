//! A small metrics registry: counters, gauges, and log-bucketed
//! histograms, exportable as Prometheus text exposition or JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use serde_json::Value;

/// Histogram bucket upper bounds: powers of two from 2⁻³⁰ (~1 ns when
/// observing seconds) to 2³⁰, every third power. Log-spaced buckets keep
/// resolution proportional to magnitude across the nine decades the
/// search telemetry spans (EI values, phase durations, scores).
fn bucket_bounds() -> impl Iterator<Item = f64> {
    (-30i32..=30).step_by(3).map(|k| 2f64.powi(k))
}

const BUCKETS: usize = 21;

/// A log-bucketed histogram with cumulative export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; parallel to the log-spaced
    /// bucket bounds (powers of two from 2^-30 to 2^30, step 2^3),
    /// with one extra overflow bucket at the end.
    pub counts: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

#[derive(Debug, Clone, Default)]
struct Histogram {
    counts: [u64; BUCKETS + 1],
    count: u64,
    sum: f64,
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        self.observe_n(value, 1);
    }

    fn observe_n(&mut self, value: f64, n: u64) {
        let idx = bucket_bounds().position(|bound| value <= bound).unwrap_or(BUCKETS);
        self.counts[idx] += n;
        self.count += n;
        self.sum += value * n as f64;
    }
}

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
        labels.sort();
        Self { name: name.to_owned(), labels }
    }

    /// Renders `name{k="v",…}` (or bare `name` without labels) with an
    /// optional suffix spliced onto the name (`_bucket`, `_sum`, …).
    fn render(&self, suffix: &str, extra_label: Option<(&str, &str)>) -> String {
        let mut out = format!("{}{}", self.name, suffix);
        let mut pairs: Vec<(String, String)> = self.labels.clone();
        if let Some((k, v)) = extra_label {
            pairs.push((k.to_owned(), v.to_owned()));
        }
        if !pairs.is_empty() {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{v}\"");
            }
            out.push('}');
        }
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// Thread-safe registry of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.counters.entry(Key::new(name, labels)).or_insert(0) += delta;
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.gauges.insert(Key::new(name, labels), value);
    }

    /// Records one observation into a log-bucketed histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.histograms.entry(Key::new(name, labels)).or_default().observe(value);
    }

    /// Records `n` observations of `value` at once — the bulk path used
    /// when folding a pre-aggregated [`LatencyHistogram`](crate::LatencyHistogram)
    /// bucket into a registry family.
    pub fn observe_n(&self, name: &str, labels: &[(&str, &str)], value: f64, n: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.histograms.entry(Key::new(name, labels)).or_default().observe_n(value, n);
    }

    /// Current value of a counter, if it exists.
    #[must_use]
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let inner = self.inner.lock().expect("metrics lock");
        inner.counters.get(&Key::new(name, labels)).copied()
    }

    /// Current value of a gauge, if it exists.
    #[must_use]
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.lock().expect("metrics lock");
        inner.gauges.get(&Key::new(name, labels)).copied()
    }

    /// Snapshot of a histogram, if it exists.
    #[must_use]
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let inner = self.inner.lock().expect("metrics lock");
        inner.histograms.get(&Key::new(name, labels)).map(|h| HistogramSnapshot {
            counts: h.counts.to_vec(),
            count: h.count,
            sum: h.sum,
        })
    }

    /// Renders the registry in Prometheus text exposition format:
    /// `# TYPE` headers, cumulative `_bucket{le=…}` series, and `_sum` /
    /// `_count` per histogram.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics lock");
        let mut out = String::new();

        let mut last_type_header = String::new();
        let mut type_header = |out: &mut String, name: &str, kind: &str| {
            let header = format!("# TYPE {name} {kind}\n");
            if header != last_type_header {
                out.push_str(&header);
                last_type_header = header;
            }
        };

        for (key, value) in &inner.counters {
            type_header(&mut out, &key.name, "counter");
            let _ = writeln!(out, "{} {}", key.render("", None), value);
        }
        for (key, value) in &inner.gauges {
            type_header(&mut out, &key.name, "gauge");
            let _ = writeln!(out, "{} {}", key.render("", None), value);
        }
        for (key, hist) in &inner.histograms {
            type_header(&mut out, &key.name, "histogram");
            let mut cumulative = 0u64;
            for (bound, count) in bucket_bounds().zip(hist.counts.iter()) {
                cumulative += count;
                let le = format!("{bound:e}");
                let _ =
                    writeln!(out, "{} {}", key.render("_bucket", Some(("le", &le))), cumulative);
            }
            let _ = writeln!(out, "{} {}", key.render("_bucket", Some(("le", "+Inf"))), hist.count);
            let _ = writeln!(out, "{} {}", key.render("_sum", None), hist.sum);
            let _ = writeln!(out, "{} {}", key.render("_count", None), hist.count);
        }
        out
    }

    /// Renders the registry as a JSON object with `counters`, `gauges`,
    /// and `histograms` sections keyed by rendered metric identity.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let inner = self.inner.lock().expect("metrics lock");
        let counters = Value::Object(
            inner
                .counters
                .iter()
                .map(|(k, v)| (k.render("", None), serde_json::to_value(v).expect("u64")))
                .collect(),
        );
        let gauges = Value::Object(
            inner
                .gauges
                .iter()
                .map(|(k, v)| (k.render("", None), serde_json::to_value(v).expect("f64")))
                .collect(),
        );
        let histograms = Value::Object(
            inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    let body = Value::Object(vec![
                        ("count".to_owned(), serde_json::to_value(&h.count).expect("u64")),
                        ("sum".to_owned(), serde_json::to_value(&h.sum).expect("f64")),
                        (
                            "buckets".to_owned(),
                            serde_json::to_value(&h.counts.to_vec()).expect("counts"),
                        ),
                    ]);
                    (k.render("", None), body)
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".to_owned(), counters),
            ("gauges".to_owned(), gauges),
            ("histograms".to_owned(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.inc_counter("clite_events_total", &[("kind", "placement")], 1);
        m.inc_counter("clite_events_total", &[("kind", "placement")], 2);
        m.inc_counter("clite_events_total", &[("kind", "eviction")], 5);
        assert_eq!(m.counter_value("clite_events_total", &[("kind", "placement")]), Some(3));
        assert_eq!(m.counter_value("clite_events_total", &[("kind", "eviction")]), Some(5));
        assert_eq!(m.counter_value("clite_events_total", &[]), None);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("clite_best_score", &[], 0.4);
        m.set_gauge("clite_best_score", &[], 0.9);
        assert_eq!(m.gauge_value("clite_best_score", &[]), Some(0.9));
    }

    #[test]
    fn histogram_buckets_are_log_spaced_and_cumulative() {
        let m = MetricsRegistry::new();
        // One tiny, one mid, one huge observation.
        m.observe("clite_ei", &[], 1e-8);
        m.observe("clite_ei", &[], 0.5);
        m.observe("clite_ei", &[], 1e12);
        let snap = m.histogram_snapshot("clite_ei", &[]).unwrap();
        assert_eq!(snap.count, 3);
        assert!((snap.sum - (1e-8 + 0.5 + 1e12)).abs() < 1.0);
        // The overflow bucket holds exactly the out-of-range observation.
        assert_eq!(*snap.counts.last().unwrap(), 1);
        assert_eq!(snap.counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = MetricsRegistry::new();
        m.inc_counter("clite_events_total", &[("kind", "gp_refit")], 4);
        m.set_gauge("clite_best_score", &[], 0.75);
        m.observe("clite_phase_seconds", &[("phase", "gp_fit")], 0.002);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE clite_events_total counter\n"), "{text}");
        assert!(text.contains("clite_events_total{kind=\"gp_refit\"} 4\n"), "{text}");
        assert!(text.contains("# TYPE clite_best_score gauge\n"), "{text}");
        assert!(text.contains("clite_best_score 0.75\n"), "{text}");
        assert!(text.contains("# TYPE clite_phase_seconds histogram\n"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("clite_phase_seconds_count{phase=\"gp_fit\"} 1\n"), "{text}");
        // Bucket series are cumulative: every later bucket ≥ earlier.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("clite_phase_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn json_export_mirrors_registry() {
        let m = MetricsRegistry::new();
        m.inc_counter("a_total", &[], 2);
        m.set_gauge("b", &[("x", "y")], 1.5);
        m.observe("h", &[], 0.25);
        let json = m.to_json();
        assert_eq!(json.get("counters").unwrap().get("a_total").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("gauges").unwrap().get("b{x=\"y\"}").unwrap().as_f64(), Some(1.5));
        let hist = json.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
    }
}
