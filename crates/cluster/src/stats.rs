//! Fleet-level accounting.

use serde::Serialize;

use clite_sim::testbed::TestbedFactory;
use clite_sim::workload::JobClass;

use crate::node::Node;

/// Per-node snapshot inside a [`ClusterStats`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NodeStats {
    /// Node id.
    pub node: usize,
    /// Jobs committed to this node.
    pub jobs: usize,
    /// Latency-critical jobs among them.
    pub lc_jobs: usize,
    /// Sum of committed LC load fractions.
    pub lc_load: f64,
    /// Mean BG throughput (isolation-relative) at the committed partition
    /// (`None` for empty nodes or nodes without BG jobs).
    pub bg_perf: Option<f64>,
    /// Whether the committed partition meets every QoS target.
    pub qos_met: bool,
    /// Observation windows spent partitioning so far.
    pub samples_spent: u64,
    /// Whether the node is still in service (crashed nodes are evicted
    /// and stay dead).
    pub alive: bool,
}

/// Aggregate fleet statistics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterStats {
    /// Per-node snapshots in id order.
    pub nodes: Vec<NodeStats>,
    /// Jobs placed across the fleet.
    pub placed: usize,
    /// Jobs rejected by admission control.
    pub rejected: u64,
    /// Live nodes hosting no jobs (whole machines freed — the
    /// consolidation win the paper's introduction motivates). Dead nodes
    /// are not counted: an evicted machine is not a freed one.
    pub empty_nodes: usize,
    /// Nodes evicted after crashing mid-search.
    pub dead_nodes: usize,
}

impl NodeStats {
    /// Snapshots one node's current committed state.
    #[must_use]
    pub fn capture<F: TestbedFactory>(n: &Node<F>) -> Self {
        let best = n.last_outcome().map(|o| {
            o.samples
                .iter()
                .max_by(|a, b| a.score.value.total_cmp(&b.score.value))
                .expect("outcomes have samples")
        });
        NodeStats {
            node: n.id(),
            jobs: n.job_count(),
            lc_jobs: n
                .jobs()
                .iter()
                .filter(|j| j.spec.class() == JobClass::LatencyCritical)
                .count(),
            lc_load: n.committed_lc_load(),
            bg_perf: best.and_then(|s| s.observation.mean_bg_perf()),
            qos_met: n.last_outcome().is_none_or(|o| o.qos_met()),
            samples_spent: n.samples_spent(),
            alive: n.alive(),
        }
    }

    fn is_empty_live(&self) -> bool {
        self.alive && self.jobs == 0
    }
}

impl ClusterStats {
    /// Collects statistics from the fleet by visiting every node.
    ///
    /// This is the from-scratch reference. The scheduler maintains the
    /// same value *incrementally* — one [`ClusterStats::refresh_node`]
    /// per touched node — so `stats()` stays O(1) per event instead of
    /// O(fleet); `incremental_stats_match_collect` in the scheduler tests
    /// pins the two to byte equality.
    #[must_use]
    pub fn collect<F: TestbedFactory>(nodes: &[Node<F>], rejected: u64) -> Self {
        let node_stats: Vec<NodeStats> = nodes.iter().map(NodeStats::capture).collect();
        Self {
            placed: node_stats.iter().map(|n| n.jobs).sum(),
            empty_nodes: node_stats.iter().filter(|n| n.is_empty_live()).count(),
            dead_nodes: node_stats.iter().filter(|n| !n.alive).count(),
            nodes: node_stats,
            rejected,
        }
    }

    /// Appends a snapshot for a newly onboarded node (ids must arrive in
    /// order: node `k` is entry `k`).
    pub fn add_node<F: TestbedFactory>(&mut self, node: &Node<F>) {
        debug_assert_eq!(node.id(), self.nodes.len(), "nodes onboard in id order");
        let stats = NodeStats::capture(node);
        self.placed += stats.jobs;
        if stats.is_empty_live() {
            self.empty_nodes += 1;
        }
        if !stats.alive {
            self.dead_nodes += 1;
        }
        self.nodes.push(stats);
    }

    /// Re-snapshots one node after a commit, eviction, load change, or
    /// charged probe, adjusting the aggregates by the delta. O(1) in the
    /// fleet size.
    pub fn refresh_node<F: TestbedFactory>(&mut self, node: &Node<F>) {
        let new = NodeStats::capture(node);
        let slot =
            self.nodes.get_mut(node.id()).expect("refreshed node was onboarded before its events");
        debug_assert_eq!(slot.node, new.node, "node ids index the stats vector");
        let old = std::mem::replace(slot, new);
        let new = &self.nodes[node.id()];
        self.placed = self.placed - old.jobs + new.jobs;
        match (old.is_empty_live(), new.is_empty_live()) {
            (false, true) => self.empty_nodes += 1,
            (true, false) => self.empty_nodes -= 1,
            _ => {}
        }
        match (old.alive, new.alive) {
            (true, false) => self.dead_nodes += 1,
            (false, true) => self.dead_nodes -= 1,
            _ => {}
        }
    }

    /// Fraction of submitted jobs that were placed.
    #[must_use]
    pub fn admission_rate(&self) -> f64 {
        let submitted = self.placed as u64 + self.rejected;
        if submitted == 0 {
            1.0
        } else {
            self.placed as f64 / submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::placement::PlacementPolicy;
    use crate::scheduler::{ClusterScheduler, SchedulerConfig};
    use clite_sim::prelude::*;

    #[test]
    fn stats_reflect_fleet_state() {
        let mut c = ClusterScheduler::new(
            3,
            SchedulerConfig { placement: PlacementPolicy::MostLoaded, ..Default::default() },
            5,
        )
        .unwrap();
        c.submit(JobSpec::latency_critical(WorkloadId::Memcached, 0.3)).unwrap();
        c.submit(JobSpec::background(WorkloadId::Swaptions)).unwrap();
        let stats = c.stats();
        assert_eq!(stats.placed, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.empty_nodes, 2, "bin-packing keeps two machines free");
        assert!((stats.admission_rate() - 1.0).abs() < 1e-12);
        let busy = &stats.nodes[0];
        assert_eq!(busy.jobs, 2);
        assert_eq!(busy.lc_jobs, 1);
        assert!(busy.qos_met);
        assert!(busy.bg_perf.is_some());
        assert!(busy.samples_spent > 0);
    }
}
