//! The fleet's deterministic clock.
//!
//! The event loop is discrete-time: every trace event carries a tick, the
//! clock only moves when an event is handled, and nothing in the service
//! reads wall-clock time. Two runs of the same trace therefore see the
//! same clock at every decision point — the precondition for the
//! serial≡threaded and shard-count-invariance guarantees.

/// Monotonic discrete simulation time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    now: u64,
}

impl SimClock {
    /// A clock at tick 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances to `tick`. Time never moves backwards: an out-of-order
    /// event is handled at the current tick instead (traces are expected
    /// to be sorted; this keeps a malformed trace deterministic rather
    /// than panicking mid-fleet).
    pub fn advance_to(&mut self, tick: u64) {
        self.now = self.now.max(tick);
    }

    /// Which epoch the clock is in for `epoch_ticks`-long epochs
    /// (`0` for a zero length: epochs disabled).
    #[must_use]
    pub fn epoch(&self, epoch_ticks: u64) -> u64 {
        self.now.checked_div(epoch_ticks).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance_to(5);
        c.advance_to(3);
        assert_eq!(c.now(), 5, "time never rewinds");
        c.advance_to(9);
        assert_eq!(c.now(), 9);
    }

    #[test]
    fn epochs_partition_time() {
        let mut c = SimClock::new();
        assert_eq!(c.epoch(4), 0);
        c.advance_to(3);
        assert_eq!(c.epoch(4), 0);
        c.advance_to(4);
        assert_eq!(c.epoch(4), 1);
        c.advance_to(11);
        assert_eq!(c.epoch(4), 2);
        assert_eq!(c.epoch(0), 0, "zero-length epochs are disabled");
    }
}
