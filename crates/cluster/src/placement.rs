//! Node-ordering policies for admission.

use std::sync::Arc;

use serde::json::Value;
use serde::Serialize;

use clite_learn::RankingModel;
use clite_sim::prelude::JobSpec;
use clite_sim::testbed::TestbedFactory;

use crate::learned;
use crate::node::Node;
use crate::stats::ClusterStats;

/// In which order candidate nodes are tried for a new job.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PlacementPolicy {
    /// Nodes in id order; the first feasible node wins. Minimizes search
    /// work, tends to pack low-id nodes.
    FirstFit,
    /// Least committed LC load first: spreads latency-critical pressure
    /// evenly across the fleet, maximizing per-node headroom.
    #[default]
    LeastLoaded,
    /// Most committed LC load (that still has physical capacity) first:
    /// bin-packing — consolidates jobs onto few nodes, freeing whole
    /// machines, which is the utilization win the paper's introduction
    /// argues for.
    MostLoaded,
    /// Mean-field template: steer every node toward one fleet-wide target
    /// LC load (in whole percent). Under-target nodes are tried first,
    /// largest deficit leading; at/over-target nodes follow, least
    /// overloaded leading. The fleet service re-solves the target once per
    /// epoch from aggregate stats — "solve once, apply per-node" — so
    /// per-event placement stays O(fleet log fleet) with no global search.
    TargetLoad {
        /// Per-node target LC load, percent of max QPS (`55` = 0.55).
        target_pct: u32,
    },
    /// Trained ranking: score every candidate with a `clite-learn` model
    /// over (job, node, fleet) features and try the best-scoring node
    /// first. The all-zero model ties every score, and the tie-break
    /// (least committed LC load, then node id) reproduces the
    /// [`LeastLoaded`](PlacementPolicy::LeastLoaded) heuristic exactly —
    /// so a missing or corrupt model file degrades, never fails.
    Learned {
        /// The trained model; shared so cloning the policy (and the
        /// scheduler config holding it) stays cheap.
        model: Arc<RankingModel>,
    },
}

/// A resolved candidate ordering plus the learned scorer's summary (for
/// the `placement_scored` telemetry event) when a model produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateOrder {
    /// Candidate node ids, best first.
    pub order: Vec<usize>,
    /// `(candidates scored, best model score)` — `None` for heuristics.
    pub scored: Option<(usize, f64)>,
}

impl PlacementPolicy {
    /// Short name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::MostLoaded => "most-loaded",
            PlacementPolicy::TargetLoad { .. } => "target-load",
            PlacementPolicy::Learned { .. } => "learned",
        }
    }

    /// Candidate node ids in try-order, excluding nodes without physical
    /// capacity for one more job. Heuristic policies ignore `job` and
    /// `stats`; [`Learned`](PlacementPolicy::Learned) feeds both into its
    /// feature vectors.
    #[must_use]
    pub fn candidate_order<F: TestbedFactory>(
        &self,
        nodes: &[Node<F>],
        job: &JobSpec,
        stats: &ClusterStats,
    ) -> CandidateOrder {
        let mut ids: Vec<usize> =
            nodes.iter().filter(|n| n.has_capacity_for_one_more()).map(|n| n.id()).collect();
        let mut scored = None;
        match self {
            PlacementPolicy::FirstFit => {}
            PlacementPolicy::LeastLoaded => {
                ids.sort_by(|&a, &b| {
                    nodes[a].committed_lc_load().total_cmp(&nodes[b].committed_lc_load())
                });
            }
            PlacementPolicy::MostLoaded => {
                ids.sort_by(|&a, &b| {
                    nodes[b].committed_lc_load().total_cmp(&nodes[a].committed_lc_load())
                });
            }
            PlacementPolicy::TargetLoad { target_pct } => {
                let target = f64::from(*target_pct) / 100.0;
                // Stable sort, so equal-load nodes keep id order.
                ids.sort_by(|&a, &b| {
                    let (la, lb) = (nodes[a].committed_lc_load(), nodes[b].committed_lc_load());
                    (la >= target).cmp(&(lb >= target)).then_with(|| la.total_cmp(&lb))
                });
            }
            PlacementPolicy::Learned { model } => {
                let ranked = learned::rank(model, job, nodes, &ids, stats);
                if let Some(&(_, best)) = ranked.first() {
                    scored = Some((ranked.len(), best));
                }
                ids = ranked.into_iter().map(|(id, _)| id).collect();
            }
        }
        CandidateOrder { order: ids, scored }
    }
}

// Manual impl (the derive needs every payload field to be `Serialize`,
// which `Arc<RankingModel>` is not): unit variants keep the derived
// `"Variant"` shape, payload variants the `{"Variant": {..}}` shape, and
// `Learned` serializes its model summary rather than the weights.
impl Serialize for PlacementPolicy {
    fn to_json_value(&self) -> Value {
        match self {
            PlacementPolicy::FirstFit => Value::String("FirstFit".to_owned()),
            PlacementPolicy::LeastLoaded => Value::String("LeastLoaded".to_owned()),
            PlacementPolicy::MostLoaded => Value::String("MostLoaded".to_owned()),
            PlacementPolicy::TargetLoad { target_pct } => Value::Object(vec![(
                "TargetLoad".to_owned(),
                Value::Object(vec![("target_pct".to_owned(), target_pct.to_json_value())]),
            )]),
            PlacementPolicy::Learned { model } => Value::Object(vec![(
                "Learned".to_owned(),
                Value::Object(vec![
                    ("feature_version".to_owned(), model.feature_version.to_json_value()),
                    ("epochs".to_owned(), model.epochs.to_json_value()),
                    ("train_loss".to_owned(), model.train_loss.to_json_value()),
                ]),
            )]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite::config::CliteConfig;
    use clite_sim::prelude::*;

    use crate::node::PlacedJob;

    fn fleet() -> Vec<Node> {
        let mut nodes: Vec<Node> =
            (0..3).map(|i| Node::new(i, ResourceCatalog::testbed(), i as u64)).collect();
        // Put one 40% job on node 1, two on node 2.
        let cfg = CliteConfig::default();
        nodes[1]
            .try_admit(
                PlacedJob { id: 1, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.4) },
                &cfg,
            )
            .unwrap();
        nodes[2]
            .try_admit(
                PlacedJob { id: 2, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.4) },
                &cfg,
            )
            .unwrap();
        nodes[2]
            .try_admit(
                PlacedJob { id: 3, spec: JobSpec::latency_critical(WorkloadId::Xapian, 0.4) },
                &cfg,
            )
            .unwrap();
        nodes
    }

    fn order<F: TestbedFactory>(policy: &PlacementPolicy, nodes: &[Node<F>]) -> Vec<usize> {
        let stats = ClusterStats::collect(nodes, 0);
        let job = JobSpec::latency_critical(WorkloadId::Memcached, 0.3);
        policy.candidate_order(nodes, &job, &stats).order
    }

    #[test]
    fn orderings_differ_as_documented() {
        let nodes = fleet();
        assert_eq!(order(&PlacementPolicy::FirstFit, &nodes), vec![0, 1, 2]);
        assert_eq!(order(&PlacementPolicy::LeastLoaded, &nodes), vec![0, 1, 2]);
        assert_eq!(order(&PlacementPolicy::MostLoaded, &nodes), vec![2, 1, 0]);
    }

    #[test]
    fn full_nodes_are_excluded() {
        // A node hosting 10 jobs (cores exhausted) cannot take an 11th.
        let mut nodes = vec![Node::new(0, ResourceCatalog::testbed(), 0)];
        let cfg = CliteConfig::default();
        for i in 0..10 {
            let admitted = nodes[0]
                .try_admit(
                    PlacedJob { id: i, spec: JobSpec::background(WorkloadId::Swaptions) },
                    &cfg,
                )
                .unwrap();
            assert!(admitted, "BG jobs are always feasible");
        }
        assert!(order(&PlacementPolicy::FirstFit, &nodes).is_empty());
    }

    #[test]
    fn zero_model_matches_least_loaded() {
        // The graceful-degradation regression: a Learned policy holding
        // the all-zero model must reproduce the heuristic fallback order
        // exactly (every score ties; the tie-break is least-loaded).
        let nodes = fleet();
        let learned =
            PlacementPolicy::Learned { model: Arc::new(clite_learn::RankingModel::zeroed()) };
        let stats = ClusterStats::collect(&nodes, 0);
        for spec in [
            JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
            JobSpec::latency_critical(WorkloadId::ImgDnn, 0.7),
            JobSpec::background(WorkloadId::Swaptions),
        ] {
            let fallback = learned.candidate_order(&nodes, &spec, &stats);
            let heuristic = PlacementPolicy::LeastLoaded.candidate_order(&nodes, &spec, &stats);
            assert_eq!(fallback.order, heuristic.order, "zero model must degrade to heuristic");
            let (count, best) = fallback.scored.expect("learned policies report scores");
            assert_eq!(count, 3);
            assert_eq!(best, 0.0, "the zero model scores everything zero");
        }
    }

    #[test]
    fn trained_weights_can_reorder_candidates() {
        // A model that rewards committed LC load (feature 3) must invert
        // the least-loaded preference — i.e. the weights actually steer
        // the order.
        let nodes = fleet();
        let mut model = clite_learn::RankingModel::zeroed();
        model.weights[3] = 1.0;
        let policy = PlacementPolicy::Learned { model: Arc::new(model) };
        let stats = ClusterStats::collect(&nodes, 0);
        let job = JobSpec::latency_critical(WorkloadId::Memcached, 0.3);
        assert_eq!(policy.candidate_order(&nodes, &job, &stats).order, vec![2, 1, 0]);
    }

    #[test]
    fn policies_serialize_stably() {
        use serde_json::to_string;
        assert_eq!(to_string(&PlacementPolicy::LeastLoaded).unwrap(), "\"LeastLoaded\"");
        assert_eq!(
            to_string(&PlacementPolicy::TargetLoad { target_pct: 55 }).unwrap(),
            "{\"TargetLoad\":{\"target_pct\":55}}"
        );
        let learned =
            PlacementPolicy::Learned { model: Arc::new(clite_learn::RankingModel::zeroed()) };
        let json = to_string(&learned).unwrap();
        assert!(json.contains("\"Learned\""), "payload shape: {json}");
        assert!(json.contains("\"feature_version\""), "payload shape: {json}");
    }
}
