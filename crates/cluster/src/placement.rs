//! Node-ordering policies for admission.

use serde::Serialize;

use clite_sim::testbed::TestbedFactory;

use crate::node::Node;

/// In which order candidate nodes are tried for a new job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub enum PlacementPolicy {
    /// Nodes in id order; the first feasible node wins. Minimizes search
    /// work, tends to pack low-id nodes.
    FirstFit,
    /// Least committed LC load first: spreads latency-critical pressure
    /// evenly across the fleet, maximizing per-node headroom.
    #[default]
    LeastLoaded,
    /// Most committed LC load (that still has physical capacity) first:
    /// bin-packing — consolidates jobs onto few nodes, freeing whole
    /// machines, which is the utilization win the paper's introduction
    /// argues for.
    MostLoaded,
    /// Mean-field template: steer every node toward one fleet-wide target
    /// LC load (in whole percent). Under-target nodes are tried first,
    /// largest deficit leading; at/over-target nodes follow, least
    /// overloaded leading. The fleet service re-solves the target once per
    /// epoch from aggregate stats — "solve once, apply per-node" — so
    /// per-event placement stays O(fleet log fleet) with no global search.
    TargetLoad {
        /// Per-node target LC load, percent of max QPS (`55` = 0.55).
        target_pct: u32,
    },
}

impl PlacementPolicy {
    /// Short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::MostLoaded => "most-loaded",
            PlacementPolicy::TargetLoad { .. } => "target-load",
        }
    }

    /// Candidate node ids in try-order, excluding nodes without physical
    /// capacity for one more job.
    #[must_use]
    pub fn candidate_order<F: TestbedFactory>(self, nodes: &[Node<F>]) -> Vec<usize> {
        let mut ids: Vec<usize> =
            nodes.iter().filter(|n| n.has_capacity_for_one_more()).map(|n| n.id()).collect();
        match self {
            PlacementPolicy::FirstFit => {}
            PlacementPolicy::LeastLoaded => {
                ids.sort_by(|&a, &b| {
                    nodes[a].committed_lc_load().total_cmp(&nodes[b].committed_lc_load())
                });
            }
            PlacementPolicy::MostLoaded => {
                ids.sort_by(|&a, &b| {
                    nodes[b].committed_lc_load().total_cmp(&nodes[a].committed_lc_load())
                });
            }
            PlacementPolicy::TargetLoad { target_pct } => {
                let target = f64::from(target_pct) / 100.0;
                // Stable sort, so equal-load nodes keep id order.
                ids.sort_by(|&a, &b| {
                    let (la, lb) = (nodes[a].committed_lc_load(), nodes[b].committed_lc_load());
                    (la >= target).cmp(&(lb >= target)).then_with(|| la.total_cmp(&lb))
                });
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite::config::CliteConfig;
    use clite_sim::prelude::*;

    use crate::node::PlacedJob;

    fn fleet() -> Vec<Node> {
        let mut nodes: Vec<Node> =
            (0..3).map(|i| Node::new(i, ResourceCatalog::testbed(), i as u64)).collect();
        // Put one 40% job on node 1, two on node 2.
        let cfg = CliteConfig::default();
        nodes[1]
            .try_admit(
                PlacedJob { id: 1, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.4) },
                &cfg,
            )
            .unwrap();
        nodes[2]
            .try_admit(
                PlacedJob { id: 2, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.4) },
                &cfg,
            )
            .unwrap();
        nodes[2]
            .try_admit(
                PlacedJob { id: 3, spec: JobSpec::latency_critical(WorkloadId::Xapian, 0.4) },
                &cfg,
            )
            .unwrap();
        nodes
    }

    #[test]
    fn orderings_differ_as_documented() {
        let nodes = fleet();
        assert_eq!(PlacementPolicy::FirstFit.candidate_order(&nodes), vec![0, 1, 2]);
        assert_eq!(PlacementPolicy::LeastLoaded.candidate_order(&nodes), vec![0, 1, 2]);
        assert_eq!(PlacementPolicy::MostLoaded.candidate_order(&nodes), vec![2, 1, 0]);
    }

    #[test]
    fn full_nodes_are_excluded() {
        // A node hosting 10 jobs (cores exhausted) cannot take an 11th.
        let mut nodes = vec![Node::new(0, ResourceCatalog::testbed(), 0)];
        let cfg = CliteConfig::default();
        for i in 0..10 {
            let admitted = nodes[0]
                .try_admit(
                    PlacedJob { id: i, spec: JobSpec::background(WorkloadId::Swaptions) },
                    &cfg,
                )
                .unwrap();
            assert!(admitted, "BG jobs are always feasible");
        }
        assert!(PlacementPolicy::FirstFit.candidate_order(&nodes).is_empty());
    }
}
