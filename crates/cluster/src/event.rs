//! The fleet service's event vocabulary.
//!
//! A fleet trace is a time-ordered list of [`TimedEvent`]s. Job ids are
//! assigned by the scheduler in arrival order (arrival `k` gets id `k`,
//! placed or not), so a trace generator that counts its own arrivals can
//! reference earlier jobs in departures and load shifts without ever
//! seeing the scheduler's state — what keeps trace generation and fleet
//! execution independently deterministic.

use clite_sim::prelude::*;

/// One thing that happens to the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// A new job asks to be admitted. The scheduler assigns the next
    /// sequential job id whether or not a node accepts it.
    Arrival {
        /// The job's specification.
        spec: JobSpec,
    },
    /// A previously arrived job departs. Departures of jobs that were
    /// rejected at arrival (or lost with a crashed node) are tolerated as
    /// stale no-ops: the trace generator cannot know placement outcomes.
    Departure {
        /// Cluster-assigned job id (arrival index).
        job: u64,
    },
    /// A previously arrived job's offered load changes; its node
    /// re-partitions under the new schedule. Stale ids are no-ops, like
    /// departures.
    LoadShift {
        /// Cluster-assigned job id (arrival index).
        job: u64,
        /// The new load schedule.
        load: LoadSchedule,
    },
    /// New empty nodes join the fleet.
    Onboard {
        /// How many nodes to add.
        nodes: usize,
    },
}

/// An event stamped with its simulation tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// When the event happens ([`crate::clock::SimClock`] ticks).
    pub at: u64,
    /// What happens.
    pub event: FleetEvent,
}

impl TimedEvent {
    /// Convenience constructor.
    #[must_use]
    pub fn new(at: u64, event: FleetEvent) -> Self {
        Self { at, event }
    }
}
