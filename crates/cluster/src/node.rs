//! A single server in the fleet and its committed job set.

use clite::config::CliteConfig;
use clite::controller::CliteController;
use clite::trace::CliteOutcome;
use clite_sim::prelude::*;
use clite_sim::testbed::{ServerFactory, TestbedFactory};
use clite_store::{MixSignature, StoreHandle};
use clite_telemetry::Telemetry;

use crate::wire::NodeSnapshot;
use crate::ClusterError;

/// A placed job: cluster-wide id plus its spec.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedJob {
    /// Cluster-assigned job id (stable across re-partitionings).
    pub id: u64,
    /// The job's specification.
    pub spec: JobSpec,
}

/// The result of probing one node for a tentative admission: the job and
/// the CLITE search outcome on the node's committed set plus that job.
///
/// A plan is *speculative*: producing one ([`Node::plan_admission`]) does
/// not change the node. The scheduler decides which plans count against a
/// node's bookkeeping ([`Node::record_probe`]) and which single plan, if
/// any, is committed ([`Node::commit_admission`]) — the split that lets
/// threaded admission probe many nodes concurrently and still commit the
/// exact placements a serial scan would.
#[derive(Debug, Clone)]
pub struct AdmissionPlan {
    job: PlacedJob,
    outcome: CliteOutcome,
    /// Mix signature of the tentative job set, captured at probe time;
    /// `Some` only when the node has a store. Commit appends the plan's
    /// samples under this signature.
    signature: Option<MixSignature>,
}

impl AdmissionPlan {
    /// Whether the search found a partition meeting every LC job's QoS.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.outcome.qos_met()
    }

    /// The job this plan would admit.
    #[must_use]
    pub fn job(&self) -> &PlacedJob {
        &self.job
    }

    /// The admission search's outcome.
    #[must_use]
    pub fn outcome(&self) -> &CliteOutcome {
        &self.outcome
    }
}

/// One server of the fleet with its committed jobs and the most recent
/// CLITE outcome for that job set.
///
/// Generic over the [`TestbedFactory`] used to build the per-search
/// testbed; the default [`ServerFactory`] builds the in-process simulator.
#[derive(Debug)]
pub struct Node<F: TestbedFactory = ServerFactory> {
    id: usize,
    catalog: ResourceCatalog,
    seed: u64,
    factory: F,
    jobs: Vec<PlacedJob>,
    last_outcome: Option<CliteOutcome>,
    searches_run: usize,
    samples_spent: u64,
    commits: u64,
    store: Option<StoreHandle>,
    alive: bool,
}

impl Node {
    /// Creates an empty node backed by the simulated [`Server`].
    #[must_use]
    pub fn new(id: usize, catalog: ResourceCatalog, seed: u64) -> Self {
        Self::with_factory(id, catalog, seed, ServerFactory)
    }
}

impl<F: TestbedFactory> Node<F> {
    /// Creates an empty node whose admission searches run on testbeds
    /// built by `factory`.
    #[must_use]
    pub fn with_factory(id: usize, catalog: ResourceCatalog, seed: u64, factory: F) -> Self {
        Self {
            id,
            catalog,
            seed,
            factory,
            jobs: Vec::new(),
            last_outcome: None,
            searches_run: 0,
            samples_spent: 0,
            commits: 0,
            store: None,
            alive: true,
        }
    }

    /// Captures the node's restorable state for a fleet checkpoint: jobs,
    /// the committed outcome (minus its wall-clock overhead report, which
    /// no witness reads), and the seed/commit bookkeeping future search
    /// seeds derive from.
    #[must_use]
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            id: self.id,
            seed: self.seed,
            alive: self.alive,
            commits: self.commits,
            searches_run: self.searches_run,
            samples_spent: self.samples_spent,
            jobs: self.jobs.iter().map(|j| (j.id, j.spec.clone())).collect(),
            last_outcome: self.last_outcome.clone().map(|mut o| {
                o.overhead = None;
                o
            }),
        }
    }

    /// Rebuilds a node from a checkpoint snapshot. The catalog and factory
    /// are reattached by the caller (they are configuration, not state);
    /// the store handle, if any, is installed via [`Node::set_store`].
    #[must_use]
    pub fn from_snapshot(snap: NodeSnapshot, catalog: ResourceCatalog, factory: F) -> Self {
        Self {
            id: snap.id,
            catalog,
            seed: snap.seed,
            factory,
            jobs: snap.jobs.into_iter().map(|(id, spec)| PlacedJob { id, spec }).collect(),
            last_outcome: snap.last_outcome,
            searches_run: snap.searches_run,
            samples_spent: snap.samples_spent,
            commits: snap.commits,
            store: None,
            alive: snap.alive,
        }
    }

    /// Attaches a shared observation store — either a
    /// [`clite_store::SharedStore`] or a [`clite_store::ShardedStore`]
    /// handle: admission probes and re-partitioning searches warm-start
    /// from it, and committed searches append their samples back (see
    /// [`Node::commit_admission`]).
    #[must_use]
    pub fn with_store(mut self, store: impl Into<StoreHandle>) -> Self {
        self.store = Some(store.into());
        self
    }

    /// Installs (or replaces) the shared observation store in place.
    pub fn set_store(&mut self, store: impl Into<StoreHandle>) {
        self.store = Some(store.into());
    }

    /// Node id within the cluster.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Committed jobs in placement order.
    #[must_use]
    pub fn jobs(&self) -> &[PlacedJob] {
        &self.jobs
    }

    /// Number of committed jobs.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the node can physically host one more job (every resource
    /// needs a spare unit).
    #[must_use]
    pub fn has_capacity_for_one_more(&self) -> bool {
        self.catalog.supports_jobs(self.jobs.len() + 1)
    }

    /// Whether the node is in service. Dead nodes (crashed mid-search and
    /// evicted by the scheduler) never host jobs again.
    #[must_use]
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// Takes the node out of service after a crash: its committed jobs are
    /// drained (the scheduler re-places them elsewhere), its outcome is
    /// discarded, and every future [`Node::plan_admission`] returns
    /// `Ok(None)`. Search/sample bookkeeping is frozen, not reset.
    pub fn mark_dead(&mut self) -> Vec<PlacedJob> {
        self.alive = false;
        self.last_outcome = None;
        std::mem::take(&mut self.jobs)
    }

    /// The most recent CLITE outcome for the committed job set (`None`
    /// while the node is empty).
    #[must_use]
    pub fn last_outcome(&self) -> Option<&CliteOutcome> {
        self.last_outcome.as_ref()
    }

    /// Number of CLITE searches this node has been charged for
    /// (admission probes + removals).
    #[must_use]
    pub fn searches_run(&self) -> usize {
        self.searches_run
    }

    /// Total observation windows this node has spent partitioning.
    #[must_use]
    pub fn samples_spent(&self) -> u64 {
        self.samples_spent
    }

    /// Committed state changes (admissions + removals) so far.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Sum of the committed LC jobs' load fractions — a quick headroom
    /// proxy used by placement policies.
    #[must_use]
    pub fn committed_lc_load(&self) -> f64 {
        self.jobs
            .iter()
            .filter(|j| j.spec.class() == JobClass::LatencyCritical)
            .map(|j| j.spec.load.at(0.0))
            .sum()
    }

    /// Builds a live testbed hosting this node's committed jobs with the
    /// last committed partition already enforced — the state a load
    /// harness should drive queries at. Returns `Ok(None)` when the node
    /// has no committed search yet (nothing to load), or is dead.
    ///
    /// # Errors
    ///
    /// Propagates factory failures building the testbed and simulator
    /// failures enforcing the committed partition.
    pub fn loaded_testbed(&self) -> Result<Option<F::Output>, ClusterError> {
        let Some(outcome) = (self.alive).then_some(()).and(self.last_outcome.as_ref()) else {
            return Ok(None);
        };
        let specs: Vec<JobSpec> = self.jobs.iter().map(|j| j.spec.clone()).collect();
        // Committed state only: the same seed the committing search used,
        // so the testbed reproduces the conditions the partition was
        // chosen under.
        let seed = self.seed.wrapping_add(self.commits);
        let mut testbed = self.factory.build(self.catalog, specs, seed)?;
        testbed.enforce(&outcome.best_partition)?;
        Ok(Some(testbed))
    }

    /// Seed for the next search. A pure function of *committed* state, so
    /// speculative probes — however many, in whatever order — never shift
    /// the seeds of later searches. This is what makes threaded admission
    /// bit-identical to serial.
    fn search_seed(&self) -> u64 {
        self.seed.wrapping_add(self.commits + 1)
    }

    /// Runs the admission search for `job` on the node's committed set
    /// plus `job` *without changing the node*. Returns `Ok(None)` when the
    /// node lacks physical capacity for one more job, or is dead.
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures. A probe that surfaces a
    /// node crash ([`ClusterError::is_node_crash`]) means the *node*
    /// failed, not the search: the scheduler evicts it.
    pub fn plan_admission(
        &self,
        job: PlacedJob,
        config: &CliteConfig,
        telemetry: &Telemetry<'_>,
    ) -> Result<Option<AdmissionPlan>, ClusterError> {
        if !self.alive || !self.catalog.supports_jobs(self.jobs.len() + 1) {
            return Ok(None);
        }
        let mut tentative: Vec<JobSpec> = self.jobs.iter().map(|j| j.spec.clone()).collect();
        tentative.push(job.spec.clone());
        let (outcome, signature) = self.run_search(tentative, config, telemetry)?;
        Ok(Some(AdmissionPlan { job, outcome, signature }))
    }

    /// One admission/re-partition search on the given tentative job set,
    /// warm-started from the shared store when one is attached. Probes
    /// only *read* the store (plus hit/miss accounting); samples are
    /// appended at commit time, so concurrent speculative probes all see
    /// the same pre-wave store state and threaded admission stays
    /// byte-identical to serial.
    fn run_search(
        &self,
        specs: Vec<JobSpec>,
        config: &CliteConfig,
        telemetry: &Telemetry<'_>,
    ) -> Result<(CliteOutcome, Option<MixSignature>), ClusterError> {
        let seed = self.search_seed();
        let mut testbed = self.factory.build(self.catalog, specs, seed)?;
        let controller = CliteController::new(config.clone().with_seed(seed));
        match &self.store {
            Some(store) => {
                let signature = MixSignature::capture(&testbed);
                let warm = store.warm_start_with(&signature, telemetry);
                let outcome = match &warm {
                    Some(warm) => controller.run_warmed(&mut testbed, warm, telemetry)?,
                    None => controller.run_with(&mut testbed, telemetry)?,
                };
                Ok((outcome, Some(signature)))
            }
            None => Ok((controller.run_with(&mut testbed, telemetry)?, None)),
        }
    }

    /// Appends a committed search's samples to the shared store.
    /// Best-effort: an unwritable log must not fail a placement the
    /// search already proved feasible, so failures only bump the store's
    /// `append_errors` counter.
    fn store_samples(&self, signature: Option<&MixSignature>, outcome: &CliteOutcome) {
        let (Some(store), Some(signature)) = (&self.store, signature) else {
            return;
        };
        for rec in &outcome.samples {
            let _ = store.append_with(
                signature,
                &rec.partition,
                &rec.observation,
                rec.score.value,
                &Telemetry::disabled(),
            );
        }
    }

    /// Charges a produced plan against this node's search/sample
    /// bookkeeping. The scheduler calls this exactly for the probes a
    /// serial scan would have paid for.
    pub fn record_probe(&mut self, plan: &AdmissionPlan) {
        self.searches_run += 1;
        self.samples_spent += plan.outcome.samples_used() as u64;
    }

    /// Commits a feasible plan: the job joins the node, the plan's
    /// partition becomes the committed outcome, and — when a store is
    /// attached — the plan's samples are appended (best-effort) for
    /// future warm starts. Discarded plans never reach the store.
    pub fn commit_admission(&mut self, plan: AdmissionPlan) {
        self.store_samples(plan.signature.as_ref(), &plan.outcome);
        self.jobs.push(plan.job);
        self.last_outcome = Some(plan.outcome);
        self.commits += 1;
    }

    /// Tries to admit `job`: runs a CLITE search on the tentative job set
    /// and commits only if every LC job (old and new) meets QoS.
    ///
    /// Returns `Ok(true)` and keeps the job (plus the found partition) on
    /// success; returns `Ok(false)` and leaves the node unchanged when the
    /// co-location is not QoS-feasible.
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures.
    pub fn try_admit(
        &mut self,
        job: PlacedJob,
        config: &CliteConfig,
    ) -> Result<bool, ClusterError> {
        self.try_admit_with(job, config, &Telemetry::disabled())
    }

    /// [`try_admit`](Node::try_admit) with telemetry forwarded to the
    /// admission search.
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures.
    pub fn try_admit_with(
        &mut self,
        job: PlacedJob,
        config: &CliteConfig,
        telemetry: &Telemetry<'_>,
    ) -> Result<bool, ClusterError> {
        let Some(plan) = self.plan_admission(job, config, telemetry)? else {
            return Ok(false);
        };
        self.record_probe(&plan);
        let feasible = plan.feasible();
        if feasible {
            self.commit_admission(plan);
        }
        Ok(feasible)
    }

    /// Removes a job by id and re-partitions the remainder.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if the id is not on this node.
    pub fn remove(&mut self, job_id: u64, config: &CliteConfig) -> Result<(), ClusterError> {
        self.remove_with(job_id, config, &Telemetry::disabled())
    }

    /// [`remove`](Node::remove) with telemetry forwarded to the
    /// re-partitioning search.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if the id is not on this node.
    pub fn remove_with(
        &mut self,
        job_id: u64,
        config: &CliteConfig,
        telemetry: &Telemetry<'_>,
    ) -> Result<(), ClusterError> {
        let idx = self
            .jobs
            .iter()
            .position(|j| j.id == job_id)
            .ok_or(ClusterError::UnknownJob { job: job_id })?;
        self.jobs.remove(idx);
        self.commits += 1;
        if self.jobs.is_empty() {
            self.last_outcome = None;
            return Ok(());
        }
        let specs: Vec<JobSpec> = self.jobs.iter().map(|j| j.spec.clone()).collect();
        let (outcome, signature) = self.run_search(specs, config, telemetry)?;
        self.store_samples(signature.as_ref(), &outcome);
        self.searches_run += 1;
        self.samples_spent += outcome.samples_used() as u64;
        self.last_outcome = Some(outcome);
        Ok(())
    }

    /// Replaces a committed job's load schedule (the fleet's `load_shift`
    /// event) and re-partitions the node under the new load. The change is
    /// a commit — later search seeds shift exactly as they would for an
    /// admission or departure, keeping serial and threaded event loops
    /// byte-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if the id is not on this node;
    /// propagates controller/simulator failures from the re-partitioning
    /// search.
    pub fn update_load_with(
        &mut self,
        job_id: u64,
        load: LoadSchedule,
        config: &CliteConfig,
        telemetry: &Telemetry<'_>,
    ) -> Result<(), ClusterError> {
        let idx = self
            .jobs
            .iter()
            .position(|j| j.id == job_id)
            .ok_or(ClusterError::UnknownJob { job: job_id })?;
        self.jobs[idx].spec.load = load;
        self.commits += 1;
        let specs: Vec<JobSpec> = self.jobs.iter().map(|j| j.spec.clone()).collect();
        let (outcome, signature) = self.run_search(specs, config, telemetry)?;
        self.store_samples(signature.as_ref(), &outcome);
        self.searches_run += 1;
        self.samples_spent += outcome.samples_used() as u64;
        self.last_outcome = Some(outcome);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(0, ResourceCatalog::testbed(), 1)
    }

    fn quick_config() -> CliteConfig {
        CliteConfig::default()
    }

    #[test]
    fn empty_node_admits_light_job() {
        let mut n = node();
        let admitted = n
            .try_admit(
                PlacedJob { id: 1, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.2) },
                &quick_config(),
            )
            .unwrap();
        assert!(admitted);
        assert_eq!(n.job_count(), 1);
        assert!(n.last_outcome().is_some());
        assert!(n.searches_run() >= 1);
        assert_eq!(n.commits(), 1);
    }

    #[test]
    fn rejects_infeasible_addition_and_stays_unchanged() {
        let mut n = node();
        for (i, w) in [WorkloadId::ImgDnn, WorkloadId::Masstree].iter().enumerate() {
            assert!(n
                .try_admit(
                    PlacedJob { id: i as u64, spec: JobSpec::latency_critical(*w, 0.8) },
                    &quick_config()
                )
                .unwrap());
        }
        let before = n.job_count();
        // A third heavily-loaded job cannot fit.
        let admitted = n
            .try_admit(
                PlacedJob { id: 99, spec: JobSpec::latency_critical(WorkloadId::Specjbb, 0.9) },
                &quick_config(),
            )
            .unwrap();
        assert!(!admitted);
        assert_eq!(n.job_count(), before, "rejected job must not linger");
        assert_eq!(n.commits(), 2, "failed probes are not commits");
    }

    #[test]
    fn plan_admission_leaves_node_untouched() {
        let n = node();
        let plan = n
            .plan_admission(
                PlacedJob { id: 7, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.2) },
                &quick_config(),
                &Telemetry::disabled(),
            )
            .unwrap()
            .unwrap();
        assert!(plan.feasible());
        assert_eq!(plan.job().id, 7);
        assert_eq!(n.job_count(), 0);
        assert_eq!(n.searches_run(), 0);
        assert_eq!(n.samples_spent(), 0);
    }

    #[test]
    fn plans_are_deterministic_for_committed_state() {
        // Probing is pure: the same committed state yields byte-identical
        // plans no matter how many times (or on which thread) it runs.
        let n = node();
        let probe = || {
            n.plan_admission(
                PlacedJob { id: 3, spec: JobSpec::latency_critical(WorkloadId::Xapian, 0.3) },
                &quick_config(),
                &Telemetry::disabled(),
            )
            .unwrap()
            .unwrap()
        };
        let a = probe();
        let b = probe();
        assert_eq!(a.outcome().best_partition, b.outcome().best_partition);
        assert_eq!(a.outcome().samples_used(), b.outcome().samples_used());
    }

    #[test]
    fn loaded_testbed_reflects_committed_partition() {
        let mut n = node();
        assert!(n.loaded_testbed().unwrap().is_none(), "empty node has nothing to load");
        assert!(n
            .try_admit(
                PlacedJob { id: 1, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.3) },
                &quick_config(),
            )
            .unwrap());
        let testbed = n.loaded_testbed().unwrap().expect("committed node builds a testbed");
        assert_eq!(testbed.job_count(), 1);
        assert_eq!(testbed.workload(0), WorkloadId::Memcached);
        // Same committed state → identical testbed, ready for a load run.
        let again = n.loaded_testbed().unwrap().unwrap();
        assert_eq!(again.job_count(), testbed.job_count());
    }

    #[test]
    fn remove_unknown_job_errors() {
        let mut n = node();
        assert!(matches!(n.remove(42, &quick_config()), Err(ClusterError::UnknownJob { job: 42 })));
    }

    #[test]
    fn remove_repartitions_remainder() {
        let mut n = node();
        for (i, w) in [WorkloadId::Memcached, WorkloadId::Xapian].iter().enumerate() {
            assert!(n
                .try_admit(
                    PlacedJob { id: i as u64, spec: JobSpec::latency_critical(*w, 0.2) },
                    &quick_config()
                )
                .unwrap());
        }
        n.remove(0, &quick_config()).unwrap();
        assert_eq!(n.job_count(), 1);
        assert_eq!(n.jobs()[0].id, 1);
        assert!(n.last_outcome().unwrap().qos_met());
        n.remove(1, &quick_config()).unwrap();
        assert!(n.last_outcome().is_none());
    }

    #[test]
    fn store_backed_node_warm_starts_repeat_mixes() {
        use clite_store::ObservationStore;

        let store = ObservationStore::in_memory().into_shared();
        let mut n = node().with_store(store.clone());
        let base = JobSpec::latency_critical(WorkloadId::Memcached, 0.3);
        let spec = JobSpec::latency_critical(WorkloadId::Xapian, 0.3);

        // Two cold admissions (1-job mix, then 2-job mix); each commit
        // appends its samples to the store.
        assert!(n.try_admit(PlacedJob { id: 1, spec: base }, &quick_config()).unwrap());
        let after_first = n.samples_spent();
        assert!(n.try_admit(PlacedJob { id: 2, spec: spec.clone() }, &quick_config()).unwrap());
        let cold_two_job = n.samples_spent() - after_first;
        {
            let guard = store.lock().unwrap();
            assert_eq!(guard.stats().misses, 2, "both cold probes miss");
            assert!(guard.stats().appends > 0);
        }

        // Departure + identical re-admission probes the same 2-job mix:
        // the plan warm-starts from the committed samples and spends
        // strictly fewer windows than the cold 2-job search did.
        n.remove(2, &quick_config()).unwrap();
        let before_warm = n.samples_spent();
        assert!(n.try_admit(PlacedJob { id: 3, spec }, &quick_config()).unwrap());
        let warm_two_job = n.samples_spent() - before_warm;
        assert!(store.lock().unwrap().stats().hits >= 1);
        assert!(
            warm_two_job < cold_two_job,
            "warm re-admission spent {warm_two_job} windows, cold spent {cold_two_job}"
        );
    }

    #[test]
    fn committed_lc_load_sums_lc_only() {
        let mut n = node();
        n.try_admit(
            PlacedJob { id: 1, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.3) },
            &quick_config(),
        )
        .unwrap();
        n.try_admit(
            PlacedJob { id: 2, spec: JobSpec::background(WorkloadId::Swaptions) },
            &quick_config(),
        )
        .unwrap();
        assert!((n.committed_lc_load() - 0.3).abs() < 1e-12);
    }
}
