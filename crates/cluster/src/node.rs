//! A single server in the fleet and its committed job set.

use clite::config::CliteConfig;
use clite::controller::CliteController;
use clite::trace::CliteOutcome;
use clite_sim::prelude::*;
use clite_telemetry::Telemetry;

use crate::ClusterError;

/// A placed job: cluster-wide id plus its spec.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedJob {
    /// Cluster-assigned job id (stable across re-partitionings).
    pub id: u64,
    /// The job's specification.
    pub spec: JobSpec,
}

/// One server of the fleet with its committed jobs and the most recent
/// CLITE outcome for that job set.
#[derive(Debug)]
pub struct Node {
    id: usize,
    catalog: ResourceCatalog,
    seed: u64,
    jobs: Vec<PlacedJob>,
    last_outcome: Option<CliteOutcome>,
    searches_run: usize,
    samples_spent: u64,
}

impl Node {
    /// Creates an empty node.
    #[must_use]
    pub fn new(id: usize, catalog: ResourceCatalog, seed: u64) -> Self {
        Self {
            id,
            catalog,
            seed,
            jobs: Vec::new(),
            last_outcome: None,
            searches_run: 0,
            samples_spent: 0,
        }
    }

    /// Node id within the cluster.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Committed jobs in placement order.
    #[must_use]
    pub fn jobs(&self) -> &[PlacedJob] {
        &self.jobs
    }

    /// Number of committed jobs.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the node can physically host one more job (every resource
    /// needs a spare unit).
    #[must_use]
    pub fn has_capacity_for_one_more(&self) -> bool {
        self.catalog.supports_jobs(self.jobs.len() + 1)
    }

    /// The most recent CLITE outcome for the committed job set (`None`
    /// while the node is empty).
    #[must_use]
    pub fn last_outcome(&self) -> Option<&CliteOutcome> {
        self.last_outcome.as_ref()
    }

    /// Number of CLITE searches this node has run (admissions + removals).
    #[must_use]
    pub fn searches_run(&self) -> usize {
        self.searches_run
    }

    /// Total observation windows this node has spent partitioning.
    #[must_use]
    pub fn samples_spent(&self) -> u64 {
        self.samples_spent
    }

    /// Sum of the committed LC jobs' load fractions — a quick headroom
    /// proxy used by placement policies.
    #[must_use]
    pub fn committed_lc_load(&self) -> f64 {
        self.jobs
            .iter()
            .filter(|j| j.spec.class() == JobClass::LatencyCritical)
            .map(|j| j.spec.load.at(0.0))
            .sum()
    }

    /// Tries to admit `job`: runs a CLITE search on the tentative job set
    /// and commits only if every LC job (old and new) meets QoS.
    ///
    /// Returns `Ok(true)` and keeps the job (plus the found partition) on
    /// success; returns `Ok(false)` and leaves the node unchanged when the
    /// co-location is not QoS-feasible.
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures.
    pub fn try_admit(
        &mut self,
        job: PlacedJob,
        config: &CliteConfig,
    ) -> Result<bool, ClusterError> {
        self.try_admit_with(job, config, &Telemetry::disabled())
    }

    /// [`try_admit`](Node::try_admit) with telemetry forwarded to the
    /// admission search.
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures.
    pub fn try_admit_with(
        &mut self,
        job: PlacedJob,
        config: &CliteConfig,
        telemetry: &Telemetry<'_>,
    ) -> Result<bool, ClusterError> {
        if !self.catalog.supports_jobs(self.jobs.len() + 1) {
            return Ok(false);
        }
        let mut tentative: Vec<JobSpec> = self.jobs.iter().map(|j| j.spec.clone()).collect();
        tentative.push(job.spec.clone());

        let outcome = self.run_search(tentative, config, telemetry)?;
        let feasible = outcome.qos_met();
        if feasible {
            self.jobs.push(job);
            self.last_outcome = Some(outcome);
        }
        Ok(feasible)
    }

    /// Removes a job by id and re-partitions the remainder.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if the id is not on this node.
    pub fn remove(&mut self, job_id: u64, config: &CliteConfig) -> Result<(), ClusterError> {
        self.remove_with(job_id, config, &Telemetry::disabled())
    }

    /// [`remove`](Node::remove) with telemetry forwarded to the
    /// re-partitioning search.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if the id is not on this node.
    pub fn remove_with(
        &mut self,
        job_id: u64,
        config: &CliteConfig,
        telemetry: &Telemetry<'_>,
    ) -> Result<(), ClusterError> {
        let idx = self
            .jobs
            .iter()
            .position(|j| j.id == job_id)
            .ok_or(ClusterError::UnknownJob { job: job_id })?;
        self.jobs.remove(idx);
        if self.jobs.is_empty() {
            self.last_outcome = None;
            return Ok(());
        }
        let specs: Vec<JobSpec> = self.jobs.iter().map(|j| j.spec.clone()).collect();
        let outcome = self.run_search(specs, config, telemetry)?;
        self.last_outcome = Some(outcome);
        Ok(())
    }

    fn run_search(
        &mut self,
        specs: Vec<JobSpec>,
        config: &CliteConfig,
        telemetry: &Telemetry<'_>,
    ) -> Result<CliteOutcome, ClusterError> {
        self.searches_run += 1;
        let seed = self.seed.wrapping_add(self.searches_run as u64);
        let mut server = Server::new(self.catalog, specs, seed)?;
        let controller = CliteController::new(config.clone().with_seed(seed));
        let outcome = controller.run_with(&mut server, telemetry)?;
        self.samples_spent += outcome.samples_used() as u64;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(0, ResourceCatalog::testbed(), 1)
    }

    fn quick_config() -> CliteConfig {
        CliteConfig::default()
    }

    #[test]
    fn empty_node_admits_light_job() {
        let mut n = node();
        let admitted = n
            .try_admit(
                PlacedJob { id: 1, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.2) },
                &quick_config(),
            )
            .unwrap();
        assert!(admitted);
        assert_eq!(n.job_count(), 1);
        assert!(n.last_outcome().is_some());
        assert!(n.searches_run() >= 1);
    }

    #[test]
    fn rejects_infeasible_addition_and_stays_unchanged() {
        let mut n = node();
        for (i, w) in [WorkloadId::ImgDnn, WorkloadId::Masstree].iter().enumerate() {
            assert!(n
                .try_admit(
                    PlacedJob { id: i as u64, spec: JobSpec::latency_critical(*w, 0.8) },
                    &quick_config()
                )
                .unwrap());
        }
        let before = n.job_count();
        // A third heavily-loaded job cannot fit.
        let admitted = n
            .try_admit(
                PlacedJob { id: 99, spec: JobSpec::latency_critical(WorkloadId::Specjbb, 0.9) },
                &quick_config(),
            )
            .unwrap();
        assert!(!admitted);
        assert_eq!(n.job_count(), before, "rejected job must not linger");
    }

    #[test]
    fn remove_unknown_job_errors() {
        let mut n = node();
        assert!(matches!(n.remove(42, &quick_config()), Err(ClusterError::UnknownJob { job: 42 })));
    }

    #[test]
    fn remove_repartitions_remainder() {
        let mut n = node();
        for (i, w) in [WorkloadId::Memcached, WorkloadId::Xapian].iter().enumerate() {
            assert!(n
                .try_admit(
                    PlacedJob { id: i as u64, spec: JobSpec::latency_critical(*w, 0.2) },
                    &quick_config()
                )
                .unwrap());
        }
        n.remove(0, &quick_config()).unwrap();
        assert_eq!(n.job_count(), 1);
        assert_eq!(n.jobs()[0].id, 1);
        assert!(n.last_outcome().unwrap().qos_met());
        n.remove(1, &quick_config()).unwrap();
        assert!(n.last_outcome().is_none());
    }

    #[test]
    fn committed_lc_load_sums_lc_only() {
        let mut n = node();
        n.try_admit(
            PlacedJob { id: 1, spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.3) },
            &quick_config(),
        )
        .unwrap();
        n.try_admit(
            PlacedJob { id: 2, spec: JobSpec::background(WorkloadId::Swaptions) },
            &quick_config(),
        )
        .unwrap();
        assert!((n.committed_lc_load() - 0.3).abs() < 1e-12);
    }
}
