//! Wire codecs for durable fleet state: journal entries and checkpoints.
//!
//! Reuses the `clite-store` codec primitives (bounds-checked little-endian
//! [`Reader`], presence-byte optionals, workload codes) so the fleet's
//! durability layer speaks the same dialect as the observation log instead
//! of inventing a second framing. Two payload families live here:
//!
//! * **Journal entries** — one per [`TimedEvent`], written ahead of the
//!   mutation they describe (see [`crate::recovery::DurableFleet`]). An
//!   entry carries the pre-decided *disposition* (applied vs shed) and the
//!   arrival-burst backlog the decision was made under, so replay re-derives
//!   the exact same admission sequence without the original trace.
//! * **Checkpoints** — a full [`FleetCheckpoint`] snapshot of the service,
//!   scheduler, and every node, written atomically via
//!   [`clite_store::blob`]. Recovery loads the newest valid checkpoint and
//!   replays the journal suffix; a corrupt checkpoint degrades to a full
//!   replay, never an abort.
//!
//! Every decoder is total: it returns a [`DecodeError`] naming the offset
//! and expectation, never panics, and never reads past its slice — the same
//! crash-safety argument as the store codec, because these bytes are read
//! exactly when something already went wrong.

use clite::score::{ScoreBreakdown, ScoreMode};
use clite::trace::{CliteOutcome, SampleRecord};
use clite_sim::load::LoadSchedule;
use clite_sim::resource::ResourceCatalog;
use clite_sim::server::JobSpec;
use clite_sim::workload::WorkloadProfile;
use clite_store::codec::{
    put_f64, put_observation, put_opt_f64, put_partition_rows, put_u32, put_u64, put_u8,
    read_observation, read_partition_rows, workload_code, workload_from_code, DecodeError, Reader,
};

use crate::event::{FleetEvent, TimedEvent};
use crate::fleet::FleetCounters;

/// Checkpoint blob magic (8 bytes, mirrors the `CLITESTO` log magic).
pub const CKPT_MAGIC: &[u8; 8] = b"CLITECKP";
/// Checkpoint payload format version.
pub const CKPT_VERSION: u32 = 1;

/// Vector lengths above which a payload is rejected as corrupt (a length
/// prefix this large can only come from flipped bits).
const MAX_VEC: usize = 1 << 20;

fn read_len(r: &mut Reader<'_>, expected: &'static str) -> Result<usize, DecodeError> {
    let n = r.u32(expected)? as usize;
    if n > MAX_VEC {
        return Err(r.fail(expected));
    }
    Ok(n)
}

// ── journal entries ──────────────────────────────────────────────────────

/// One recovered journal entry: the event, the disposition decided before
/// it was applied, and the arrival backlog that decision saw.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// `true` when the admission path shed this arrival instead of
    /// probing nodes (low-priority arrival under overload).
    pub shed: bool,
    /// Same-tick arrival backlog at decision time (events still queued
    /// behind this one with the same timestamp).
    pub backlog: u64,
    /// The event itself.
    pub event: TimedEvent,
}

/// Encodes one journal entry (disposition, backlog, event).
#[must_use]
pub fn encode_journal_entry(shed: bool, backlog: u64, event: &TimedEvent) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u8(&mut buf, u8::from(shed));
    put_u64(&mut buf, backlog);
    put_event(&mut buf, event);
    buf
}

/// Decodes one journal entry.
///
/// # Errors
///
/// Returns [`DecodeError`] on any malformed byte; trailing garbage is
/// rejected.
pub fn decode_journal_entry(payload: &[u8]) -> Result<JournalEntry, DecodeError> {
    let mut r = Reader::new(payload);
    let shed = match r.u8("disposition")? {
        0 => false,
        1 => true,
        _ => return Err(r.fail("disposition")),
    };
    let backlog = r.u64("backlog")?;
    let event = read_event(&mut r)?;
    if !r.done() {
        return Err(r.fail("end of journal entry"));
    }
    Ok(JournalEntry { shed, backlog, event })
}

// ── events ───────────────────────────────────────────────────────────────

fn put_event(buf: &mut Vec<u8>, event: &TimedEvent) {
    put_u64(buf, event.at);
    match &event.event {
        FleetEvent::Arrival { spec } => {
            put_u8(buf, 0);
            put_job_spec(buf, spec);
        }
        FleetEvent::Departure { job } => {
            put_u8(buf, 1);
            put_u64(buf, *job);
        }
        FleetEvent::LoadShift { job, load } => {
            put_u8(buf, 2);
            put_u64(buf, *job);
            put_load(buf, load);
        }
        FleetEvent::Onboard { nodes } => {
            put_u8(buf, 3);
            put_u64(buf, *nodes as u64);
        }
    }
}

fn read_event(r: &mut Reader<'_>) -> Result<TimedEvent, DecodeError> {
    let at = r.u64("event tick")?;
    let event = match r.u8("event tag")? {
        0 => FleetEvent::Arrival { spec: read_job_spec(r)? },
        1 => FleetEvent::Departure { job: r.u64("job id")? },
        2 => FleetEvent::LoadShift { job: r.u64("job id")?, load: read_load(r)? },
        3 => FleetEvent::Onboard { nodes: r.u64("onboard count")? as usize },
        _ => return Err(r.fail("event tag")),
    };
    Ok(TimedEvent::new(at, event))
}

fn put_load(buf: &mut Vec<u8>, load: &LoadSchedule) {
    match load {
        LoadSchedule::Constant(l) => {
            put_u8(buf, 0);
            put_f64(buf, *l);
        }
        LoadSchedule::Steps(phases) => {
            put_u8(buf, 1);
            put_pairs(buf, phases);
        }
        LoadSchedule::Ramp { from, to, duration_s } => {
            put_u8(buf, 2);
            put_f64(buf, *from);
            put_f64(buf, *to);
            put_f64(buf, *duration_s);
        }
        LoadSchedule::Diurnal { base, amplitude, period_s } => {
            put_u8(buf, 3);
            put_f64(buf, *base);
            put_f64(buf, *amplitude);
            put_f64(buf, *period_s);
        }
        LoadSchedule::Trace(points) => {
            put_u8(buf, 4);
            put_pairs(buf, points);
        }
    }
}

fn put_pairs(buf: &mut Vec<u8>, pairs: &[(f64, f64)]) {
    put_u32(buf, pairs.len() as u32);
    for &(a, b) in pairs {
        put_f64(buf, a);
        put_f64(buf, b);
    }
}

fn read_pairs(r: &mut Reader<'_>) -> Result<Vec<(f64, f64)>, DecodeError> {
    let n = read_len(r, "pair count")?;
    let mut pairs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        pairs.push((r.f64("pair")?, r.f64("pair")?));
    }
    Ok(pairs)
}

fn read_load(r: &mut Reader<'_>) -> Result<LoadSchedule, DecodeError> {
    Ok(match r.u8("load tag")? {
        0 => LoadSchedule::Constant(r.f64("load")?),
        1 => LoadSchedule::Steps(read_pairs(r)?),
        2 => LoadSchedule::Ramp {
            from: r.f64("ramp")?,
            to: r.f64("ramp")?,
            duration_s: r.f64("ramp")?,
        },
        3 => LoadSchedule::Diurnal {
            base: r.f64("diurnal")?,
            amplitude: r.f64("diurnal")?,
            period_s: r.f64("diurnal")?,
        },
        4 => LoadSchedule::Trace(read_pairs(r)?),
        _ => return Err(r.fail("load tag")),
    })
}

fn put_job_spec(buf: &mut Vec<u8>, spec: &JobSpec) {
    put_u8(buf, workload_code(spec.workload));
    put_load(buf, &spec.load);
    match &spec.profile_override {
        None => put_u8(buf, 0),
        Some(p) => {
            put_u8(buf, 1);
            put_profile(buf, p);
        }
    }
}

fn read_job_spec(r: &mut Reader<'_>) -> Result<JobSpec, DecodeError> {
    let workload = workload_from_code(r)?;
    let load = read_load(r)?;
    let profile_override = match r.u8("profile presence")? {
        0 => None,
        1 => Some(read_profile(r)?),
        _ => return Err(r.fail("profile presence")),
    };
    Ok(JobSpec { workload, load, profile_override })
}

fn put_profile(buf: &mut Vec<u8>, p: &WorkloadProfile) {
    put_u8(buf, workload_code(p.id));
    for v in [
        p.cpu_time_us,
        p.parallel_frac,
        p.mem_time_us,
        p.disk_time_us,
        p.hit_max,
        p.ways_sat,
        p.working_set_frac,
        p.thrash_exp,
        p.mem_intensity,
        p.disk_intensity,
        p.net_time_us,
        p.net_intensity,
    ] {
        put_f64(buf, v);
    }
}

fn read_profile(r: &mut Reader<'_>) -> Result<WorkloadProfile, DecodeError> {
    Ok(WorkloadProfile {
        id: workload_from_code(r)?,
        cpu_time_us: r.f64("profile")?,
        parallel_frac: r.f64("profile")?,
        mem_time_us: r.f64("profile")?,
        disk_time_us: r.f64("profile")?,
        hit_max: r.f64("profile")?,
        ways_sat: r.f64("profile")?,
        working_set_frac: r.f64("profile")?,
        thrash_exp: r.f64("profile")?,
        mem_intensity: r.f64("profile")?,
        disk_intensity: r.f64("profile")?,
        net_time_us: r.f64("profile")?,
        net_intensity: r.f64("profile")?,
    })
}

// ── controller outcomes ──────────────────────────────────────────────────

fn put_score(buf: &mut Vec<u8>, s: &ScoreBreakdown) {
    put_f64(buf, s.value);
    put_u8(
        buf,
        match s.mode {
            ScoreMode::QosViolated => 0,
            ScoreMode::QosMet => 1,
        },
    );
    put_f64_vec(buf, &s.lc_ratios);
    put_f64_vec(buf, &s.bg_ratios);
}

fn read_score(r: &mut Reader<'_>) -> Result<ScoreBreakdown, DecodeError> {
    Ok(ScoreBreakdown {
        value: r.f64("score value")?,
        mode: match r.u8("score mode")? {
            0 => ScoreMode::QosViolated,
            1 => ScoreMode::QosMet,
            _ => return Err(r.fail("score mode")),
        },
        lc_ratios: read_f64_vec(r)?,
        bg_ratios: read_f64_vec(r)?,
    })
}

fn put_f64_vec(buf: &mut Vec<u8>, v: &[f64]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        put_f64(buf, x);
    }
}

fn read_f64_vec(r: &mut Reader<'_>) -> Result<Vec<f64>, DecodeError> {
    let n = read_len(r, "f64 vec")?;
    let mut v = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        v.push(r.f64("f64 vec")?);
    }
    Ok(v)
}

fn put_sample(buf: &mut Vec<u8>, s: &SampleRecord) {
    put_u64(buf, s.index as u64);
    put_u8(buf, u8::from(s.bootstrap));
    put_partition_rows(buf, &s.partition);
    put_observation(buf, &s.observation);
    put_score(buf, &s.score);
    put_opt_f64(buf, s.expected_improvement);
    match s.frozen_job {
        None => put_u8(buf, 0),
        Some(j) => {
            put_u8(buf, 1);
            put_u64(buf, j as u64);
        }
    }
}

fn read_sample(r: &mut Reader<'_>, catalog: ResourceCatalog) -> Result<SampleRecord, DecodeError> {
    Ok(SampleRecord {
        index: r.u64("sample index")? as usize,
        bootstrap: match r.u8("bootstrap flag")? {
            0 => false,
            1 => true,
            _ => return Err(r.fail("bootstrap flag")),
        },
        partition: read_partition_rows(r, catalog)?,
        observation: read_observation(r)?,
        score: read_score(r)?,
        expected_improvement: r.opt_f64("expected improvement")?,
        frozen_job: match r.u8("frozen presence")? {
            0 => None,
            1 => Some(r.u64("frozen job")? as usize),
            _ => return Err(r.fail("frozen presence")),
        },
    })
}

/// Encodes a [`CliteOutcome`] minus its overhead report.
///
/// Wall-clock phase timings are observability, not scheduler state: no
/// byte-identity witness reads them, and serializing nanoseconds would
/// make checkpoints nondeterministic. Restored outcomes carry
/// `overhead: None`.
fn put_outcome(buf: &mut Vec<u8>, o: &CliteOutcome) {
    put_partition_rows(buf, &o.best_partition);
    put_f64(buf, o.best_score);
    put_u32(buf, o.samples.len() as u32);
    for s in &o.samples {
        put_sample(buf, s);
    }
    put_u8(buf, u8::from(o.converged));
    put_u32(buf, o.infeasible_jobs.len() as u32);
    for &j in &o.infeasible_jobs {
        put_u64(buf, j as u64);
    }
    match o.samples_to_qos {
        None => put_u8(buf, 0),
        Some(i) => {
            put_u8(buf, 1);
            put_u64(buf, i as u64);
        }
    }
    put_u64(buf, o.quarantined as u64);
}

fn read_outcome(r: &mut Reader<'_>, catalog: ResourceCatalog) -> Result<CliteOutcome, DecodeError> {
    let best_partition = read_partition_rows(r, catalog)?;
    let best_score = r.f64("best score")?;
    let n = read_len(r, "sample count")?;
    let mut samples = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        samples.push(read_sample(r, catalog)?);
    }
    let converged = match r.u8("converged flag")? {
        0 => false,
        1 => true,
        _ => return Err(r.fail("converged flag")),
    };
    let k = read_len(r, "infeasible count")?;
    let mut infeasible_jobs = Vec::with_capacity(k.min(1024));
    for _ in 0..k {
        infeasible_jobs.push(r.u64("infeasible job")? as usize);
    }
    let samples_to_qos = match r.u8("qos presence")? {
        0 => None,
        1 => Some(r.u64("samples to qos")? as usize),
        _ => return Err(r.fail("qos presence")),
    };
    let quarantined = r.u64("quarantined")? as usize;
    Ok(CliteOutcome {
        best_partition,
        best_score,
        samples,
        converged,
        infeasible_jobs,
        samples_to_qos,
        quarantined,
        overhead: None,
    })
}

// ── snapshots ────────────────────────────────────────────────────────────

/// Restorable state of one node: everything future admissions and the
/// statistics witness depend on. The testbed factory, catalog, and store
/// handle are reattached by the restoring scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// Node id within the cluster.
    pub id: usize,
    /// The node's search-seed base.
    pub seed: u64,
    /// Whether the node is in service.
    pub alive: bool,
    /// Committed state changes so far (drives the next search seed).
    pub commits: u64,
    /// Searches charged to the node.
    pub searches_run: usize,
    /// Observation windows spent.
    pub samples_spent: u64,
    /// Committed jobs in placement order, as `(id, spec)` pairs.
    pub jobs: Vec<(u64, JobSpec)>,
    /// The committed outcome (minus overhead), if any.
    pub last_outcome: Option<CliteOutcome>,
}

/// Restorable state of the scheduler: its id counters plus every node.
/// The job index and cluster statistics are re-derived on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerSnapshot {
    /// Next job id to assign.
    pub next_job_id: u64,
    /// Jobs rejected so far.
    pub rejected: u64,
    /// Orphans successfully re-homed.
    pub replaced: u64,
    /// Base seed (node `i` searches from `base_seed + 1000·i`).
    pub base_seed: u64,
    /// Every node, founding and onboarded, in id order.
    pub nodes: Vec<NodeSnapshot>,
}

/// A full checkpoint of the durable fleet at a journal boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// Events applied when the checkpoint was taken; recovery replays the
    /// journal suffix starting at this seqno.
    pub seqno: u64,
    /// Clock tick at checkpoint time.
    pub clock_now: u64,
    /// Last epoch the mean-field template was solved for.
    pub solved_epoch: Option<u64>,
    /// The installed template target.
    pub target_pct: Option<u32>,
    /// Fleet counters (the `replacements` field stores the scheduler's
    /// live count).
    pub counters: FleetCounters,
    /// Per-arrival placements so far (the byte-identity witness prefix).
    pub placements: Vec<Option<usize>>,
    /// Recent per-admission window costs (the overload debt horizon).
    pub debt: Vec<u64>,
    /// The scheduler and its nodes.
    pub scheduler: SchedulerSnapshot,
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(buf, 0),
        Some(x) => {
            put_u8(buf, 1);
            put_u64(buf, x);
        }
    }
}

fn read_opt_u64(r: &mut Reader<'_>, expected: &'static str) -> Result<Option<u64>, DecodeError> {
    match r.u8(expected)? {
        0 => Ok(None),
        1 => Ok(Some(r.u64(expected)?)),
        _ => Err(r.fail(expected)),
    }
}

/// Encodes a checkpoint payload (wrap in [`clite_store::blob::save`] with
/// [`CKPT_MAGIC`]/[`CKPT_VERSION`] for the durable file).
#[must_use]
pub fn encode_checkpoint(c: &FleetCheckpoint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4096);
    put_u64(&mut buf, c.seqno);
    put_u64(&mut buf, c.clock_now);
    put_opt_u64(&mut buf, c.solved_epoch);
    put_opt_u64(&mut buf, c.target_pct.map(u64::from));
    let k = &c.counters;
    for v in [
        k.arrivals,
        k.placed,
        k.departures,
        k.load_shifts,
        k.stale_events,
        k.nodes_onboarded,
        k.epoch_solves,
        k.replacements,
        k.arrivals_shed,
    ] {
        put_u64(&mut buf, v);
    }
    put_u32(&mut buf, c.placements.len() as u32);
    for p in &c.placements {
        put_opt_u64(&mut buf, p.map(|n| n as u64));
    }
    put_u32(&mut buf, c.debt.len() as u32);
    for &d in &c.debt {
        put_u64(&mut buf, d);
    }
    let s = &c.scheduler;
    put_u64(&mut buf, s.next_job_id);
    put_u64(&mut buf, s.rejected);
    put_u64(&mut buf, s.replaced);
    put_u64(&mut buf, s.base_seed);
    put_u32(&mut buf, s.nodes.len() as u32);
    for n in &s.nodes {
        put_u64(&mut buf, n.id as u64);
        put_u64(&mut buf, n.seed);
        put_u8(&mut buf, u8::from(n.alive));
        put_u64(&mut buf, n.commits);
        put_u64(&mut buf, n.searches_run as u64);
        put_u64(&mut buf, n.samples_spent);
        put_u32(&mut buf, n.jobs.len() as u32);
        for (id, spec) in &n.jobs {
            put_u64(&mut buf, *id);
            put_job_spec(&mut buf, spec);
        }
        match &n.last_outcome {
            None => put_u8(&mut buf, 0),
            Some(o) => {
                put_u8(&mut buf, 1);
                put_outcome(&mut buf, o);
            }
        }
    }
    buf
}

/// Decodes a checkpoint payload.
///
/// # Errors
///
/// Returns [`DecodeError`] on any malformed byte; trailing garbage is
/// rejected. Callers treat a decode failure as "no usable checkpoint" and
/// fall back to a full journal replay.
pub fn decode_checkpoint(payload: &[u8]) -> Result<FleetCheckpoint, DecodeError> {
    let catalog = ResourceCatalog::testbed();
    let mut r = Reader::new(payload);
    let seqno = r.u64("ckpt seqno")?;
    let clock_now = r.u64("clock")?;
    let solved_epoch = read_opt_u64(&mut r, "solved epoch")?;
    let target_pct = read_opt_u64(&mut r, "target pct")?.map(|v| v as u32);
    let counters = FleetCounters {
        arrivals: r.u64("counters")?,
        placed: r.u64("counters")?,
        departures: r.u64("counters")?,
        load_shifts: r.u64("counters")?,
        stale_events: r.u64("counters")?,
        nodes_onboarded: r.u64("counters")?,
        epoch_solves: r.u64("counters")?,
        replacements: r.u64("counters")?,
        arrivals_shed: r.u64("counters")?,
    };
    let np = read_len(&mut r, "placement count")?;
    let mut placements = Vec::with_capacity(np.min(4096));
    for _ in 0..np {
        placements.push(read_opt_u64(&mut r, "placement")?.map(|v| v as usize));
    }
    let nd = read_len(&mut r, "debt count")?;
    let mut debt = Vec::with_capacity(nd.min(4096));
    for _ in 0..nd {
        debt.push(r.u64("debt")?);
    }
    let next_job_id = r.u64("next job id")?;
    let rejected = r.u64("rejected")?;
    let replaced = r.u64("replaced")?;
    let base_seed = r.u64("base seed")?;
    let nn = read_len(&mut r, "node count")?;
    let mut nodes = Vec::with_capacity(nn.min(4096));
    for _ in 0..nn {
        let id = r.u64("node id")? as usize;
        let seed = r.u64("node seed")?;
        let alive = match r.u8("alive flag")? {
            0 => false,
            1 => true,
            _ => return Err(r.fail("alive flag")),
        };
        let commits = r.u64("commits")?;
        let searches_run = r.u64("searches run")? as usize;
        let samples_spent = r.u64("samples spent")?;
        let nj = read_len(&mut r, "job count")?;
        let mut jobs = Vec::with_capacity(nj.min(1024));
        for _ in 0..nj {
            let id = r.u64("job id")?;
            jobs.push((id, read_job_spec(&mut r)?));
        }
        let last_outcome = match r.u8("outcome presence")? {
            0 => None,
            1 => Some(read_outcome(&mut r, catalog)?),
            _ => return Err(r.fail("outcome presence")),
        };
        nodes.push(NodeSnapshot {
            id,
            seed,
            alive,
            commits,
            searches_run,
            samples_spent,
            jobs,
            last_outcome,
        });
    }
    if !r.done() {
        return Err(r.fail("end of checkpoint"));
    }
    Ok(FleetCheckpoint {
        seqno,
        clock_now,
        solved_epoch,
        target_pct,
        counters,
        placements,
        debt,
        scheduler: SchedulerSnapshot { next_job_id, rejected, replaced, base_seed, nodes },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clite_sim::workload::WorkloadId;

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            TimedEvent::new(
                1,
                FleetEvent::Arrival { spec: JobSpec::latency_critical(WorkloadId::Memcached, 0.3) },
            ),
            TimedEvent::new(
                2,
                FleetEvent::Arrival {
                    spec: JobSpec::latency_critical_scheduled(
                        WorkloadId::Xapian,
                        LoadSchedule::Diurnal { base: 0.4, amplitude: 0.2, period_s: 60.0 },
                    ),
                },
            ),
            TimedEvent::new(3, FleetEvent::Departure { job: 7 }),
            TimedEvent::new(
                4,
                FleetEvent::LoadShift {
                    job: 1,
                    load: LoadSchedule::Steps(vec![(0.0, 0.1), (5.0, 0.5)]),
                },
            ),
            TimedEvent::new(5, FleetEvent::Onboard { nodes: 3 }),
        ]
    }

    #[test]
    fn journal_entries_round_trip() {
        for (i, event) in sample_events().iter().enumerate() {
            let shed = i % 2 == 0;
            let bytes = encode_journal_entry(shed, i as u64, event);
            let entry = decode_journal_entry(&bytes).unwrap();
            assert_eq!(entry.shed, shed);
            assert_eq!(entry.backlog, i as u64);
            assert_eq!(&entry.event, event);
        }
    }

    #[test]
    fn journal_entry_rejects_truncation_at_every_offset() {
        let bytes = encode_journal_entry(false, 2, &sample_events()[1]);
        for cut in 0..bytes.len() {
            assert!(
                decode_journal_entry(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        assert!(decode_journal_entry(&bytes).is_ok());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_journal_entry(&trailing).is_err(), "trailing garbage rejected");
    }

    #[test]
    fn checkpoint_round_trips() {
        let ckpt = FleetCheckpoint {
            seqno: 9,
            clock_now: 17,
            solved_epoch: Some(2),
            target_pct: Some(40),
            counters: FleetCounters {
                arrivals: 5,
                placed: 4,
                arrivals_shed: 1,
                ..Default::default()
            },
            placements: vec![Some(0), None, Some(3)],
            debt: vec![12, 7],
            scheduler: SchedulerSnapshot {
                next_job_id: 5,
                rejected: 1,
                replaced: 0,
                base_seed: 42,
                nodes: vec![NodeSnapshot {
                    id: 0,
                    seed: 42,
                    alive: true,
                    commits: 3,
                    searches_run: 4,
                    samples_spent: 61,
                    jobs: vec![(2, JobSpec::latency_critical(WorkloadId::Memcached, 0.3))],
                    last_outcome: None,
                }],
            },
        };
        let bytes = encode_checkpoint(&ckpt);
        assert_eq!(decode_checkpoint(&bytes).unwrap(), ckpt);
        for cut in 0..bytes.len() {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
    }
}
