use std::fmt;

use clite::CliteError;
use clite_sim::SimError;
use clite_store::StoreError;

/// Error type for the cluster scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The per-node CLITE controller failed.
    Clite(CliteError),
    /// The simulator rejected a request.
    Sim(SimError),
    /// A node id was out of range.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the cluster.
        nodes: usize,
    },
    /// A job id was unknown (already removed or never placed).
    UnknownJob {
        /// The offending job id.
        job: u64,
    },
    /// The cluster was created with zero nodes.
    EmptyCluster,
    /// A durability operation — journal append, checkpoint write, or a
    /// corrupt journal record mid-replay — failed.
    Store(StoreError),
}

impl ClusterError {
    /// Whether this error reports a dead node — directly from the
    /// simulator, or as the fault that forced a degraded controller run.
    /// The scheduler reacts by evicting the node and re-placing its jobs
    /// instead of propagating the error.
    #[must_use]
    pub fn is_node_crash(&self) -> bool {
        match self {
            ClusterError::Clite(e) => e.is_node_crash(),
            ClusterError::Sim(e) => e.is_node_crash(),
            _ => false,
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Clite(e) => write!(f, "controller failure: {e}"),
            ClusterError::Sim(e) => write!(f, "simulator failure: {e}"),
            ClusterError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for {nodes}-node cluster")
            }
            ClusterError::UnknownJob { job } => write!(f, "unknown job id {job}"),
            ClusterError::EmptyCluster => write!(f, "cluster needs at least one node"),
            ClusterError::Store(e) => write!(f, "durability failure: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Clite(e) => Some(e),
            ClusterError::Sim(e) => Some(e),
            ClusterError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CliteError> for ClusterError {
    fn from(e: CliteError) -> Self {
        ClusterError::Clite(e)
    }
}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        ClusterError::Sim(e)
    }
}

impl From<StoreError> for ClusterError {
    fn from(e: StoreError) -> Self {
        ClusterError::Store(e)
    }
}
