//! Serving-side bridge into `clite-learn`: converts committed cluster
//! state into the learn crate's plain feature inputs and ranks candidate
//! nodes with a trained model.
//!
//! The conversion is the only place the feature schema touches cluster
//! types, and it must mirror what the trainer synthesizes
//! (`clite_learn::train`): LC jobs contribute their scheduled load at
//! `t = 0`, BG jobs count as a full load unit in the mix-signature
//! coordinates, and the headroom surrogate reads the node's last committed
//! search trace.

use clite_learn::{extract, FleetInput, Headroom, JobInput, NodeInput, RankingModel};
use clite_sim::prelude::*;
use clite_sim::testbed::TestbedFactory;
use clite_sim::workload::JobClass;

use crate::node::Node;
use crate::stats::ClusterStats;

/// A job's contribution to the mix-signature load coordinates, matching
/// the trainer's convention: LC load fraction at `t = 0`, BG = 1.0.
fn signature_load(spec: &JobSpec) -> f64 {
    match spec.class() {
        JobClass::LatencyCritical => spec.load.at(0.0),
        JobClass::Background => 1.0,
    }
}

/// The incoming job as the extractor sees it.
fn job_input(spec: &JobSpec) -> JobInput {
    let lc = spec.class() == JobClass::LatencyCritical;
    JobInput {
        latency_critical: lc,
        load: if lc { spec.load.at(0.0) } else { 0.0 },
        qos_target_us: if lc {
            QosSpec::derive(spec.workload, &ResourceCatalog::testbed()).target_us
        } else {
            0.0
        },
    }
}

/// One candidate node's committed state as the extractor sees it, for a
/// given incoming job.
fn node_input<F: TestbedFactory>(node: &Node<F>, spec: &JobSpec) -> NodeInput {
    let committed_loads: Vec<f64> = node.jobs().iter().map(|j| signature_load(&j.spec)).collect();
    let (mix_mean, mix_max) =
        clite_learn::features::mix_load_pcts(&committed_loads, signature_load(spec));
    // The node's last committed search trace feeds the GP headroom
    // surrogate: (normalized sample index, Eq. 3 score).
    let headroom = node.last_outcome().map_or_else(Headroom::prior, |o| {
        let n = o.samples.len();
        let trace: Vec<(f64, f64)> = o
            .samples
            .iter()
            .enumerate()
            .map(|(i, s)| (i as f64 / (n - 1).max(1) as f64, s.score.value))
            .collect();
        clite_learn::headroom::predict(&trace)
    });
    NodeInput {
        jobs: node.job_count(),
        lc_jobs: node.jobs().iter().filter(|j| j.spec.class() == JobClass::LatencyCritical).count(),
        lc_load: node.committed_lc_load(),
        bg_perf: node.last_outcome().and_then(|o| {
            o.samples
                .iter()
                .max_by(|a, b| a.score.value.total_cmp(&b.score.value))
                .and_then(|s| s.observation.mean_bg_perf())
        }),
        qos_met: node.last_outcome().is_none_or(|o| o.qos_met()),
        mix_mean_load_pct: mix_mean,
        mix_max_load_pct: mix_max,
        headroom,
    }
}

/// Fleet-wide aggregates from the scheduler's incremental statistics.
fn fleet_input(stats: &ClusterStats) -> FleetInput {
    let alive: Vec<_> = stats.nodes.iter().filter(|n| n.alive).collect();
    let mean_lc_load = if alive.is_empty() {
        0.0
    } else {
        alive.iter().map(|n| n.lc_load).sum::<f64>() / alive.len() as f64
    };
    FleetInput { alive_nodes: alive.len(), mean_lc_load, admission_rate: stats.admission_rate() }
}

/// Scores `candidates` (already capacity-filtered node ids) for `spec`
/// and returns them ranked best-first: model score descending, then least
/// committed LC load, then node id. The zero model ties every score, so
/// the tie-break alone reproduces the stable least-loaded heuristic order
/// — graceful degradation, pinned by `zero_model_matches_least_loaded`.
pub fn rank<F: TestbedFactory>(
    model: &RankingModel,
    spec: &JobSpec,
    nodes: &[Node<F>],
    candidates: &[usize],
    stats: &ClusterStats,
) -> Vec<(usize, f64)> {
    let job = job_input(spec);
    let fleet = fleet_input(stats);
    let mut scored: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&id| {
            let features = extract(&job, &node_input(&nodes[id], spec), &fleet);
            (id, model.score(&features))
        })
        .collect();
    scored.sort_by(|&(a, sa), &(b, sb)| {
        sb.total_cmp(&sa)
            .then_with(|| nodes[a].committed_lc_load().total_cmp(&nodes[b].committed_lc_load()))
            .then_with(|| a.cmp(&b))
    });
    scored
}
