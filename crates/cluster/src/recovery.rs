//! Durable fleet recovery: write-ahead journal, checkpoint/restore, and
//! supervised restarts.
//!
//! [`DurableFleet`] wraps a [`FleetService`] with the WAL discipline the
//! store's log already proved out: every event is framed, checksummed, and
//! flushed to the **event journal** *before* it mutates scheduler state,
//! and every `checkpoint_every` applied events the whole service is
//! snapshotted to an atomically-replaced **checkpoint** blob. Recovery is
//! then mechanical: load the newest valid checkpoint (a corrupt or missing
//! one degrades to an empty fleet), replay the journal suffix through the
//! exact same event-handling code, and continue. Because every input to
//! the scheduler is deterministic — probe seeds are pure functions of
//! committed state, shedding decisions are journaled with the backlog they
//! saw — the recovered run's [`FleetRun`] witness is **byte-identical** to
//! a never-crashed run at any kill point. `crates/cluster/tests/recovery.rs`
//! proves this with a kill-at-every-k sweep.
//!
//! The identity claim holds for storeless fleets (or fleets recovered with
//! a store warmed to the same content): a shared observation store is
//! deliberately *not* checkpointed — it is a performance cache whose loss
//! costs windows, not correctness — so recovering with a fresh store can
//! legitimately spend different window counts. See DESIGN.md §15.
//!
//! [`supervise`] adds the process-level rung of the degradation ladder:
//! restart a crashing fleet loop with capped exponential backoff plus
//! deterministic jitter, escalating the [`DegradationLevel`] until a
//! bounded restart budget is exhausted.

use std::path::{Path, PathBuf};

use clite_sim::testbed::{ServerFactory, TestbedFactory};
use clite_store::{blob, BlobRead, EventJournal, StoreError, StoreHandle};
use clite_telemetry::{Event, Telemetry};

use crate::event::TimedEvent;
use crate::fleet::{backlog_at, EventOutcome, FleetConfig, FleetRun, FleetService};
use crate::wire::{
    decode_checkpoint, decode_journal_entry, encode_checkpoint, encode_journal_entry, CKPT_MAGIC,
    CKPT_VERSION,
};
use crate::ClusterError;

pub use clite_faults::{CrashPlan, CrashPoint};

/// Durability policy for a [`DurableFleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Write a checkpoint every this many applied events (`0` = journal
    /// only, recovery replays from the start).
    pub checkpoint_every: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        Self { checkpoint_every: 8 }
    }
}

/// How a [`DurableFleet::run`] ended.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableOutcome {
    /// The trace ran to completion.
    Completed(FleetRun),
    /// The injected [`CrashPlan`] fired; the process "died" with this many
    /// events applied (the journal may be one record ahead).
    Killed {
        /// Events applied before the kill.
        applied: u64,
    },
}

/// What recovery found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Seqno of the checkpoint recovery started from (0 = none usable).
    pub checkpoint_seqno: u64,
    /// Journal records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Whether the journal had a torn tail or other damage that recovery
    /// truncated away.
    pub journal_damaged: bool,
}

fn io_err(op: &'static str, e: &std::io::Error) -> ClusterError {
    ClusterError::Store(StoreError::Io { op, message: e.to_string() })
}

/// A fleet service with a write-ahead event journal and periodic
/// checkpoints, recoverable to a byte-identical state after a crash at
/// any point.
#[derive(Debug)]
pub struct DurableFleet<F: TestbedFactory = ServerFactory> {
    service: FleetService<F>,
    journal: EventJournal,
    checkpoint_path: PathBuf,
    durable: DurableConfig,
    /// Events applied to the service so far (equals the next trace index
    /// to process; the journal's next seqno may be one ahead after a
    /// journaled-but-unapplied crash).
    applied: u64,
    placements: Vec<Option<usize>>,
    recovery: Option<RecoveryInfo>,
}

fn journal_path(dir: &Path) -> PathBuf {
    dir.join("fleet.journal")
}

fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("fleet.ckpt")
}

impl<F: TestbedFactory + Sync + Clone> DurableFleet<F> {
    /// Creates a fresh durable fleet in `dir`, truncating any journal or
    /// checkpoint left by a previous run.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes and
    /// [`ClusterError::Store`] for filesystem failures.
    pub fn create(
        nodes: usize,
        config: FleetConfig,
        seed: u64,
        factory: F,
        dir: &Path,
        durable: DurableConfig,
    ) -> Result<Self, ClusterError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create journal dir", &e))?;
        for stale in [journal_path(dir), checkpoint_path(dir)] {
            match std::fs::remove_file(&stale) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err("truncate journal dir", &e)),
            }
        }
        let (journal, _) = EventJournal::open(&journal_path(dir))?;
        let service = FleetService::with_factory(nodes, config, seed, factory)?;
        Ok(Self {
            service,
            journal,
            checkpoint_path: checkpoint_path(dir),
            durable,
            applied: 0,
            placements: Vec::new(),
            recovery: None,
        })
    }

    /// Recovers a durable fleet from `dir`: newest valid checkpoint plus
    /// the journal suffix, replayed through the normal event-handling
    /// code with the journaled backlog values. A missing or corrupt
    /// checkpoint degrades to a full-journal replay from a fresh
    /// `nodes`/`seed` fleet; it never aborts recovery.
    ///
    /// `store`, when given, is attached to the recovered scheduler — see
    /// the module docs for why the byte-identity guarantee is storeless.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Store`] for filesystem failures or a
    /// checksummed-but-undecodable journal record, and propagates replay
    /// failures.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        nodes: usize,
        config: FleetConfig,
        seed: u64,
        factory: F,
        dir: &Path,
        durable: DurableConfig,
        store: Option<StoreHandle>,
        telemetry: &Telemetry<'_>,
    ) -> Result<Self, ClusterError> {
        let (journal, journal_rec) = EventJournal::open(&journal_path(dir))?;
        let ckpt_path = checkpoint_path(dir);
        let checkpoint = match blob::read(&ckpt_path, CKPT_MAGIC, CKPT_VERSION)? {
            BlobRead::Valid(bytes) => decode_checkpoint(&bytes).ok(),
            BlobRead::Missing | BlobRead::Corrupt { .. } => None,
        };
        // A checkpoint ahead of the (possibly truncated) journal would
        // skip events recovery cannot replay; fall back to full replay.
        let checkpoint = checkpoint.filter(|c| (c.seqno as usize) <= journal_rec.records.len());
        let (service, placements, checkpoint_seqno) = match checkpoint {
            Some(ckpt) => {
                let seqno = ckpt.seqno;
                let (service, placements) =
                    FleetService::restore(ckpt, config, factory, store.clone())?;
                (service, placements, seqno)
            }
            None => {
                let mut service = FleetService::with_factory(nodes, config, seed, factory)?;
                if let Some(handle) = store.clone() {
                    service = service.with_store(handle);
                }
                (service, Vec::new(), 0)
            }
        };
        let mut fleet = Self {
            service,
            journal,
            checkpoint_path: ckpt_path,
            durable,
            applied: checkpoint_seqno,
            placements,
            recovery: None,
        };
        let mut replayed = 0u64;
        for record in journal_rec.records.iter().skip(checkpoint_seqno as usize) {
            let entry = decode_journal_entry(&record.payload).map_err(|e| {
                ClusterError::Store(StoreError::Io {
                    op: "decode journal entry",
                    message: e.to_string(),
                })
            })?;
            // Replay is silent: the original run already emitted these
            // events' telemetry.
            let outcome = fleet.service.handle_with_backlog(
                &entry.event,
                entry.backlog,
                &Telemetry::disabled(),
            )?;
            fleet.push_placement(&outcome);
            fleet.applied += 1;
            replayed += 1;
        }
        telemetry.emit(Event::RecoveryReplayed { checkpoint_seqno, replayed });
        fleet.recovery = Some(RecoveryInfo {
            checkpoint_seqno,
            replayed,
            journal_damaged: journal_rec.damaged(),
        });
        Ok(fleet)
    }

    /// Attaches an observation store to every node (see the module docs:
    /// the byte-identity guarantee is storeless).
    #[must_use]
    pub fn with_store(mut self, store: impl Into<StoreHandle>) -> Self {
        self.service = self.service.with_store(store);
        self
    }

    /// The wrapped service.
    #[must_use]
    pub fn service(&self) -> &FleetService<F> {
        &self.service
    }

    /// Events applied so far.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// What recovery found, when this fleet was built by
    /// [`DurableFleet::recover`].
    #[must_use]
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.recovery
    }

    /// Shed arrivals accounted in the journal so far: records whose
    /// pre-apply disposition byte says "shed". The overload experiment
    /// audits this against the service counter.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Store`] on an undecodable record.
    pub fn journaled_sheds(dir: &Path) -> Result<u64, ClusterError> {
        let (_, recovered) = EventJournal::open(&journal_path(dir))?;
        let mut sheds = 0;
        for record in &recovered.records {
            let entry = decode_journal_entry(&record.payload).map_err(|e| {
                ClusterError::Store(StoreError::Io {
                    op: "decode journal entry",
                    message: e.to_string(),
                })
            })?;
            sheds += u64::from(entry.shed);
        }
        Ok(sheds)
    }

    fn push_placement(&mut self, outcome: &EventOutcome) {
        match outcome {
            EventOutcome::Placed(p) => self.placements.push(Some(p.node)),
            EventOutcome::Rejected { .. } | EventOutcome::Shed { .. } => {
                self.placements.push(None);
            }
            _ => {}
        }
    }

    fn write_checkpoint(&self, telemetry: &Telemetry<'_>) -> Result<(), ClusterError> {
        let checkpoint = self.service.checkpoint(self.applied, &self.placements);
        let payload = encode_checkpoint(&checkpoint);
        blob::save(&self.checkpoint_path, CKPT_MAGIC, CKPT_VERSION, &payload)?;
        telemetry
            .emit(Event::CheckpointWritten { seqno: self.applied, bytes: payload.len() as u64 });
        Ok(())
    }

    /// Runs the trace from wherever this fleet stands (`applied` events
    /// in), journaling each event ahead of applying it and checkpointing
    /// on the configured cadence. An injected [`CrashPlan`] simulates a
    /// process kill at an exact WAL boundary — after the journal append
    /// ([`CrashPoint::Journaled`]) or after the apply
    /// ([`CrashPoint::Applied`]) — by returning [`DurableOutcome::Killed`]
    /// with all in-memory state abandoned, exactly as a real kill would.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Store`] for journal/checkpoint IO failures
    /// and propagates non-crash scheduler failures.
    pub fn run(
        &mut self,
        trace: &[TimedEvent],
        crash: Option<&CrashPlan>,
        telemetry: &Telemetry<'_>,
    ) -> Result<DurableOutcome, ClusterError> {
        for (index, event) in trace.iter().enumerate().skip(self.applied as usize) {
            let seqno = index as u64;
            let backlog = backlog_at(trace, index);
            let shed = self.service.would_shed(&event.event, backlog);
            let payload = encode_journal_entry(shed, backlog, event);
            self.journal.append(seqno, &payload)?;
            telemetry.emit(Event::JournalAppended { seqno, bytes: payload.len() as u64 });
            if crash.is_some_and(|c| c.fires(seqno, CrashPoint::Journaled)) {
                return Ok(DurableOutcome::Killed { applied: self.applied });
            }
            let outcome = self.service.handle_with_backlog(event, backlog, telemetry)?;
            debug_assert_eq!(
                matches!(outcome, EventOutcome::Shed { .. }),
                shed,
                "journaled disposition must match the applied one"
            );
            self.push_placement(&outcome);
            self.applied += 1;
            if crash.is_some_and(|c| c.fires(seqno, CrashPoint::Applied)) {
                return Ok(DurableOutcome::Killed { applied: self.applied });
            }
            if self.durable.checkpoint_every > 0
                && self.applied.is_multiple_of(self.durable.checkpoint_every)
            {
                self.write_checkpoint(telemetry)?;
            }
        }
        Ok(DurableOutcome::Completed(FleetRun {
            placements: self.placements.clone(),
            counters: self.service.counters(),
            stats: self.service.stats(),
        }))
    }
}

// ── supervised restarts ──────────────────────────────────────────────────

/// Restart policy for [`supervise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Restarts allowed after the initial attempt.
    pub max_restarts: u32,
    /// Base of the exponential backoff before restart `n`:
    /// `base_backoff_ticks << (n-1)`, capped at
    /// [`SupervisorConfig::max_backoff_ticks`].
    pub base_backoff_ticks: u64,
    /// Cap on the exponential backoff term.
    pub max_backoff_ticks: u64,
    /// Maximum deterministic jitter added per restart (`0..=jitter_ticks`,
    /// seed-derived — decorrelates restart storms without wall clock).
    pub jitter_ticks: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            base_backoff_ticks: 1,
            max_backoff_ticks: 16,
            jitter_ticks: 0,
            seed: 0,
        }
    }
}

impl SupervisorConfig {
    /// Backoff (in ticks) recorded before restart `attempt` (1-based):
    /// capped exponential plus deterministic jitter. Mirrors
    /// `RecoveryConfig::backoff_for` one layer up the ladder.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base_backoff_ticks == 0 {
            return 0;
        }
        let shift = (attempt - 1).min(63);
        let exp = self
            .base_backoff_ticks
            .checked_shl(shift)
            .unwrap_or(self.max_backoff_ticks)
            .min(self.max_backoff_ticks.max(self.base_backoff_ticks));
        let jitter = if self.jitter_ticks == 0 {
            0
        } else {
            let mut z = self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % (self.jitter_ticks + 1)
        };
        exp + jitter
    }

    /// Where on the degradation ladder restart `attempt` runs: the first
    /// attempt is normal, retries harden the recovery policy, and the
    /// final budgeted restart drops to the safe fallback.
    #[must_use]
    pub fn level_for(&self, attempt: u32) -> DegradationLevel {
        if attempt == 0 {
            DegradationLevel::Normal
        } else if attempt < self.max_restarts {
            DegradationLevel::Hardened
        } else {
            DegradationLevel::SafeFallback
        }
    }
}

/// The degradation ladder a supervised fleet descends across restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationLevel {
    /// Default configuration.
    Normal,
    /// Chaos-hardened recovery policy (outlier guard armed; see
    /// `RecoveryConfig::hardened`).
    Hardened,
    /// Last rung: the attempt should run the safe-fallback policy
    /// (equal-share partitions, minimal search) so *something* completes.
    SafeFallback,
}

/// One attempt's record in a [`RestartReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RestartAttempt {
    /// Attempt number (0 = initial run).
    pub attempt: u32,
    /// Backoff recorded before the attempt, in ticks.
    pub backoff_ticks: u64,
    /// Degradation level the attempt ran at.
    pub level: DegradationLevel,
    /// The error that ended the attempt (`None` for the success).
    pub error: Option<String>,
}

/// The outcome of a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartReport {
    /// Every attempt in order, including the successful one.
    pub attempts: Vec<RestartAttempt>,
    /// The successful run, or `None` when the restart budget ran out.
    pub run: Option<FleetRun>,
}

impl RestartReport {
    /// Total backoff recorded across all restarts, in ticks.
    #[must_use]
    pub fn total_backoff_ticks(&self) -> u64 {
        self.attempts.iter().map(|a| a.backoff_ticks).sum()
    }
}

/// Runs `attempt_fn` under the restart policy: the closure gets the
/// attempt number and the [`DegradationLevel`] it should run at, and is
/// retried — with capped exponential backoff recorded in ticks (this is a
/// simulated fleet; nothing sleeps) and [`Event::RestartAttempted`]
/// emitted per restart — until it succeeds or the budget is exhausted.
pub fn supervise<E>(
    config: &SupervisorConfig,
    telemetry: &Telemetry<'_>,
    mut attempt_fn: E,
) -> RestartReport
where
    E: FnMut(u32, DegradationLevel) -> Result<FleetRun, ClusterError>,
{
    let mut attempts = Vec::new();
    for attempt in 0..=config.max_restarts {
        let level = config.level_for(attempt);
        let backoff_ticks = config.backoff_for(attempt);
        if attempt > 0 {
            telemetry.emit(Event::RestartAttempted { attempt, backoff_ticks });
        }
        match attempt_fn(attempt, level) {
            Ok(run) => {
                attempts.push(RestartAttempt { attempt, backoff_ticks, level, error: None });
                return RestartReport { attempts, run: Some(run) };
            }
            Err(e) => {
                attempts.push(RestartAttempt {
                    attempt,
                    backoff_ticks,
                    level,
                    error: Some(e.to_string()),
                });
            }
        }
    }
    RestartReport { attempts, run: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, TraceConfig};
    use clite_telemetry::MemoryRecorder;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("clite-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_trace() -> Vec<TimedEvent> {
        generate(
            &TraceConfig {
                events: 10,
                arrival_weight: 5,
                departure_weight: 2,
                load_shift_weight: 1,
                ..TraceConfig::default()
            },
            7,
        )
    }

    fn config() -> FleetConfig {
        FleetConfig::mean_field(4, 2)
    }

    #[test]
    fn durable_run_matches_plain_service() {
        let dir = tempdir("plain");
        let trace = small_trace();
        let mut durable =
            DurableFleet::create(3, config(), 42, ServerFactory, &dir, DurableConfig::default())
                .unwrap();
        let DurableOutcome::Completed(durable_run) =
            durable.run(&trace, None, &Telemetry::disabled()).unwrap()
        else {
            panic!("no crash plan, must complete");
        };
        let mut plain = FleetService::new(3, config(), 42).unwrap();
        let plain_run = plain.run(&trace, &Telemetry::disabled()).unwrap();
        assert_eq!(durable_run, plain_run, "journaling must not perturb the run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_then_recover_is_byte_identical() {
        let trace = small_trace();
        let baseline = {
            let mut service = FleetService::new(3, config(), 42).unwrap();
            service.run(&trace, &Telemetry::disabled()).unwrap()
        };
        for point in [CrashPoint::Journaled, CrashPoint::Applied] {
            let dir = tempdir(match point {
                CrashPoint::Journaled => "kill-j",
                CrashPoint::Applied => "kill-a",
            });
            let mut fleet = DurableFleet::create(
                3,
                config(),
                42,
                ServerFactory,
                &dir,
                DurableConfig { checkpoint_every: 3 },
            )
            .unwrap();
            let plan = CrashPlan { after_event: 4, point };
            let killed = fleet.run(&trace, Some(&plan), &Telemetry::disabled()).unwrap();
            assert!(matches!(killed, DurableOutcome::Killed { .. }));
            drop(fleet);

            let sink = MemoryRecorder::new();
            let telemetry = Telemetry::new(&sink);
            let mut recovered = DurableFleet::recover(
                3,
                config(),
                42,
                ServerFactory,
                &dir,
                DurableConfig { checkpoint_every: 3 },
                None,
                &telemetry,
            )
            .unwrap();
            assert_eq!(sink.count_kind("recovery_replayed"), 1);
            let DurableOutcome::Completed(run) =
                recovered.run(&trace, None, &Telemetry::disabled()).unwrap()
            else {
                panic!("second run has no crash plan");
            };
            assert_eq!(run, baseline, "recovered run diverged at {point:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_full_replay() {
        let dir = tempdir("corrupt-ckpt");
        let trace = small_trace();
        let baseline = {
            let mut service = FleetService::new(3, config(), 42).unwrap();
            service.run(&trace, &Telemetry::disabled()).unwrap()
        };
        let mut fleet = DurableFleet::create(
            3,
            config(),
            42,
            ServerFactory,
            &dir,
            DurableConfig { checkpoint_every: 2 },
        )
        .unwrap();
        let plan = CrashPlan { after_event: 6, point: CrashPoint::Applied };
        fleet.run(&trace, Some(&plan), &Telemetry::disabled()).unwrap();
        drop(fleet);
        // Smash the checkpoint: recovery must fall back to replaying the
        // whole journal, not abort.
        std::fs::write(dir.join("fleet.ckpt"), b"garbage").unwrap();
        let mut recovered = DurableFleet::recover(
            3,
            config(),
            42,
            ServerFactory,
            &dir,
            DurableConfig { checkpoint_every: 2 },
            None,
            &Telemetry::disabled(),
        )
        .unwrap();
        let info = recovered.recovery_info().unwrap();
        assert_eq!(info.checkpoint_seqno, 0, "corrupt checkpoint → full replay");
        assert_eq!(info.replayed, 7, "all journaled events replayed");
        let DurableOutcome::Completed(run) =
            recovered.run(&trace, None, &Telemetry::disabled()).unwrap()
        else {
            panic!("must complete");
        };
        assert_eq!(run, baseline);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervisor_escalates_and_bounds_restarts() {
        let sup = SupervisorConfig { max_restarts: 3, ..SupervisorConfig::default() };
        assert_eq!(sup.level_for(0), DegradationLevel::Normal);
        assert_eq!(sup.level_for(1), DegradationLevel::Hardened);
        assert_eq!(sup.level_for(3), DegradationLevel::SafeFallback);
        assert_eq!(sup.backoff_for(1), 1);
        assert_eq!(sup.backoff_for(2), 2);
        assert_eq!(sup.backoff_for(3), 4);
        assert_eq!(sup.backoff_for(40), 16, "capped, no overflow");

        let sink = MemoryRecorder::new();
        let telemetry = Telemetry::new(&sink);
        // Fails twice, then succeeds on the third attempt.
        let mut calls = 0;
        let report = supervise(&sup, &telemetry, |attempt, level| {
            calls += 1;
            if attempt < 2 {
                assert_ne!(level, DegradationLevel::SafeFallback);
                Err(ClusterError::EmptyCluster)
            } else {
                let mut service = FleetService::new(2, FleetConfig::default(), 5).unwrap();
                service.run(&small_trace()[..2], &Telemetry::disabled())
            }
        });
        assert_eq!(calls, 3);
        assert!(report.run.is_some());
        assert_eq!(report.attempts.len(), 3);
        assert_eq!(sink.count_kind("restart_attempted"), 2);
        assert_eq!(report.total_backoff_ticks(), 1 + 2);

        // A permanently failing loop exhausts the budget at SafeFallback.
        let report =
            supervise(&sup, &Telemetry::disabled(), |_, _| Err(ClusterError::EmptyCluster));
        assert!(report.run.is_none());
        assert_eq!(report.attempts.len(), 4, "initial + 3 restarts");
        assert_eq!(report.attempts.last().unwrap().level, DegradationLevel::SafeFallback);
    }
}
