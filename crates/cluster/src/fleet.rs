//! The fleet service: a long-running, event-driven scheduler loop.
//!
//! Where [`crate::scheduler::ClusterScheduler`] answers one admission
//! question at a time, [`FleetService`] runs the warehouse: it consumes a
//! time-ordered stream of [`FleetEvent`]s — arrivals, departures, load
//! shifts, node onboarding — advancing a deterministic [`SimClock`] and
//! driving the existing plan/record/commit `Node` machinery per event.
//!
//! ## Mean-field epoch policy
//!
//! Probing every node for every arrival is O(fleet) searches per event —
//! unaffordable at thousands of nodes. Following the mean-field
//! core-allocation results (Li/Harchol-Balter/Berg), the service instead
//! *solves once and applies per-node*: once per epoch it computes a
//! single target LC load from the incrementally maintained
//! [`ClusterStats`] (mean committed load plus a headroom margin) and
//! installs it as a [`PlacementPolicy::TargetLoad`] template; per event,
//! candidate ordering follows the template and the scheduler's
//! `probe_limit` caps local refinement to a handful of CLITE searches.
//! Every input to the template is itself a deterministic function of the
//! event history, so the epoch policy preserves byte-identity.
//!
//! ## Determinism contract
//!
//! For a fixed trace and seed the fleet's placements and statistics are
//! byte-identical across: serial vs threaded admission (inherited from
//! the PR 2/5 discipline — probe seeds are pure functions of committed
//! state), and any store shard count (lookups depend only on per-mix
//! bucket content). `crates/cluster/tests/fleet.rs` pins both at fleet
//! scale.

use std::collections::VecDeque;

use clite_sim::testbed::{ServerFactory, TestbedFactory};
use clite_sim::workload::JobClass;
use clite_store::StoreHandle;
use clite_telemetry::{Event, MetricsRegistry, Telemetry};

use crate::clock::SimClock;
use crate::event::{FleetEvent, TimedEvent};
use crate::placement::PlacementPolicy;
use crate::scheduler::{ClusterScheduler, Placement, SchedulerConfig};
use crate::stats::ClusterStats;
use crate::wire::FleetCheckpoint;
use crate::ClusterError;

/// Load-shedding policy: when and which arrivals the service rejects
/// without probing a single node.
///
/// Both triggers are pure functions of committed state and the event
/// stream — never wall clock — so shedding decisions replay byte-
/// identically:
///
/// * **Backlog**: the number of same-tick events still queued behind the
///   arrival (an arrival burst). Supplied by the caller, recorded in the
///   journal, so recovery sees the same value.
/// * **Window debt**: the sum of observation windows the last
///   [`debt_horizon`](OverloadConfig::debt_horizon) admissions cost. A run
///   of expensive admissions is the deterministic analogue of rising
///   admission latency.
///
/// Only low-priority (background-class) arrivals are ever shed; latency-
/// critical arrivals always get their probes. Defaults disable both
/// triggers, so a service without an overload policy is byte-identical to
/// the pre-shedding code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Shed when the same-tick backlog behind an arrival reaches this
    /// depth. `None` disables the trigger.
    pub shed_backlog: Option<u64>,
    /// Shed when the window debt over the last `debt_horizon` admissions
    /// reaches this many observation windows. `None` disables the trigger.
    pub shed_window_debt: Option<u64>,
    /// How many recent admissions the debt window covers.
    pub debt_horizon: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self { shed_backlog: None, shed_window_debt: None, debt_horizon: 8 }
    }
}

impl OverloadConfig {
    /// Whether any shedding trigger is armed.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.shed_backlog.is_some() || self.shed_window_debt.is_some()
    }
}

/// Fleet-service configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Scheduler configuration (placement, admission mode, CLITE budget,
    /// probe cap).
    pub scheduler: SchedulerConfig,
    /// Re-solve the mean-field placement template every this many clock
    /// ticks; `0` keeps the configured placement policy untouched.
    pub epoch_ticks: u64,
    /// Headroom added to the solved mean LC load (percentage points):
    /// the target each node is steered toward leaves room for the next
    /// few arrivals before the template is re-solved.
    pub target_margin_pct: u32,
    /// Load-shedding policy (disabled by default).
    pub overload: OverloadConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            epoch_ticks: 0,
            target_margin_pct: 10,
            overload: OverloadConfig::default(),
        }
    }
}

impl FleetConfig {
    /// A config with the mean-field epoch policy enabled: template
    /// re-solved every `epoch_ticks`, local refinement capped at
    /// `probe_limit` candidate probes per admission.
    #[must_use]
    pub fn mean_field(epoch_ticks: u64, probe_limit: usize) -> Self {
        Self {
            scheduler: SchedulerConfig {
                probe_limit: Some(probe_limit),
                ..SchedulerConfig::default()
            },
            epoch_ticks,
            target_margin_pct: 10,
            overload: OverloadConfig::default(),
        }
    }

    /// [`mean_field`](FleetConfig::mean_field) with a trained placement
    /// model: candidate ordering uses [`PlacementPolicy::Learned`] instead
    /// of the solved target template. The epoch loop keeps solving the
    /// fleet-wide target for gauge export, but never overwrites the
    /// learned policy — the model's fleet features absorb the aggregate
    /// state the template would have encoded.
    #[must_use]
    pub fn mean_field_learned(
        epoch_ticks: u64,
        probe_limit: usize,
        model: std::sync::Arc<clite_learn::RankingModel>,
    ) -> Self {
        Self {
            scheduler: SchedulerConfig {
                placement: PlacementPolicy::Learned { model },
                probe_limit: Some(probe_limit),
                ..SchedulerConfig::default()
            },
            epoch_ticks,
            target_margin_pct: 10,
            overload: OverloadConfig::default(),
        }
    }

    /// Returns a copy with the given load-shedding policy.
    #[must_use]
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }
}

/// What handling one event did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventOutcome {
    /// An arrival was admitted.
    Placed(Placement),
    /// An arrival was rejected fleet-wide.
    Rejected {
        /// The job id the arrival was assigned.
        job: u64,
    },
    /// A departure (or load shift) removed/re-partitioned a live job.
    Applied {
        /// The affected job id.
        job: u64,
    },
    /// The referenced job was not live (rejected at arrival or lost with
    /// a crashed node); the event was a no-op.
    Stale {
        /// The referenced job id.
        job: u64,
    },
    /// New nodes joined the fleet.
    Onboarded {
        /// Ids of the added nodes.
        nodes: Vec<usize>,
    },
    /// A low-priority arrival was shed by the overload policy without
    /// probing any node (it still consumed a job id).
    Shed {
        /// The job id the arrival was assigned.
        job: u64,
    },
}

/// Counters summarizing a service's event history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounters {
    /// Arrivals handled.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub placed: u64,
    /// Departures applied.
    pub departures: u64,
    /// Load shifts applied.
    pub load_shifts: u64,
    /// Stale departure/load-shift no-ops.
    pub stale_events: u64,
    /// Nodes onboarded after construction.
    pub nodes_onboarded: u64,
    /// Mean-field template re-solves.
    pub epoch_solves: u64,
    /// Crash-orphaned jobs successfully re-homed on surviving nodes.
    pub replacements: u64,
    /// Low-priority arrivals shed by the overload policy.
    pub arrivals_shed: u64,
}

/// The result of running a trace to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Per-arrival outcome, in arrival order: the hosting node, or `None`
    /// if rejected. This is the byte-identity witness the determinism
    /// tests compare.
    pub placements: Vec<Option<usize>>,
    /// Event counters.
    pub counters: FleetCounters,
    /// Final fleet statistics.
    pub stats: ClusterStats,
}

/// A long-running, event-driven colocation service over a scheduler.
#[derive(Debug)]
pub struct FleetService<F: TestbedFactory = ServerFactory> {
    scheduler: ClusterScheduler<F>,
    config: FleetConfig,
    clock: SimClock,
    /// Last epoch a template was solved for (`None` before the first).
    solved_epoch: Option<u64>,
    /// The currently installed template target (for gauge export).
    target_pct: Option<u32>,
    counters: FleetCounters,
    /// Observation-window cost of the most recent admissions (newest at
    /// the back), capped at the overload policy's debt horizon.
    debt: VecDeque<u64>,
}

impl FleetService {
    /// A fleet of `nodes` simulated servers.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes.
    pub fn new(nodes: usize, config: FleetConfig, seed: u64) -> Result<Self, ClusterError> {
        Self::with_factory(nodes, config, seed, ServerFactory)
    }
}

impl<F: TestbedFactory + Sync + Clone> FleetService<F> {
    /// A fleet whose nodes probe on testbeds built by `factory`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes.
    pub fn with_factory(
        nodes: usize,
        config: FleetConfig,
        seed: u64,
        factory: F,
    ) -> Result<Self, ClusterError> {
        let scheduler =
            ClusterScheduler::with_factory(nodes, config.scheduler.clone(), seed, factory)?;
        Ok(Self {
            scheduler,
            config,
            clock: SimClock::new(),
            solved_epoch: None,
            target_pct: None,
            counters: FleetCounters::default(),
            debt: VecDeque::new(),
        })
    }

    /// Rebuilds a service from a checkpoint, returning it together with
    /// the per-arrival placements recorded up to the checkpoint (the
    /// witness prefix the caller extends during replay). The mean-field
    /// template is reinstalled from the checkpointed target, so candidate
    /// ordering resumes exactly where the crashed run left it.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for a checkpoint with no
    /// nodes.
    pub fn restore(
        checkpoint: FleetCheckpoint,
        config: FleetConfig,
        factory: F,
        store: Option<StoreHandle>,
    ) -> Result<(Self, Vec<Option<usize>>), ClusterError> {
        let scheduler = ClusterScheduler::restore(
            checkpoint.scheduler,
            config.scheduler.clone(),
            factory,
            store,
        )?;
        let mut clock = SimClock::new();
        clock.advance_to(checkpoint.clock_now);
        let mut service = Self {
            scheduler,
            config,
            clock,
            solved_epoch: checkpoint.solved_epoch,
            target_pct: checkpoint.target_pct,
            counters: checkpoint.counters,
            debt: checkpoint.debt.into(),
        };
        if let Some(target_pct) = service.target_pct {
            if !matches!(service.scheduler.config().placement, PlacementPolicy::Learned { .. }) {
                service.scheduler.set_placement(PlacementPolicy::TargetLoad { target_pct });
            }
        }
        Ok((service, checkpoint.placements))
    }

    /// Captures a checkpoint of the whole service at event boundary
    /// `seqno`, including the caller's witness prefix (`placements`).
    #[must_use]
    pub fn checkpoint(&self, seqno: u64, placements: &[Option<usize>]) -> FleetCheckpoint {
        FleetCheckpoint {
            seqno,
            clock_now: self.clock.now(),
            solved_epoch: self.solved_epoch,
            target_pct: self.target_pct,
            counters: self.counters(),
            placements: placements.to_vec(),
            debt: self.debt.iter().copied().collect(),
            scheduler: self.scheduler.snapshot(),
        }
    }

    /// Attaches an observation store (single-lock or sharded) to every
    /// node, current and future.
    #[must_use]
    pub fn with_store(mut self, store: impl Into<StoreHandle>) -> Self {
        self.scheduler = self.scheduler.with_store(store);
        self
    }

    /// The underlying scheduler.
    #[must_use]
    pub fn scheduler(&self) -> &ClusterScheduler<F> {
        &self.scheduler
    }

    /// The deterministic clock.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Event counters so far (re-placements are read live from the
    /// scheduler, which owns the orphan re-homing loops).
    #[must_use]
    pub fn counters(&self) -> FleetCounters {
        FleetCounters { replacements: self.scheduler.replaced(), ..self.counters }
    }

    /// Current fleet statistics (incrementally maintained).
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        self.scheduler.stats()
    }

    /// Whether the overload policy would shed this event right now: a
    /// background-class arrival while either trigger (same-tick backlog or
    /// recent window debt) is firing. Pure — callers journal the answer
    /// *before* applying the event, so recovery replays the same decision.
    #[must_use]
    pub fn would_shed(&self, event: &FleetEvent, backlog: u64) -> bool {
        let FleetEvent::Arrival { spec } = event else {
            return false;
        };
        if spec.class() != JobClass::Background {
            return false;
        }
        let overload = &self.config.overload;
        overload.shed_backlog.is_some_and(|depth| backlog >= depth)
            || overload.shed_window_debt.is_some_and(|debt| self.debt.iter().sum::<u64>() >= debt)
    }

    /// Records one admission's window cost in the overload debt window.
    fn note_admission_debt(&mut self, windows: u64) {
        let horizon = self.config.overload.debt_horizon.max(1);
        if self.debt.len() >= horizon {
            self.debt.pop_front();
        }
        self.debt.push_back(windows);
    }

    /// Handles one event: advances the clock, re-solves the mean-field
    /// template on epoch boundaries, and drives the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates non-crash controller/simulator failures. Node crashes
    /// are absorbed (eviction + re-placement), stale job references are
    /// no-ops.
    pub fn handle(
        &mut self,
        event: &TimedEvent,
        telemetry: &Telemetry<'_>,
    ) -> Result<EventOutcome, ClusterError> {
        self.handle_with_backlog(event, 0, telemetry)
    }

    /// [`handle`](FleetService::handle) with the same-tick arrival backlog
    /// supplied, enabling the overload policy's backlog trigger. The
    /// durable fleet computes the backlog from the trace and journals it
    /// with the event, so recovery replays identical shedding decisions.
    ///
    /// # Errors
    ///
    /// Propagates non-crash controller/simulator failures.
    pub fn handle_with_backlog(
        &mut self,
        event: &TimedEvent,
        backlog: u64,
        telemetry: &Telemetry<'_>,
    ) -> Result<EventOutcome, ClusterError> {
        self.clock.advance_to(event.at);
        self.maybe_solve_epoch();
        match &event.event {
            FleetEvent::Arrival { spec } => {
                self.counters.arrivals += 1;
                let workload = spec.workload.name().to_owned();
                if self.would_shed(&event.event, backlog) {
                    let job = self.scheduler.note_shed();
                    self.counters.arrivals_shed += 1;
                    telemetry.emit(Event::ArrivalShed { job, backlog });
                    telemetry.emit(Event::JobArrived { job, workload });
                    return Ok(EventOutcome::Shed { job });
                }
                let spent_before = self.scheduler.total_samples_spent();
                let placed = self.scheduler.submit_with(spec.clone(), telemetry)?;
                self.note_admission_debt(
                    self.scheduler.total_samples_spent().saturating_sub(spent_before),
                );
                match placed {
                    Some(placement) => {
                        self.counters.placed += 1;
                        telemetry.emit(Event::JobArrived { job: placement.job_id, workload });
                        Ok(EventOutcome::Placed(placement))
                    }
                    None => {
                        // The scheduler consumed an id even though no node
                        // accepted the job: arrival k always has id k.
                        let job = self.counters.arrivals - 1;
                        telemetry.emit(Event::JobArrived { job, workload });
                        Ok(EventOutcome::Rejected { job })
                    }
                }
            }
            FleetEvent::Departure { job } => match self.scheduler.remove_with(*job, telemetry) {
                Ok(()) => {
                    self.counters.departures += 1;
                    telemetry.emit(Event::JobDeparted { job: *job });
                    Ok(EventOutcome::Applied { job: *job })
                }
                Err(ClusterError::UnknownJob { .. }) => {
                    self.counters.stale_events += 1;
                    Ok(EventOutcome::Stale { job: *job })
                }
                Err(e) => Err(e),
            },
            FleetEvent::LoadShift { job, load } => {
                match self.scheduler.update_load_with(*job, load.clone(), telemetry) {
                    Ok(()) => {
                        self.counters.load_shifts += 1;
                        let load_pct = (load.at(0.0) * 100.0).round().max(0.0) as u32;
                        telemetry.emit(Event::LoadShift { job: *job, load_pct });
                        Ok(EventOutcome::Applied { job: *job })
                    }
                    Err(ClusterError::UnknownJob { .. }) => {
                        self.counters.stale_events += 1;
                        Ok(EventOutcome::Stale { job: *job })
                    }
                    Err(e) => Err(e),
                }
            }
            FleetEvent::Onboard { nodes } => {
                let ids = self.scheduler.add_nodes(*nodes);
                self.counters.nodes_onboarded += ids.len() as u64;
                for &node in &ids {
                    telemetry.emit(Event::NodeOnboarded { node });
                }
                Ok(EventOutcome::Onboarded { nodes: ids })
            }
        }
    }

    /// Runs a whole trace, returning the per-arrival placements, the
    /// counters, and the final statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first non-crash failure.
    pub fn run(
        &mut self,
        trace: &[TimedEvent],
        telemetry: &Telemetry<'_>,
    ) -> Result<FleetRun, ClusterError> {
        if let PlacementPolicy::Learned { model } = &self.scheduler.config().placement {
            telemetry.emit(Event::ModelLoaded {
                feature_version: model.feature_version,
                epochs: model.epochs,
                train_loss: model.train_loss,
            });
        }
        let mut placements = Vec::new();
        for (index, event) in trace.iter().enumerate() {
            let backlog = backlog_at(trace, index);
            match self.handle_with_backlog(event, backlog, telemetry)? {
                EventOutcome::Placed(p) => placements.push(Some(p.node)),
                EventOutcome::Rejected { .. } | EventOutcome::Shed { .. } => placements.push(None),
                _ => {}
            }
        }
        Ok(FleetRun { placements, counters: self.counters(), stats: self.scheduler.stats() })
    }

    /// Re-solves the mean-field template when the clock crossed into a
    /// new epoch: one fleet-wide target LC load from the aggregate stats,
    /// applied per-node by [`PlacementPolicy::TargetLoad`].
    fn maybe_solve_epoch(&mut self) {
        if self.config.epoch_ticks == 0 {
            return;
        }
        let epoch = self.clock.epoch(self.config.epoch_ticks);
        if self.solved_epoch == Some(epoch) {
            return;
        }
        self.solved_epoch = Some(epoch);
        self.counters.epoch_solves += 1;
        let stats = self.scheduler.stats_ref();
        let alive: Vec<_> = stats.nodes.iter().filter(|n| n.alive).collect();
        if alive.is_empty() {
            return;
        }
        let mean_load: f64 = alive.iter().map(|n| n.lc_load).sum::<f64>() / alive.len() as f64;
        let target_pct = ((mean_load * 100.0).round().max(0.0) as u32)
            .saturating_add(self.config.target_margin_pct)
            .clamp(5, 95);
        self.target_pct = Some(target_pct);
        // A learned policy keeps serving its model: the solved target is
        // still exported as a gauge, but the template never overwrites the
        // model — its fleet-level features carry the aggregate state the
        // template would have encoded.
        if !matches!(self.scheduler.config().placement, PlacementPolicy::Learned { .. }) {
            self.scheduler.set_placement(PlacementPolicy::TargetLoad { target_pct });
        }
    }

    /// Exports fleet gauges (`clite_fleet_*`) from the incrementally
    /// maintained statistics — O(fleet) only in the per-node walk for
    /// the QoS gauge, no node is probed.
    pub fn export_gauges(&self, registry: &MetricsRegistry) {
        let stats = self.scheduler.stats_ref();
        let alive = stats.nodes.len() - stats.dead_nodes;
        registry.set_gauge("clite_fleet_nodes", &[], stats.nodes.len() as f64);
        registry.set_gauge("clite_fleet_alive_nodes", &[], alive as f64);
        registry.set_gauge("clite_fleet_dead_nodes", &[], stats.dead_nodes as f64);
        registry.set_gauge("clite_fleet_empty_nodes", &[], stats.empty_nodes as f64);
        registry.set_gauge("clite_fleet_placed_jobs", &[], stats.placed as f64);
        registry.set_gauge("clite_fleet_rejected_jobs", &[], stats.rejected as f64);
        registry.set_gauge("clite_fleet_admission_rate", &[], stats.admission_rate());
        registry.set_gauge("clite_fleet_clock_ticks", &[], self.clock.now() as f64);
        let qos_ok = stats.nodes.iter().filter(|n| n.alive && n.qos_met).count();
        registry.set_gauge("clite_fleet_qos_ok_nodes", &[], qos_ok as f64);
        registry.set_gauge("clite_fleet_replacements", &[], self.scheduler.replaced() as f64);
        registry.set_gauge("clite_fleet_shed_arrivals", &[], self.counters.arrivals_shed as f64);
        registry.set_gauge(
            "clite_fleet_admission_debt_windows",
            &[],
            self.debt.iter().sum::<u64>() as f64,
        );
        if let Some(target) = self.target_pct {
            registry.set_gauge("clite_fleet_target_load_pct", &[], f64::from(target));
        }
        if let PlacementPolicy::Learned { model } = &self.scheduler.config().placement {
            registry.set_gauge(
                "clite_model_feature_version",
                &[],
                f64::from(model.feature_version),
            );
            registry.set_gauge("clite_model_epochs", &[], f64::from(model.epochs));
            registry.set_gauge("clite_model_train_loss", &[], model.train_loss);
        }

        // Shared worker-pool utilization (`clite_par_*`): cumulative
        // dispatch counters plus the high-water busy-worker mark, whose
        // invariant `max_busy_workers <= pool_workers` is the
        // no-oversubscription guarantee for nested search fan-outs.
        let pool = clite_par::WorkerPool::global();
        let par = pool.stats();
        registry.set_gauge("clite_par_pool_workers", &[], pool.workers() as f64);
        registry.set_gauge("clite_par_jobs", &[], par.jobs as f64);
        registry.set_gauge("clite_par_worker_tasks", &[], par.worker_tasks as f64);
        registry.set_gauge("clite_par_caller_tasks", &[], par.caller_tasks as f64);
        registry.set_gauge("clite_par_max_busy_workers", &[], par.max_busy_workers as f64);
    }
}

/// Same-tick backlog behind `trace[index]`: how many later events share
/// its timestamp — the burst depth the overload policy's backlog trigger
/// reads. A pure function of the trace, so it journals and replays.
#[must_use]
pub fn backlog_at(trace: &[TimedEvent], index: usize) -> u64 {
    let at = trace[index].at;
    trace[index + 1..].iter().take_while(|e| e.at == at).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, TraceConfig};
    use clite_sim::prelude::*;

    fn small_trace() -> Vec<TimedEvent> {
        generate(
            &TraceConfig {
                events: 12,
                arrival_weight: 5,
                departure_weight: 2,
                load_shift_weight: 2,
                ..TraceConfig::default()
            },
            11,
        )
    }

    #[test]
    fn fleet_processes_mixed_trace() {
        let mut fleet = FleetService::new(3, FleetConfig::default(), 5).unwrap();
        let run = fleet.run(&small_trace(), &Telemetry::disabled()).unwrap();
        assert_eq!(run.counters.arrivals as usize, run.placements.len());
        assert!(run.counters.arrivals > 0);
        assert_eq!(
            run.stats.placed as u64 + run.counters.departures,
            run.counters.placed,
            "live jobs + departures account for every admission"
        );
    }

    #[test]
    fn onboarding_grows_the_fleet() {
        let mut fleet = FleetService::new(2, FleetConfig::default(), 5).unwrap();
        let outcome = fleet
            .handle(&TimedEvent::new(1, FleetEvent::Onboard { nodes: 3 }), &Telemetry::disabled())
            .unwrap();
        assert_eq!(outcome, EventOutcome::Onboarded { nodes: vec![2, 3, 4] });
        assert_eq!(fleet.scheduler().nodes().len(), 5);
        assert_eq!(fleet.stats().nodes.len(), 5, "stats track onboarded nodes");
    }

    #[test]
    fn stale_departure_is_a_noop() {
        let mut fleet = FleetService::new(2, FleetConfig::default(), 5).unwrap();
        let outcome = fleet
            .handle(&TimedEvent::new(1, FleetEvent::Departure { job: 99 }), &Telemetry::disabled())
            .unwrap();
        assert_eq!(outcome, EventOutcome::Stale { job: 99 });
        assert_eq!(fleet.counters().stale_events, 1);
    }

    #[test]
    fn epoch_policy_installs_target_template() {
        let mut fleet = FleetService::new(2, FleetConfig::mean_field(4, 2), 5).unwrap();
        let spec = JobSpec::latency_critical(WorkloadId::Memcached, 0.3);
        fleet
            .handle(
                &TimedEvent::new(1, FleetEvent::Arrival { spec: spec.clone() }),
                &Telemetry::disabled(),
            )
            .unwrap();
        assert_eq!(fleet.counters().epoch_solves, 1, "first event solves epoch 0");
        fleet
            .handle(&TimedEvent::new(5, FleetEvent::Arrival { spec }), &Telemetry::disabled())
            .unwrap();
        assert_eq!(fleet.counters().epoch_solves, 2, "tick 5 crosses into epoch 1");
        assert!(matches!(fleet.scheduler().config().placement, PlacementPolicy::TargetLoad { .. }));
    }

    #[test]
    fn load_shift_repartitions_live_job() {
        let mut fleet = FleetService::new(1, FleetConfig::default(), 5).unwrap();
        let spec = JobSpec::latency_critical(WorkloadId::Memcached, 0.2);
        let outcome = fleet
            .handle(&TimedEvent::new(1, FleetEvent::Arrival { spec }), &Telemetry::disabled())
            .unwrap();
        let EventOutcome::Placed(p) = outcome else { panic!("arrival must place") };
        let before = fleet.scheduler().nodes()[p.node].commits();
        let outcome = fleet
            .handle(
                &TimedEvent::new(
                    2,
                    FleetEvent::LoadShift { job: p.job_id, load: LoadSchedule::Constant(0.5) },
                ),
                &Telemetry::disabled(),
            )
            .unwrap();
        assert_eq!(outcome, EventOutcome::Applied { job: p.job_id });
        assert!(fleet.scheduler().nodes()[p.node].commits() > before, "shift is a commit");
    }
}
