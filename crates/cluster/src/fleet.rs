//! The fleet service: a long-running, event-driven scheduler loop.
//!
//! Where [`crate::scheduler::ClusterScheduler`] answers one admission
//! question at a time, [`FleetService`] runs the warehouse: it consumes a
//! time-ordered stream of [`FleetEvent`]s — arrivals, departures, load
//! shifts, node onboarding — advancing a deterministic [`SimClock`] and
//! driving the existing plan/record/commit `Node` machinery per event.
//!
//! ## Mean-field epoch policy
//!
//! Probing every node for every arrival is O(fleet) searches per event —
//! unaffordable at thousands of nodes. Following the mean-field
//! core-allocation results (Li/Harchol-Balter/Berg), the service instead
//! *solves once and applies per-node*: once per epoch it computes a
//! single target LC load from the incrementally maintained
//! [`ClusterStats`] (mean committed load plus a headroom margin) and
//! installs it as a [`PlacementPolicy::TargetLoad`] template; per event,
//! candidate ordering follows the template and the scheduler's
//! `probe_limit` caps local refinement to a handful of CLITE searches.
//! Every input to the template is itself a deterministic function of the
//! event history, so the epoch policy preserves byte-identity.
//!
//! ## Determinism contract
//!
//! For a fixed trace and seed the fleet's placements and statistics are
//! byte-identical across: serial vs threaded admission (inherited from
//! the PR 2/5 discipline — probe seeds are pure functions of committed
//! state), and any store shard count (lookups depend only on per-mix
//! bucket content). `crates/cluster/tests/fleet.rs` pins both at fleet
//! scale.

use clite_sim::testbed::{ServerFactory, TestbedFactory};
use clite_store::StoreHandle;
use clite_telemetry::{Event, MetricsRegistry, Telemetry};

use crate::clock::SimClock;
use crate::event::{FleetEvent, TimedEvent};
use crate::placement::PlacementPolicy;
use crate::scheduler::{ClusterScheduler, Placement, SchedulerConfig};
use crate::stats::ClusterStats;
use crate::ClusterError;

/// Fleet-service configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Scheduler configuration (placement, admission mode, CLITE budget,
    /// probe cap).
    pub scheduler: SchedulerConfig,
    /// Re-solve the mean-field placement template every this many clock
    /// ticks; `0` keeps the configured placement policy untouched.
    pub epoch_ticks: u64,
    /// Headroom added to the solved mean LC load (percentage points):
    /// the target each node is steered toward leaves room for the next
    /// few arrivals before the template is re-solved.
    pub target_margin_pct: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self { scheduler: SchedulerConfig::default(), epoch_ticks: 0, target_margin_pct: 10 }
    }
}

impl FleetConfig {
    /// A config with the mean-field epoch policy enabled: template
    /// re-solved every `epoch_ticks`, local refinement capped at
    /// `probe_limit` candidate probes per admission.
    #[must_use]
    pub fn mean_field(epoch_ticks: u64, probe_limit: usize) -> Self {
        Self {
            scheduler: SchedulerConfig {
                probe_limit: Some(probe_limit),
                ..SchedulerConfig::default()
            },
            epoch_ticks,
            target_margin_pct: 10,
        }
    }

    /// [`mean_field`](FleetConfig::mean_field) with a trained placement
    /// model: candidate ordering uses [`PlacementPolicy::Learned`] instead
    /// of the solved target template. The epoch loop keeps solving the
    /// fleet-wide target for gauge export, but never overwrites the
    /// learned policy — the model's fleet features absorb the aggregate
    /// state the template would have encoded.
    #[must_use]
    pub fn mean_field_learned(
        epoch_ticks: u64,
        probe_limit: usize,
        model: std::sync::Arc<clite_learn::RankingModel>,
    ) -> Self {
        Self {
            scheduler: SchedulerConfig {
                placement: PlacementPolicy::Learned { model },
                probe_limit: Some(probe_limit),
                ..SchedulerConfig::default()
            },
            epoch_ticks,
            target_margin_pct: 10,
        }
    }
}

/// What handling one event did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventOutcome {
    /// An arrival was admitted.
    Placed(Placement),
    /// An arrival was rejected fleet-wide.
    Rejected {
        /// The job id the arrival was assigned.
        job: u64,
    },
    /// A departure (or load shift) removed/re-partitioned a live job.
    Applied {
        /// The affected job id.
        job: u64,
    },
    /// The referenced job was not live (rejected at arrival or lost with
    /// a crashed node); the event was a no-op.
    Stale {
        /// The referenced job id.
        job: u64,
    },
    /// New nodes joined the fleet.
    Onboarded {
        /// Ids of the added nodes.
        nodes: Vec<usize>,
    },
}

/// Counters summarizing a service's event history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCounters {
    /// Arrivals handled.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub placed: u64,
    /// Departures applied.
    pub departures: u64,
    /// Load shifts applied.
    pub load_shifts: u64,
    /// Stale departure/load-shift no-ops.
    pub stale_events: u64,
    /// Nodes onboarded after construction.
    pub nodes_onboarded: u64,
    /// Mean-field template re-solves.
    pub epoch_solves: u64,
    /// Crash-orphaned jobs successfully re-homed on surviving nodes.
    pub replacements: u64,
}

/// The result of running a trace to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Per-arrival outcome, in arrival order: the hosting node, or `None`
    /// if rejected. This is the byte-identity witness the determinism
    /// tests compare.
    pub placements: Vec<Option<usize>>,
    /// Event counters.
    pub counters: FleetCounters,
    /// Final fleet statistics.
    pub stats: ClusterStats,
}

/// A long-running, event-driven colocation service over a scheduler.
#[derive(Debug)]
pub struct FleetService<F: TestbedFactory = ServerFactory> {
    scheduler: ClusterScheduler<F>,
    config: FleetConfig,
    clock: SimClock,
    /// Last epoch a template was solved for (`None` before the first).
    solved_epoch: Option<u64>,
    /// The currently installed template target (for gauge export).
    target_pct: Option<u32>,
    counters: FleetCounters,
}

impl FleetService {
    /// A fleet of `nodes` simulated servers.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes.
    pub fn new(nodes: usize, config: FleetConfig, seed: u64) -> Result<Self, ClusterError> {
        Self::with_factory(nodes, config, seed, ServerFactory)
    }
}

impl<F: TestbedFactory + Sync + Clone> FleetService<F> {
    /// A fleet whose nodes probe on testbeds built by `factory`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes.
    pub fn with_factory(
        nodes: usize,
        config: FleetConfig,
        seed: u64,
        factory: F,
    ) -> Result<Self, ClusterError> {
        let scheduler =
            ClusterScheduler::with_factory(nodes, config.scheduler.clone(), seed, factory)?;
        Ok(Self {
            scheduler,
            config,
            clock: SimClock::new(),
            solved_epoch: None,
            target_pct: None,
            counters: FleetCounters::default(),
        })
    }

    /// Attaches an observation store (single-lock or sharded) to every
    /// node, current and future.
    #[must_use]
    pub fn with_store(mut self, store: impl Into<StoreHandle>) -> Self {
        self.scheduler = self.scheduler.with_store(store);
        self
    }

    /// The underlying scheduler.
    #[must_use]
    pub fn scheduler(&self) -> &ClusterScheduler<F> {
        &self.scheduler
    }

    /// The deterministic clock.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Event counters so far (re-placements are read live from the
    /// scheduler, which owns the orphan re-homing loops).
    #[must_use]
    pub fn counters(&self) -> FleetCounters {
        FleetCounters { replacements: self.scheduler.replaced(), ..self.counters }
    }

    /// Current fleet statistics (incrementally maintained).
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        self.scheduler.stats()
    }

    /// Handles one event: advances the clock, re-solves the mean-field
    /// template on epoch boundaries, and drives the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates non-crash controller/simulator failures. Node crashes
    /// are absorbed (eviction + re-placement), stale job references are
    /// no-ops.
    pub fn handle(
        &mut self,
        event: &TimedEvent,
        telemetry: &Telemetry<'_>,
    ) -> Result<EventOutcome, ClusterError> {
        self.clock.advance_to(event.at);
        self.maybe_solve_epoch();
        match &event.event {
            FleetEvent::Arrival { spec } => {
                self.counters.arrivals += 1;
                let workload = spec.workload.name().to_owned();
                let placed = self.scheduler.submit_with(spec.clone(), telemetry)?;
                match placed {
                    Some(placement) => {
                        self.counters.placed += 1;
                        telemetry.emit(Event::JobArrived { job: placement.job_id, workload });
                        Ok(EventOutcome::Placed(placement))
                    }
                    None => {
                        // The scheduler consumed an id even though no node
                        // accepted the job: arrival k always has id k.
                        let job = self.counters.arrivals - 1;
                        telemetry.emit(Event::JobArrived { job, workload });
                        Ok(EventOutcome::Rejected { job })
                    }
                }
            }
            FleetEvent::Departure { job } => match self.scheduler.remove_with(*job, telemetry) {
                Ok(()) => {
                    self.counters.departures += 1;
                    telemetry.emit(Event::JobDeparted { job: *job });
                    Ok(EventOutcome::Applied { job: *job })
                }
                Err(ClusterError::UnknownJob { .. }) => {
                    self.counters.stale_events += 1;
                    Ok(EventOutcome::Stale { job: *job })
                }
                Err(e) => Err(e),
            },
            FleetEvent::LoadShift { job, load } => {
                match self.scheduler.update_load_with(*job, load.clone(), telemetry) {
                    Ok(()) => {
                        self.counters.load_shifts += 1;
                        let load_pct = (load.at(0.0) * 100.0).round().max(0.0) as u32;
                        telemetry.emit(Event::LoadShift { job: *job, load_pct });
                        Ok(EventOutcome::Applied { job: *job })
                    }
                    Err(ClusterError::UnknownJob { .. }) => {
                        self.counters.stale_events += 1;
                        Ok(EventOutcome::Stale { job: *job })
                    }
                    Err(e) => Err(e),
                }
            }
            FleetEvent::Onboard { nodes } => {
                let ids = self.scheduler.add_nodes(*nodes);
                self.counters.nodes_onboarded += ids.len() as u64;
                for &node in &ids {
                    telemetry.emit(Event::NodeOnboarded { node });
                }
                Ok(EventOutcome::Onboarded { nodes: ids })
            }
        }
    }

    /// Runs a whole trace, returning the per-arrival placements, the
    /// counters, and the final statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first non-crash failure.
    pub fn run(
        &mut self,
        trace: &[TimedEvent],
        telemetry: &Telemetry<'_>,
    ) -> Result<FleetRun, ClusterError> {
        if let PlacementPolicy::Learned { model } = &self.scheduler.config().placement {
            telemetry.emit(Event::ModelLoaded {
                feature_version: model.feature_version,
                epochs: model.epochs,
                train_loss: model.train_loss,
            });
        }
        let mut placements = Vec::new();
        for event in trace {
            match self.handle(event, telemetry)? {
                EventOutcome::Placed(p) => placements.push(Some(p.node)),
                EventOutcome::Rejected { .. } => placements.push(None),
                _ => {}
            }
        }
        Ok(FleetRun { placements, counters: self.counters(), stats: self.scheduler.stats() })
    }

    /// Re-solves the mean-field template when the clock crossed into a
    /// new epoch: one fleet-wide target LC load from the aggregate stats,
    /// applied per-node by [`PlacementPolicy::TargetLoad`].
    fn maybe_solve_epoch(&mut self) {
        if self.config.epoch_ticks == 0 {
            return;
        }
        let epoch = self.clock.epoch(self.config.epoch_ticks);
        if self.solved_epoch == Some(epoch) {
            return;
        }
        self.solved_epoch = Some(epoch);
        self.counters.epoch_solves += 1;
        let stats = self.scheduler.stats_ref();
        let alive: Vec<_> = stats.nodes.iter().filter(|n| n.alive).collect();
        if alive.is_empty() {
            return;
        }
        let mean_load: f64 = alive.iter().map(|n| n.lc_load).sum::<f64>() / alive.len() as f64;
        let target_pct = ((mean_load * 100.0).round().max(0.0) as u32)
            .saturating_add(self.config.target_margin_pct)
            .clamp(5, 95);
        self.target_pct = Some(target_pct);
        // A learned policy keeps serving its model: the solved target is
        // still exported as a gauge, but the template never overwrites the
        // model — its fleet-level features carry the aggregate state the
        // template would have encoded.
        if !matches!(self.scheduler.config().placement, PlacementPolicy::Learned { .. }) {
            self.scheduler.set_placement(PlacementPolicy::TargetLoad { target_pct });
        }
    }

    /// Exports fleet gauges (`clite_fleet_*`) from the incrementally
    /// maintained statistics — O(fleet) only in the per-node walk for
    /// the QoS gauge, no node is probed.
    pub fn export_gauges(&self, registry: &MetricsRegistry) {
        let stats = self.scheduler.stats_ref();
        let alive = stats.nodes.len() - stats.dead_nodes;
        registry.set_gauge("clite_fleet_nodes", &[], stats.nodes.len() as f64);
        registry.set_gauge("clite_fleet_alive_nodes", &[], alive as f64);
        registry.set_gauge("clite_fleet_dead_nodes", &[], stats.dead_nodes as f64);
        registry.set_gauge("clite_fleet_empty_nodes", &[], stats.empty_nodes as f64);
        registry.set_gauge("clite_fleet_placed_jobs", &[], stats.placed as f64);
        registry.set_gauge("clite_fleet_rejected_jobs", &[], stats.rejected as f64);
        registry.set_gauge("clite_fleet_admission_rate", &[], stats.admission_rate());
        registry.set_gauge("clite_fleet_clock_ticks", &[], self.clock.now() as f64);
        let qos_ok = stats.nodes.iter().filter(|n| n.alive && n.qos_met).count();
        registry.set_gauge("clite_fleet_qos_ok_nodes", &[], qos_ok as f64);
        registry.set_gauge("clite_fleet_replacements", &[], self.scheduler.replaced() as f64);
        if let Some(target) = self.target_pct {
            registry.set_gauge("clite_fleet_target_load_pct", &[], f64::from(target));
        }
        if let PlacementPolicy::Learned { model } = &self.scheduler.config().placement {
            registry.set_gauge(
                "clite_model_feature_version",
                &[],
                f64::from(model.feature_version),
            );
            registry.set_gauge("clite_model_epochs", &[], f64::from(model.epochs));
            registry.set_gauge("clite_model_train_loss", &[], model.train_loss);
        }

        // Shared worker-pool utilization (`clite_par_*`): cumulative
        // dispatch counters plus the high-water busy-worker mark, whose
        // invariant `max_busy_workers <= pool_workers` is the
        // no-oversubscription guarantee for nested search fan-outs.
        let pool = clite_par::WorkerPool::global();
        let par = pool.stats();
        registry.set_gauge("clite_par_pool_workers", &[], pool.workers() as f64);
        registry.set_gauge("clite_par_jobs", &[], par.jobs as f64);
        registry.set_gauge("clite_par_worker_tasks", &[], par.worker_tasks as f64);
        registry.set_gauge("clite_par_caller_tasks", &[], par.caller_tasks as f64);
        registry.set_gauge("clite_par_max_busy_workers", &[], par.max_busy_workers as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, TraceConfig};
    use clite_sim::prelude::*;

    fn small_trace() -> Vec<TimedEvent> {
        generate(
            &TraceConfig {
                events: 12,
                arrival_weight: 5,
                departure_weight: 2,
                load_shift_weight: 2,
                ..TraceConfig::default()
            },
            11,
        )
    }

    #[test]
    fn fleet_processes_mixed_trace() {
        let mut fleet = FleetService::new(3, FleetConfig::default(), 5).unwrap();
        let run = fleet.run(&small_trace(), &Telemetry::disabled()).unwrap();
        assert_eq!(run.counters.arrivals as usize, run.placements.len());
        assert!(run.counters.arrivals > 0);
        assert_eq!(
            run.stats.placed as u64 + run.counters.departures,
            run.counters.placed,
            "live jobs + departures account for every admission"
        );
    }

    #[test]
    fn onboarding_grows_the_fleet() {
        let mut fleet = FleetService::new(2, FleetConfig::default(), 5).unwrap();
        let outcome = fleet
            .handle(&TimedEvent::new(1, FleetEvent::Onboard { nodes: 3 }), &Telemetry::disabled())
            .unwrap();
        assert_eq!(outcome, EventOutcome::Onboarded { nodes: vec![2, 3, 4] });
        assert_eq!(fleet.scheduler().nodes().len(), 5);
        assert_eq!(fleet.stats().nodes.len(), 5, "stats track onboarded nodes");
    }

    #[test]
    fn stale_departure_is_a_noop() {
        let mut fleet = FleetService::new(2, FleetConfig::default(), 5).unwrap();
        let outcome = fleet
            .handle(&TimedEvent::new(1, FleetEvent::Departure { job: 99 }), &Telemetry::disabled())
            .unwrap();
        assert_eq!(outcome, EventOutcome::Stale { job: 99 });
        assert_eq!(fleet.counters().stale_events, 1);
    }

    #[test]
    fn epoch_policy_installs_target_template() {
        let mut fleet = FleetService::new(2, FleetConfig::mean_field(4, 2), 5).unwrap();
        let spec = JobSpec::latency_critical(WorkloadId::Memcached, 0.3);
        fleet
            .handle(
                &TimedEvent::new(1, FleetEvent::Arrival { spec: spec.clone() }),
                &Telemetry::disabled(),
            )
            .unwrap();
        assert_eq!(fleet.counters().epoch_solves, 1, "first event solves epoch 0");
        fleet
            .handle(&TimedEvent::new(5, FleetEvent::Arrival { spec }), &Telemetry::disabled())
            .unwrap();
        assert_eq!(fleet.counters().epoch_solves, 2, "tick 5 crosses into epoch 1");
        assert!(matches!(fleet.scheduler().config().placement, PlacementPolicy::TargetLoad { .. }));
    }

    #[test]
    fn load_shift_repartitions_live_job() {
        let mut fleet = FleetService::new(1, FleetConfig::default(), 5).unwrap();
        let spec = JobSpec::latency_critical(WorkloadId::Memcached, 0.2);
        let outcome = fleet
            .handle(&TimedEvent::new(1, FleetEvent::Arrival { spec }), &Telemetry::disabled())
            .unwrap();
        let EventOutcome::Placed(p) = outcome else { panic!("arrival must place") };
        let before = fleet.scheduler().nodes()[p.node].commits();
        let outcome = fleet
            .handle(
                &TimedEvent::new(
                    2,
                    FleetEvent::LoadShift { job: p.job_id, load: LoadSchedule::Constant(0.5) },
                ),
                &Telemetry::disabled(),
            )
            .unwrap();
        assert_eq!(outcome, EventOutcome::Applied { job: p.job_id });
        assert!(fleet.scheduler().nodes()[p.node].commits() > before, "shift is a commit");
    }
}
