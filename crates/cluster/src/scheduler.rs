//! Cluster-level admission control.

use clite::config::CliteConfig;
use clite_bo::termination::Termination;
use clite_sim::prelude::*;
use clite_sim::testbed::{ServerFactory, TestbedFactory};
use clite_telemetry::{Event, Telemetry};

use crate::node::{AdmissionPlan, Node, PlacedJob};
use crate::placement::PlacementPolicy;
use crate::stats::ClusterStats;
use crate::ClusterError;

/// How a submission's admission searches run across candidate nodes.
///
/// Both modes commit identical placements under a fixed seed: probe seeds
/// are a pure function of each node's committed state, candidates are
/// resolved in placement order, and only the probes a serial scan would
/// have paid for are charged to node statistics. Threaded mode merely
/// overlaps the (independent, speculative) per-node searches on
/// `std::thread::scope` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Probe candidate nodes one at a time, stopping at the first
    /// feasible one.
    #[default]
    Serial,
    /// Probe every candidate node concurrently, then commit the first
    /// feasible plan in placement order.
    Threaded,
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Node try-order policy.
    pub placement: PlacementPolicy,
    /// Serial or threaded admission probing.
    pub admission: AdmissionMode,
    /// CLITE configuration used for admission searches. The default uses
    /// a tighter iteration cap than a standalone run: admission needs a
    /// feasibility answer quickly, and the committed partition keeps
    /// being refined by later searches anyway.
    pub clite: CliteConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            placement: PlacementPolicy::default(),
            admission: AdmissionMode::default(),
            clite: CliteConfig::default()
                .with_termination(Termination { max_iterations: 30, ..Termination::default() }),
        }
    }
}

/// Where a job ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Cluster-assigned job id.
    pub job_id: u64,
    /// Node hosting the job.
    pub node: usize,
}

/// The fleet scheduler: submits jobs to nodes, testing QoS feasibility
/// with a per-node CLITE search before committing.
///
/// Generic over the [`TestbedFactory`] its nodes probe with; the `Sync`
/// bound lets threaded admission share the fleet across worker threads
/// (factories are cheap stateless builders, so this costs nothing).
#[derive(Debug)]
pub struct ClusterScheduler<F: TestbedFactory = ServerFactory> {
    nodes: Vec<Node<F>>,
    config: SchedulerConfig,
    next_job_id: u64,
    rejected: u64,
}

impl ClusterScheduler {
    /// Builds a cluster of `nodes` identical testbed servers.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes.
    pub fn new(nodes: usize, config: SchedulerConfig, seed: u64) -> Result<Self, ClusterError> {
        Self::with_factory(nodes, config, seed, ServerFactory)
    }
}

impl<F: TestbedFactory + Sync> ClusterScheduler<F> {
    /// Builds a cluster of `nodes` identical machines whose admission
    /// searches run on testbeds built by `factory`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes.
    pub fn with_factory(
        nodes: usize,
        config: SchedulerConfig,
        seed: u64,
        factory: F,
    ) -> Result<Self, ClusterError>
    where
        F: Clone,
    {
        if nodes == 0 {
            return Err(ClusterError::EmptyCluster);
        }
        let nodes = (0..nodes)
            .map(|i| {
                Node::with_factory(
                    i,
                    ResourceCatalog::testbed(),
                    seed.wrapping_add(1000 * i as u64),
                    factory.clone(),
                )
            })
            .collect();
        Ok(Self { nodes, config, next_job_id: 0, rejected: 0 })
    }

    /// Attaches one shared observation store to every node in the fleet:
    /// admission probes and re-partitioning searches warm-start from the
    /// pooled samples, and committed searches append back to it. Because
    /// probes only read the store and appends happen at commit, serial and
    /// threaded admission still place identical fleets.
    #[must_use]
    pub fn with_store(mut self, store: clite_store::SharedStore) -> Self {
        for node in &mut self.nodes {
            node.set_store(store.clone());
        }
        self
    }

    /// The fleet.
    #[must_use]
    pub fn nodes(&self) -> &[Node<F>] {
        &self.nodes
    }

    /// Jobs rejected so far (no node could host them with QoS intact).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Submits a job: tries nodes in the placement policy's order and
    /// commits to the first where a CLITE search finds a QoS-feasible
    /// partition. Returns the placement, or `None` if every node rejected
    /// the job (the caller would queue or scale out).
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures.
    pub fn submit(&mut self, spec: JobSpec) -> Result<Option<Placement>, ClusterError> {
        self.submit_with(spec, &Telemetry::disabled())
    }

    /// [`submit`](ClusterScheduler::submit) with telemetry: a successful
    /// commit emits [`Event::Placement`], and the admission searches'
    /// events and phase timings flow through `telemetry`.
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures.
    pub fn submit_with(
        &mut self,
        spec: JobSpec,
        telemetry: &Telemetry<'_>,
    ) -> Result<Option<Placement>, ClusterError> {
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let placement = self.admit_job(PlacedJob { id: job_id, spec }, telemetry)?;
        if placement.is_none() {
            self.rejected += 1;
        }
        Ok(placement)
    }

    /// One admission attempt, shared by fresh submissions and the
    /// re-placement of jobs orphaned by a node crash. Any nodes that crash
    /// while being probed are evicted and their committed jobs re-placed
    /// (recursively — each crash permanently removes one node, so the
    /// recursion is bounded by the fleet size) before the result is
    /// reported. An orphan no surviving node can host counts as rejected.
    fn admit_job(
        &mut self,
        job: PlacedJob,
        telemetry: &Telemetry<'_>,
    ) -> Result<Option<Placement>, ClusterError> {
        let job_id = job.id;
        let workload = job.spec.workload.name().to_owned();
        let order: Vec<usize> = self
            .config
            .placement
            .candidate_order(&self.nodes)
            .into_iter()
            .filter(|&i| self.nodes[i].alive())
            .collect();
        let (winner, orphans) = match self.config.admission {
            AdmissionMode::Serial => self.admit_serial(&order, &job, telemetry)?,
            AdmissionMode::Threaded => self.admit_threaded(&order, &job, telemetry)?,
        };
        for orphan in orphans {
            if self.admit_job(orphan, telemetry)?.is_none() {
                self.rejected += 1;
            }
        }
        Ok(winner.map(|node_id| {
            telemetry.emit(Event::Placement { node: node_id, job: workload });
            Placement { job_id, node: node_id }
        }))
    }

    /// Evicts a crashed node: takes it out of service, drains its
    /// committed jobs for re-placement, and reports the eviction.
    fn evict_node(&mut self, node_id: usize, telemetry: &Telemetry<'_>) -> Vec<PlacedJob> {
        let orphans = self.nodes[node_id].mark_dead();
        telemetry.emit(Event::NodeEvicted { node: node_id, jobs: orphans.len() });
        orphans
    }

    /// Serial admission: probe candidates one at a time, committing to
    /// the first feasible node. A probe that surfaces a node crash evicts
    /// that node (its drained jobs are returned for re-placement) and the
    /// scan continues on the remaining candidates.
    fn admit_serial(
        &mut self,
        order: &[usize],
        job: &PlacedJob,
        telemetry: &Telemetry<'_>,
    ) -> Result<(Option<usize>, Vec<PlacedJob>), ClusterError> {
        let mut orphans = Vec::new();
        for &node_id in order {
            match self.nodes[node_id].try_admit_with(job.clone(), &self.config.clite, telemetry) {
                Ok(true) => return Ok((Some(node_id), orphans)),
                Ok(false) => {}
                Err(e) if e.is_node_crash() => {
                    orphans.extend(self.evict_node(node_id, telemetry));
                }
                Err(e) => return Err(e),
            }
        }
        Ok((None, orphans))
    }

    /// Threaded admission: probe every candidate concurrently, then walk
    /// the results in placement order, charging each probed node and
    /// committing the first feasible plan. Results past the winner are
    /// discarded *unrecorded* — a serial scan would never have run them —
    /// and that includes crashes: a node whose probe crashed after the
    /// winner's position stays alive, exactly as if it had never been
    /// probed. Crashes at or before the winner evict the node just as the
    /// serial scan would. Fault streams are a pure function of each node's
    /// committed state (seeded per probe), so serial and threaded runs see
    /// identical crashes and produce identical fleets and statistics under
    /// a fixed seed.
    fn admit_threaded(
        &mut self,
        order: &[usize],
        job: &PlacedJob,
        telemetry: &Telemetry<'_>,
    ) -> Result<(Option<usize>, Vec<PlacedJob>), ClusterError> {
        let recorder = telemetry.recorder();
        let config = &self.config.clite;
        let nodes = &self.nodes;
        let results: Vec<Result<Option<AdmissionPlan>, ClusterError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = order
                    .iter()
                    .map(|&node_id| {
                        let job = job.clone();
                        scope.spawn(move || {
                            // Telemetry contexts are single-threaded (interior
                            // phase-timer state), so each worker wraps the
                            // shared thread-safe recorder in its own.
                            let local = Telemetry::new(recorder);
                            nodes[node_id].plan_admission(job, config, &local)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                    .collect()
            });
        let mut orphans = Vec::new();
        for (result, &node_id) in results.into_iter().zip(order) {
            match result {
                Ok(Some(plan)) => {
                    self.nodes[node_id].record_probe(&plan);
                    if plan.feasible() {
                        self.nodes[node_id].commit_admission(plan);
                        return Ok((Some(node_id), orphans));
                    }
                }
                Ok(None) => {}
                Err(e) if e.is_node_crash() => {
                    orphans.extend(self.evict_node(node_id, telemetry));
                }
                Err(e) => return Err(e),
            }
        }
        Ok((None, orphans))
    }

    /// Removes a placed job (departure) and re-partitions its node.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if no node hosts `job_id`.
    pub fn remove(&mut self, job_id: u64) -> Result<(), ClusterError> {
        self.remove_with(job_id, &Telemetry::disabled())
    }

    /// [`remove`](ClusterScheduler::remove) with telemetry: the departure
    /// emits [`Event::Eviction`] before the node re-partitions.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if no node hosts `job_id`.
    pub fn remove_with(
        &mut self,
        job_id: u64,
        telemetry: &Telemetry<'_>,
    ) -> Result<(), ClusterError> {
        let Some(node_id) = self.nodes.iter().position(|n| n.jobs().iter().any(|j| j.id == job_id))
        else {
            return Err(ClusterError::UnknownJob { job: job_id });
        };
        let node = &mut self.nodes[node_id];
        let job = node.jobs().iter().find(|j| j.id == job_id).expect("job located above");
        telemetry
            .emit(Event::Eviction { node: node.id(), job: job.spec.workload.name().to_owned() });
        match node.remove_with(job_id, &self.config.clite, telemetry) {
            Ok(()) => Ok(()),
            Err(e) if e.is_node_crash() => {
                // The node died while re-partitioning after the departure:
                // evict it and re-home its surviving jobs.
                let orphans = self.evict_node(node_id, telemetry);
                for orphan in orphans {
                    if self.admit_job(orphan, telemetry)?.is_none() {
                        self.rejected += 1;
                    }
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Current fleet statistics.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        ClusterStats::collect(&self.nodes, self.rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(nodes: usize, policy: PlacementPolicy) -> ClusterScheduler {
        ClusterScheduler::new(
            nodes,
            SchedulerConfig { placement: policy, ..SchedulerConfig::default() },
            99,
        )
        .unwrap()
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(matches!(
            ClusterScheduler::new(0, SchedulerConfig::default(), 0),
            Err(ClusterError::EmptyCluster)
        ));
    }

    #[test]
    fn light_jobs_all_placed() {
        let mut c = scheduler(2, PlacementPolicy::LeastLoaded);
        for w in [WorkloadId::Memcached, WorkloadId::ImgDnn, WorkloadId::Xapian] {
            let placed = c.submit(JobSpec::latency_critical(w, 0.2)).unwrap();
            assert!(placed.is_some());
        }
        assert_eq!(c.rejected(), 0);
        let total: usize = c.nodes().iter().map(Node::job_count).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn least_loaded_spreads_most_loaded_packs() {
        let mut spread = scheduler(2, PlacementPolicy::LeastLoaded);
        let mut pack = scheduler(2, PlacementPolicy::MostLoaded);
        for _ in 0..2 {
            spread.submit(JobSpec::latency_critical(WorkloadId::Memcached, 0.3)).unwrap();
            pack.submit(JobSpec::latency_critical(WorkloadId::Memcached, 0.3)).unwrap();
        }
        let spread_counts: Vec<usize> = spread.nodes().iter().map(Node::job_count).collect();
        let pack_counts: Vec<usize> = pack.nodes().iter().map(Node::job_count).collect();
        assert_eq!(spread_counts, vec![1, 1], "least-loaded spreads");
        assert_eq!(pack_counts, vec![2, 0], "most-loaded packs");
    }

    #[test]
    fn overload_spills_to_other_nodes_then_rejects() {
        let mut c = scheduler(2, PlacementPolicy::MostLoaded);
        let mut placements = Vec::new();
        // Heavy LC jobs: each node fits roughly one or two of these.
        for i in 0..6 {
            let w = [WorkloadId::Masstree, WorkloadId::ImgDnn][i % 2];
            if let Some(p) = c.submit(JobSpec::latency_critical(w, 0.8)).unwrap() {
                placements.push(p);
            }
        }
        assert!(c.rejected() > 0, "a 2-node cluster cannot host six 80% LC jobs");
        assert!(!placements.is_empty(), "but some must be placed");
        // Every committed node still meets QoS.
        for n in c.nodes() {
            if let Some(o) = n.last_outcome() {
                assert!(o.qos_met(), "node {} committed a QoS-violating set", n.id());
            }
        }
    }

    #[test]
    fn departures_free_capacity() {
        let mut c = scheduler(1, PlacementPolicy::FirstFit);
        let a = c.submit(JobSpec::latency_critical(WorkloadId::Masstree, 0.8)).unwrap().unwrap();
        let b = c.submit(JobSpec::latency_critical(WorkloadId::ImgDnn, 0.8)).unwrap();
        assert!(b.is_some());
        // A third heavy job is rejected...
        let rejected = c.submit(JobSpec::latency_critical(WorkloadId::Specjbb, 0.9)).unwrap();
        assert!(rejected.is_none());
        // ...until a departure frees the node.
        c.remove(a.job_id).unwrap();
        let retry = c.submit(JobSpec::latency_critical(WorkloadId::Specjbb, 0.8)).unwrap();
        assert!(retry.is_some(), "departure must free capacity");
    }

    #[test]
    fn remove_unknown_job_errors() {
        let mut c = scheduler(1, PlacementPolicy::FirstFit);
        assert!(matches!(c.remove(7), Err(ClusterError::UnknownJob { job: 7 })));
    }

    #[test]
    fn placements_and_evictions_emit_events() {
        use clite_telemetry::MemoryRecorder;

        let sink = MemoryRecorder::new();
        let telemetry = Telemetry::new(&sink);
        let mut c = scheduler(1, PlacementPolicy::FirstFit);
        let placed = c
            .submit_with(JobSpec::latency_critical(WorkloadId::Memcached, 0.2), &telemetry)
            .unwrap()
            .unwrap();
        assert_eq!(sink.count_kind("placement"), 1);
        // The admission search's own events flow through the same sink.
        assert!(sink.count_kind("bootstrap_sample") > 0);
        c.remove_with(placed.job_id, &telemetry).unwrap();
        assert_eq!(sink.count_kind("eviction"), 1);
    }
}
