//! Cluster-level admission control.

use std::collections::HashMap;

use clite::config::CliteConfig;
use clite_bo::termination::Termination;
use clite_sim::prelude::*;
use clite_sim::testbed::{ServerFactory, TestbedFactory};
use clite_store::StoreHandle;
use clite_telemetry::{Event, Phase, Telemetry};

use crate::node::{AdmissionPlan, Node, PlacedJob};
use crate::placement::PlacementPolicy;
use crate::stats::ClusterStats;
use crate::wire::SchedulerSnapshot;
use crate::ClusterError;

/// How a submission's admission searches run across candidate nodes.
///
/// Both modes commit identical placements under a fixed seed: probe seeds
/// are a pure function of each node's committed state, candidates are
/// resolved in placement order, and only the probes a serial scan would
/// have paid for are charged to node statistics. Threaded mode merely
/// overlaps the (independent, speculative) per-node searches on the
/// shared [`clite_par`] worker pool — one slot per candidate, executed by
/// however many pool threads are free, so concurrent admissions (and the
/// nested per-node search parallelism inside each probe) can never spawn
/// more OS threads than the pool owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Probe candidate nodes one at a time, stopping at the first
    /// feasible one.
    #[default]
    Serial,
    /// Probe every candidate node concurrently, then commit the first
    /// feasible plan in placement order.
    Threaded,
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Node try-order policy.
    pub placement: PlacementPolicy,
    /// Serial or threaded admission probing.
    pub admission: AdmissionMode,
    /// CLITE configuration used for admission searches. The default uses
    /// a tighter iteration cap than a standalone run: admission needs a
    /// feasibility answer quickly, and the committed partition keeps
    /// being refined by later searches anyway.
    pub clite: CliteConfig,
    /// Most candidate nodes probed per admission (`None` = all). At fleet
    /// size, probing every candidate makes each admission O(fleet)
    /// searches; the placement policy's ordering makes the first few
    /// candidates the likely winners, so a small cap is the "local
    /// refinement" half of the mean-field policy. Applied identically in
    /// serial and threaded modes, so byte-identity is unaffected.
    pub probe_limit: Option<usize>,
    /// Per-admission deadline budget in observation windows: once the
    /// windows recorded against candidates for *this* admission reach the
    /// budget, the remaining candidates are not probed (the arrival is
    /// rejected if none was feasible yet). Checked before each candidate
    /// in both admission modes at the same points a serial scan would, so
    /// byte-identity is unaffected. `None` disables the deadline.
    pub deadline_samples: Option<u64>,
    /// Retry budget for transient enforce/observe faults inside each
    /// admission search, overriding the CLITE config's
    /// `recovery.max_retries` when set (applied once at construction).
    /// `None` keeps the configured value.
    pub retry_budget: Option<usize>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            placement: PlacementPolicy::default(),
            admission: AdmissionMode::default(),
            clite: CliteConfig::default()
                .with_termination(Termination { max_iterations: 30, ..Termination::default() }),
            probe_limit: None,
            deadline_samples: None,
            retry_budget: None,
        }
    }
}

impl SchedulerConfig {
    /// Folds [`SchedulerConfig::retry_budget`] into the CLITE recovery
    /// policy (done once per scheduler so probe hot paths stay clone-free).
    fn apply_retry_budget(mut self) -> Self {
        if let Some(budget) = self.retry_budget {
            self.clite.recovery.max_retries = budget;
        }
        self
    }
}

/// Where a job ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Cluster-assigned job id.
    pub job_id: u64,
    /// Node hosting the job.
    pub node: usize,
}

/// The fleet scheduler: submits jobs to nodes, testing QoS feasibility
/// with a per-node CLITE search before committing.
///
/// Generic over the [`TestbedFactory`] its nodes probe with; the `Sync`
/// bound lets threaded admission share the fleet across worker threads
/// (factories are cheap stateless builders, so this costs nothing).
#[derive(Debug)]
pub struct ClusterScheduler<F: TestbedFactory = ServerFactory> {
    nodes: Vec<Node<F>>,
    config: SchedulerConfig,
    next_job_id: u64,
    rejected: u64,
    /// Orphaned jobs successfully re-homed after their node crashed.
    replaced: u64,
    /// Builder for onboarded nodes ([`ClusterScheduler::add_nodes`]).
    factory: F,
    /// Base seed; node `i` searches from `base_seed + 1000·i`.
    base_seed: u64,
    /// Store handle handed to onboarded nodes.
    store: Option<StoreHandle>,
    /// job id → node id for O(1) departures and load shifts.
    job_index: HashMap<u64, usize>,
    /// Fleet statistics maintained incrementally: every probe, commit,
    /// eviction, or load change refreshes exactly the touched node's
    /// snapshot, so [`ClusterScheduler::stats`] never walks the fleet.
    /// `incremental_stats_match_collect` pins it to the from-scratch
    /// [`ClusterStats::collect`].
    stats: ClusterStats,
}

impl ClusterScheduler {
    /// Builds a cluster of `nodes` identical testbed servers.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes.
    pub fn new(nodes: usize, config: SchedulerConfig, seed: u64) -> Result<Self, ClusterError> {
        Self::with_factory(nodes, config, seed, ServerFactory)
    }
}

impl<F: TestbedFactory + Sync> ClusterScheduler<F> {
    /// Builds a cluster of `nodes` identical machines whose admission
    /// searches run on testbeds built by `factory`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for zero nodes.
    pub fn with_factory(
        nodes: usize,
        config: SchedulerConfig,
        seed: u64,
        factory: F,
    ) -> Result<Self, ClusterError>
    where
        F: Clone,
    {
        if nodes == 0 {
            return Err(ClusterError::EmptyCluster);
        }
        let nodes: Vec<Node<F>> = (0..nodes)
            .map(|i| {
                Node::with_factory(
                    i,
                    ResourceCatalog::testbed(),
                    seed.wrapping_add(1000 * i as u64),
                    factory.clone(),
                )
            })
            .collect();
        let stats = ClusterStats::collect(&nodes, 0);
        Ok(Self {
            nodes,
            config: config.apply_retry_budget(),
            next_job_id: 0,
            rejected: 0,
            replaced: 0,
            factory,
            base_seed: seed,
            store: None,
            job_index: HashMap::new(),
            stats,
        })
    }

    /// Attaches one shared observation store to every node in the fleet —
    /// a [`clite_store::SharedStore`] or a [`clite_store::ShardedStore`]
    /// handle: admission probes and re-partitioning searches warm-start
    /// from the pooled samples, and committed searches append back to it.
    /// Because probes only read the store and appends happen at commit,
    /// serial and threaded admission still place identical fleets, and
    /// because lookups depend only on per-mix bucket content, so does
    /// every shard count.
    #[must_use]
    pub fn with_store(mut self, store: impl Into<StoreHandle>) -> Self {
        let handle = store.into();
        for node in &mut self.nodes {
            node.set_store(handle.clone());
        }
        self.store = Some(handle);
        self
    }

    /// The fleet.
    #[must_use]
    pub fn nodes(&self) -> &[Node<F>] {
        &self.nodes
    }

    /// The scheduler configuration in force.
    #[must_use]
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Replaces the placement policy. The fleet service's epoch loop uses
    /// this to apply a freshly solved mean-field template
    /// ([`PlacementPolicy::TargetLoad`]) without rebuilding the fleet.
    pub fn set_placement(&mut self, placement: PlacementPolicy) {
        self.config.placement = placement;
    }

    /// Brings `count` new (empty) nodes into service, returning their
    /// ids. Onboarded nodes get the same per-id seed schedule as founding
    /// nodes — a fleet grown to `N` is byte-identical to one built at `N`
    /// — and share the fleet's observation store.
    pub fn add_nodes(&mut self, count: usize) -> Vec<usize>
    where
        F: Clone,
    {
        let start = self.nodes.len();
        for i in start..start + count {
            let mut node = Node::with_factory(
                i,
                ResourceCatalog::testbed(),
                self.base_seed.wrapping_add(1000 * i as u64),
                self.factory.clone(),
            );
            if let Some(store) = &self.store {
                node.set_store(store.clone());
            }
            self.stats.add_node(&node);
            self.nodes.push(node);
        }
        (start..start + count).collect()
    }

    /// Jobs rejected so far (no node could host them with QoS intact).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Orphaned jobs successfully re-placed onto surviving nodes after
    /// their original node crashed.
    #[must_use]
    pub fn replaced(&self) -> u64 {
        self.replaced
    }

    /// Submits a job: tries nodes in the placement policy's order and
    /// commits to the first where a CLITE search finds a QoS-feasible
    /// partition. Returns the placement, or `None` if every node rejected
    /// the job (the caller would queue or scale out).
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures.
    pub fn submit(&mut self, spec: JobSpec) -> Result<Option<Placement>, ClusterError> {
        self.submit_with(spec, &Telemetry::disabled())
    }

    /// [`submit`](ClusterScheduler::submit) with telemetry: a successful
    /// commit emits [`Event::Placement`], and the admission searches'
    /// events and phase timings flow through `telemetry`.
    ///
    /// # Errors
    ///
    /// Propagates controller/simulator failures.
    pub fn submit_with(
        &mut self,
        spec: JobSpec,
        telemetry: &Telemetry<'_>,
    ) -> Result<Option<Placement>, ClusterError> {
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        let placement = self.admit_job(PlacedJob { id: job_id, spec }, telemetry)?;
        if placement.is_none() {
            self.note_rejected();
        }
        Ok(placement)
    }

    /// Counts one rejection in both the counter and the cached stats.
    fn note_rejected(&mut self) {
        self.rejected += 1;
        self.stats.rejected = self.rejected;
    }

    /// Consumes a job id for a shed arrival without probing any node.
    /// Shedding must keep the "arrival `k` has id `k`" invariant — later
    /// departures and load shifts reference ids positionally — so a shed
    /// arrival burns its id exactly as a rejected one would.
    pub fn note_shed(&mut self) -> u64 {
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        job_id
    }

    /// Total observation windows charged across the fleet, from the
    /// incrementally maintained statistics (no node is touched).
    #[must_use]
    pub fn total_samples_spent(&self) -> u64 {
        self.stats.nodes.iter().map(|n| n.samples_spent).sum()
    }

    /// Captures the scheduler's restorable state (id counters plus every
    /// node) for a fleet checkpoint.
    #[must_use]
    pub fn snapshot(&self) -> SchedulerSnapshot {
        SchedulerSnapshot {
            next_job_id: self.next_job_id,
            rejected: self.rejected,
            replaced: self.replaced,
            base_seed: self.base_seed,
            nodes: self.nodes.iter().map(Node::snapshot).collect(),
        }
    }

    /// Rebuilds a scheduler from a checkpoint snapshot. The job index and
    /// cluster statistics are re-derived from the restored nodes; the
    /// store handle, when given, is reattached to every node (recovered
    /// byte-identity is only guaranteed storeless — a warm store changes
    /// future searches, exactly as it would on a never-crashed run that
    /// pre-warmed it differently).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for a snapshot with no nodes.
    pub fn restore(
        snap: SchedulerSnapshot,
        config: SchedulerConfig,
        factory: F,
        store: Option<StoreHandle>,
    ) -> Result<Self, ClusterError>
    where
        F: Clone,
    {
        if snap.nodes.is_empty() {
            return Err(ClusterError::EmptyCluster);
        }
        let mut nodes: Vec<Node<F>> = snap
            .nodes
            .into_iter()
            .map(|n| Node::from_snapshot(n, ResourceCatalog::testbed(), factory.clone()))
            .collect();
        if let Some(handle) = &store {
            for node in &mut nodes {
                node.set_store(handle.clone());
            }
        }
        let mut job_index = HashMap::new();
        for node in &nodes {
            for job in node.jobs() {
                job_index.insert(job.id, node.id());
            }
        }
        let stats = ClusterStats::collect(&nodes, snap.rejected);
        Ok(Self {
            nodes,
            config: config.apply_retry_budget(),
            next_job_id: snap.next_job_id,
            rejected: snap.rejected,
            replaced: snap.replaced,
            factory,
            base_seed: snap.base_seed,
            store,
            job_index,
            stats,
        })
    }

    /// One admission attempt, shared by fresh submissions and the
    /// re-placement of jobs orphaned by a node crash. Any nodes that crash
    /// while being probed are evicted and their committed jobs re-placed
    /// (recursively — each crash permanently removes one node, so the
    /// recursion is bounded by the fleet size) before the result is
    /// reported. An orphan no surviving node can host counts as rejected.
    fn admit_job(
        &mut self,
        job: PlacedJob,
        telemetry: &Telemetry<'_>,
    ) -> Result<Option<Placement>, ClusterError> {
        let job_id = job.id;
        let workload = job.spec.workload.name().to_owned();
        let candidates = self.config.placement.candidate_order(&self.nodes, &job.spec, &self.stats);
        if let Some((scored, best_score)) = candidates.scored {
            telemetry.emit(Event::PlacementScored {
                job: workload.clone(),
                candidates: scored,
                best_score,
            });
        }
        let mut order: Vec<usize> =
            candidates.order.into_iter().filter(|&i| self.nodes[i].alive()).collect();
        if let Some(limit) = self.config.probe_limit {
            order.truncate(limit.max(1));
        }
        let (winner, orphans) = match self.config.admission {
            AdmissionMode::Serial => self.admit_serial(&order, &job, telemetry)?,
            AdmissionMode::Threaded => self.admit_threaded(&order, &job, telemetry)?,
        };
        if let Some(node_id) = winner {
            self.job_index.insert(job_id, node_id);
        }
        for orphan in orphans {
            if self.admit_job(orphan, telemetry)?.is_none() {
                self.note_rejected();
            } else {
                self.replaced += 1;
            }
        }
        Ok(winner.map(|node_id| {
            telemetry.emit(Event::Placement { node: node_id, job: workload });
            Placement { job_id, node: node_id }
        }))
    }

    /// Evicts a crashed node: takes it out of service, drains its
    /// committed jobs for re-placement, and reports the eviction.
    fn evict_node(&mut self, node_id: usize, telemetry: &Telemetry<'_>) -> Vec<PlacedJob> {
        let orphans = self.nodes[node_id].mark_dead();
        for orphan in &orphans {
            self.job_index.remove(&orphan.id);
        }
        self.stats.refresh_node(&self.nodes[node_id]);
        telemetry.emit(Event::NodeEvicted { node: node_id, jobs: orphans.len() });
        orphans
    }

    /// Serial admission: probe candidates one at a time, committing to
    /// the first feasible node. A probe that surfaces a node crash evicts
    /// that node (its drained jobs are returned for re-placement) and the
    /// scan continues on the remaining candidates. The per-admission
    /// deadline budget is checked *before* each probe: once the windows
    /// recorded for this admission reach it, remaining candidates are
    /// skipped entirely.
    fn admit_serial(
        &mut self,
        order: &[usize],
        job: &PlacedJob,
        telemetry: &Telemetry<'_>,
    ) -> Result<(Option<usize>, Vec<PlacedJob>), ClusterError> {
        let mut orphans = Vec::new();
        let mut spent: u64 = 0;
        for &node_id in order {
            if self.config.deadline_samples.is_some_and(|budget| spent >= budget) {
                break;
            }
            let before = self.nodes[node_id].samples_spent();
            match self.nodes[node_id].try_admit_with(job.clone(), &self.config.clite, telemetry) {
                Ok(admitted) => {
                    spent += self.nodes[node_id].samples_spent() - before;
                    self.stats.refresh_node(&self.nodes[node_id]);
                    if admitted {
                        return Ok((Some(node_id), orphans));
                    }
                }
                Err(e) if e.is_node_crash() => {
                    orphans.extend(self.evict_node(node_id, telemetry));
                }
                Err(e) => return Err(e),
            }
        }
        Ok((None, orphans))
    }

    /// Threaded admission: probe every candidate concurrently, then walk
    /// the results in placement order, charging each probed node and
    /// committing the first feasible plan. Results past the winner are
    /// discarded *unrecorded* — a serial scan would never have run them —
    /// and that includes crashes: a node whose probe crashed after the
    /// winner's position stays alive, exactly as if it had never been
    /// probed. Crashes at or before the winner evict the node just as the
    /// serial scan would. Fault streams are a pure function of each node's
    /// committed state (seeded per probe), so serial and threaded runs see
    /// identical crashes and produce identical fleets and statistics under
    /// a fixed seed.
    fn admit_threaded(
        &mut self,
        order: &[usize],
        job: &PlacedJob,
        telemetry: &Telemetry<'_>,
    ) -> Result<(Option<usize>, Vec<PlacedJob>), ClusterError> {
        let recorder = telemetry.recorder();
        let config = &self.config.clite;
        let nodes = &self.nodes;
        // One pool slot per candidate: probes are independent and pure
        // given each node's committed state, so results depend only on
        // the candidate order, never on which pool thread ran a probe.
        let results: Vec<Result<Option<AdmissionPlan>, ClusterError>> =
            telemetry.time(Phase::ParDispatch, || {
                clite_par::map_indexed(
                    clite_par::WorkerPool::global(),
                    order.len(),
                    order,
                    || (),
                    |(), _, &node_id| {
                        // Telemetry contexts are single-threaded (interior
                        // phase-timer state), so each slot wraps the shared
                        // thread-safe recorder in its own.
                        let local = Telemetry::new(recorder);
                        nodes[node_id].plan_admission(job.clone(), config, &local)
                    },
                )
            });
        let mut orphans = Vec::new();
        let mut spent: u64 = 0;
        for (result, &node_id) in results.into_iter().zip(order) {
            // Deadline check mirrors the serial scan's: a candidate the
            // serial loop would never have probed is discarded unrecorded
            // here, crashes included.
            if self.config.deadline_samples.is_some_and(|budget| spent >= budget) {
                break;
            }
            match result {
                Ok(Some(plan)) => {
                    spent += plan.outcome().samples_used() as u64;
                    self.nodes[node_id].record_probe(&plan);
                    let feasible = plan.feasible();
                    if feasible {
                        self.nodes[node_id].commit_admission(plan);
                    }
                    self.stats.refresh_node(&self.nodes[node_id]);
                    if feasible {
                        return Ok((Some(node_id), orphans));
                    }
                }
                Ok(None) => {
                    self.stats.refresh_node(&self.nodes[node_id]);
                }
                Err(e) if e.is_node_crash() => {
                    orphans.extend(self.evict_node(node_id, telemetry));
                }
                Err(e) => return Err(e),
            }
        }
        Ok((None, orphans))
    }

    /// Removes a placed job (departure) and re-partitions its node.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if no node hosts `job_id`.
    pub fn remove(&mut self, job_id: u64) -> Result<(), ClusterError> {
        self.remove_with(job_id, &Telemetry::disabled())
    }

    /// [`remove`](ClusterScheduler::remove) with telemetry: the departure
    /// emits [`Event::Eviction`] before the node re-partitions.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if no node hosts `job_id`.
    pub fn remove_with(
        &mut self,
        job_id: u64,
        telemetry: &Telemetry<'_>,
    ) -> Result<(), ClusterError> {
        let Some(&node_id) = self.job_index.get(&job_id) else {
            return Err(ClusterError::UnknownJob { job: job_id });
        };
        self.job_index.remove(&job_id);
        let node = &mut self.nodes[node_id];
        let job = node.jobs().iter().find(|j| j.id == job_id).expect("job index is current");
        telemetry
            .emit(Event::Eviction { node: node.id(), job: job.spec.workload.name().to_owned() });
        match node.remove_with(job_id, &self.config.clite, telemetry) {
            Ok(()) => {
                self.stats.refresh_node(&self.nodes[node_id]);
                Ok(())
            }
            Err(e) if e.is_node_crash() => {
                // The node died while re-partitioning after the departure:
                // evict it and re-home its surviving jobs.
                let orphans = self.evict_node(node_id, telemetry);
                for orphan in orphans {
                    if self.admit_job(orphan, telemetry)?.is_none() {
                        self.note_rejected();
                    } else {
                        self.replaced += 1;
                    }
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Changes a placed job's load schedule (the fleet's `load_shift`
    /// event) and re-partitions its node under the new load.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if no node hosts `job_id`;
    /// propagates controller/simulator failures.
    pub fn update_load(&mut self, job_id: u64, load: LoadSchedule) -> Result<(), ClusterError> {
        self.update_load_with(job_id, load, &Telemetry::disabled())
    }

    /// [`update_load`](ClusterScheduler::update_load) with telemetry. A
    /// node that crashes while re-partitioning is evicted and its jobs
    /// (including the one whose load changed) re-placed, exactly like a
    /// crash during a departure.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] if no node hosts `job_id`.
    pub fn update_load_with(
        &mut self,
        job_id: u64,
        load: LoadSchedule,
        telemetry: &Telemetry<'_>,
    ) -> Result<(), ClusterError> {
        let Some(&node_id) = self.job_index.get(&job_id) else {
            return Err(ClusterError::UnknownJob { job: job_id });
        };
        match self.nodes[node_id].update_load_with(job_id, load, &self.config.clite, telemetry) {
            Ok(()) => {
                self.stats.refresh_node(&self.nodes[node_id]);
                Ok(())
            }
            Err(e) if e.is_node_crash() => {
                let orphans = self.evict_node(node_id, telemetry);
                for orphan in orphans {
                    if self.admit_job(orphan, telemetry)?.is_none() {
                        self.note_rejected();
                    } else {
                        self.replaced += 1;
                    }
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Which node hosts `job_id`, if any. O(1).
    #[must_use]
    pub fn node_of(&self, job_id: u64) -> Option<usize> {
        self.job_index.get(&job_id).copied()
    }

    /// Current fleet statistics — the incrementally maintained snapshot,
    /// cloned without touching any node. O(fleet) only in the copy of the
    /// per-node vector, never in recomputation.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        self.stats.clone()
    }

    /// Borrows the incrementally maintained statistics without cloning
    /// (the fleet service's epoch solver and gauge exporter read these
    /// every few events).
    #[must_use]
    pub fn stats_ref(&self) -> &ClusterStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler(nodes: usize, policy: PlacementPolicy) -> ClusterScheduler {
        ClusterScheduler::new(
            nodes,
            SchedulerConfig { placement: policy, ..SchedulerConfig::default() },
            99,
        )
        .unwrap()
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(matches!(
            ClusterScheduler::new(0, SchedulerConfig::default(), 0),
            Err(ClusterError::EmptyCluster)
        ));
    }

    #[test]
    fn light_jobs_all_placed() {
        let mut c = scheduler(2, PlacementPolicy::LeastLoaded);
        for w in [WorkloadId::Memcached, WorkloadId::ImgDnn, WorkloadId::Xapian] {
            let placed = c.submit(JobSpec::latency_critical(w, 0.2)).unwrap();
            assert!(placed.is_some());
        }
        assert_eq!(c.rejected(), 0);
        let total: usize = c.nodes().iter().map(Node::job_count).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn least_loaded_spreads_most_loaded_packs() {
        let mut spread = scheduler(2, PlacementPolicy::LeastLoaded);
        let mut pack = scheduler(2, PlacementPolicy::MostLoaded);
        for _ in 0..2 {
            spread.submit(JobSpec::latency_critical(WorkloadId::Memcached, 0.3)).unwrap();
            pack.submit(JobSpec::latency_critical(WorkloadId::Memcached, 0.3)).unwrap();
        }
        let spread_counts: Vec<usize> = spread.nodes().iter().map(Node::job_count).collect();
        let pack_counts: Vec<usize> = pack.nodes().iter().map(Node::job_count).collect();
        assert_eq!(spread_counts, vec![1, 1], "least-loaded spreads");
        assert_eq!(pack_counts, vec![2, 0], "most-loaded packs");
    }

    #[test]
    fn overload_spills_to_other_nodes_then_rejects() {
        let mut c = scheduler(2, PlacementPolicy::MostLoaded);
        let mut placements = Vec::new();
        // Heavy LC jobs: each node fits roughly one or two of these.
        for i in 0..6 {
            let w = [WorkloadId::Masstree, WorkloadId::ImgDnn][i % 2];
            if let Some(p) = c.submit(JobSpec::latency_critical(w, 0.8)).unwrap() {
                placements.push(p);
            }
        }
        assert!(c.rejected() > 0, "a 2-node cluster cannot host six 80% LC jobs");
        assert!(!placements.is_empty(), "but some must be placed");
        // Every committed node still meets QoS.
        for n in c.nodes() {
            if let Some(o) = n.last_outcome() {
                assert!(o.qos_met(), "node {} committed a QoS-violating set", n.id());
            }
        }
    }

    #[test]
    fn departures_free_capacity() {
        let mut c = scheduler(1, PlacementPolicy::FirstFit);
        let a = c.submit(JobSpec::latency_critical(WorkloadId::Masstree, 0.8)).unwrap().unwrap();
        let b = c.submit(JobSpec::latency_critical(WorkloadId::ImgDnn, 0.8)).unwrap();
        assert!(b.is_some());
        // A third heavy job is rejected...
        let rejected = c.submit(JobSpec::latency_critical(WorkloadId::Specjbb, 0.9)).unwrap();
        assert!(rejected.is_none());
        // ...until a departure frees the node.
        c.remove(a.job_id).unwrap();
        let retry = c.submit(JobSpec::latency_critical(WorkloadId::Specjbb, 0.8)).unwrap();
        assert!(retry.is_some(), "departure must free capacity");
    }

    #[test]
    fn deadline_budget_caps_probing_and_preserves_byte_identity() {
        // Saturate a small fleet so the probe job below runs a real — and
        // infeasible — search on every candidate it reaches. Without a
        // deadline the scan pays for a search per candidate; with a
        // 1-window budget it stops after the first search finishes.
        let build = |deadline: Option<u64>, admission: AdmissionMode| {
            let mut c = ClusterScheduler::new(
                3,
                SchedulerConfig {
                    placement: PlacementPolicy::FirstFit,
                    admission,
                    deadline_samples: deadline,
                    ..SchedulerConfig::default()
                },
                99,
            )
            .unwrap();
            for i in 0..9 {
                let w = [WorkloadId::Masstree, WorkloadId::ImgDnn][i % 2];
                let _ = c.submit(JobSpec::latency_critical(w, 0.8)).unwrap();
            }
            c
        };
        let probe = |c: &mut ClusterScheduler| {
            let before = c.total_samples_spent();
            let placed = c.submit(JobSpec::latency_critical(WorkloadId::Specjbb, 0.9)).unwrap();
            assert!(placed.is_none(), "the saturated fleet must reject the probe job");
            c.total_samples_spent() - before
        };

        let mut unbounded = build(None, AdmissionMode::Serial);
        let mut bounded = build(Some(1), AdmissionMode::Serial);
        let mut threaded = build(Some(1), AdmissionMode::Threaded);
        let full_scan = probe(&mut unbounded);
        let capped = probe(&mut bounded);
        let capped_threaded = probe(&mut threaded);
        assert!(capped > 0, "the first candidate's search is still paid for");
        assert!(
            capped < full_scan,
            "deadline must stop the scan after one search: capped {capped}, full {full_scan}"
        );
        assert_eq!(
            capped, capped_threaded,
            "threaded admission must honor the deadline at the same scan points"
        );
        assert_eq!(bounded.stats(), threaded.stats(), "deadline preserves byte-identity");
    }

    #[test]
    fn remove_unknown_job_errors() {
        let mut c = scheduler(1, PlacementPolicy::FirstFit);
        assert!(matches!(c.remove(7), Err(ClusterError::UnknownJob { job: 7 })));
    }

    #[test]
    fn placements_and_evictions_emit_events() {
        use clite_telemetry::MemoryRecorder;

        let sink = MemoryRecorder::new();
        let telemetry = Telemetry::new(&sink);
        let mut c = scheduler(1, PlacementPolicy::FirstFit);
        let placed = c
            .submit_with(JobSpec::latency_critical(WorkloadId::Memcached, 0.2), &telemetry)
            .unwrap()
            .unwrap();
        assert_eq!(sink.count_kind("placement"), 1);
        // The admission search's own events flow through the same sink.
        assert!(sink.count_kind("bootstrap_sample") > 0);
        c.remove_with(placed.job_id, &telemetry).unwrap();
        assert_eq!(sink.count_kind("eviction"), 1);
    }
}
