//! # clite-cluster — warehouse-scale placement on top of CLITE
//!
//! The paper's motivation is datacenter-level: "the key to improving data
//! center utilization and operational efficiency is co-locating
//! latency-critical jobs with throughput-oriented background jobs", and
//! its ejection rule ("these jobs can be immediately scheduled elsewhere")
//! presumes a cluster scheduler above the per-node controller. This crate
//! is that layer, built entirely on the reproduction's public APIs:
//!
//! * [`node::Node`] — one server plus its committed job set and the last
//!   CLITE outcome for it;
//! * [`placement::PlacementPolicy`] — the order in which candidate nodes
//!   are tried (first-fit, least-loaded, most-loaded/bin-packing, the
//!   mean-field target template, or a trained `clite-learn` ranking model
//!   bridged through [`learned`]);
//! * [`scheduler::ClusterScheduler`] — admission control: tentatively add
//!   the job to a candidate node, run a budget-capped CLITE search, commit
//!   if every LC job still meets QoS (keeping the found partition), and
//!   fall through to the next node otherwise — the cluster-level analogue
//!   of the paper's "schedule elsewhere" rule;
//! * [`stats::ClusterStats`] — utilization and QoS accounting across the
//!   fleet.
//!
//! This layer is an *extension* of the paper (its evaluation stops at one
//! node); it exists to exercise the controller the way a warehouse-scale
//! deployment would and is documented as such in `DESIGN.md`.
//!
//! ## Example
//!
//! ```
//! use clite_cluster::placement::PlacementPolicy;
//! use clite_cluster::scheduler::{ClusterScheduler, SchedulerConfig};
//! use clite_sim::prelude::*;
//!
//! let mut cluster = ClusterScheduler::new(2, SchedulerConfig::default(), 7)?;
//! let placed = cluster.submit(JobSpec::latency_critical(WorkloadId::Memcached, 0.3))?;
//! assert!(placed.is_some(), "an empty cluster must admit a 30% memcached");
//! # Ok::<(), clite_cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod fleet;
pub mod learned;
pub mod node;
pub mod placement;
pub mod recovery;
pub mod scheduler;
pub mod stats;
pub mod trace;
pub mod wire;

mod error;

pub use error::ClusterError;
