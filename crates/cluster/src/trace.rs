//! Deterministic fleet-trace generation.
//!
//! Produces a mixed arrival/departure/load-shift event stream from one
//! seed. The generator mirrors the scheduler's job-id assignment (arrival
//! `k` is id `k`) by counting its own arrivals, so it can target earlier
//! jobs for departures and load shifts without observing the fleet; a
//! targeted job the fleet rejected at arrival simply becomes a stale
//! no-op event. Same seed, same config → byte-identical trace, on any
//! machine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use clite_sim::prelude::*;

use crate::event::{FleetEvent, TimedEvent};

/// Shape of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Total events to generate.
    pub events: usize,
    /// Relative weight of job arrivals.
    pub arrival_weight: u32,
    /// Relative weight of job departures (only once jobs are live).
    pub departure_weight: u32,
    /// Relative weight of load shifts (only once jobs are live).
    pub load_shift_weight: u32,
    /// Emit an [`FleetEvent::Onboard`] every this many ticks (`None` for a
    /// fixed-size fleet).
    pub onboard_every: Option<u64>,
    /// Nodes added per onboard event.
    pub onboard_nodes: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            events: 64,
            arrival_weight: 6,
            departure_weight: 2,
            load_shift_weight: 2,
            onboard_every: None,
            onboard_nodes: 0,
        }
    }
}

/// Generates a deterministic event trace (one event per tick, starting at
/// tick 1).
#[must_use]
pub fn generate(config: &TraceConfig, seed: u64) -> Vec<TimedEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id: u64 = 0;
    let mut live: Vec<u64> = Vec::new();
    let mut events = Vec::with_capacity(config.events);
    for i in 0..config.events {
        let tick = i as u64 + 1;
        if let Some(every) = config.onboard_every {
            if config.onboard_nodes > 0 && tick.is_multiple_of(every) {
                events.push(TimedEvent::new(
                    tick,
                    FleetEvent::Onboard { nodes: config.onboard_nodes },
                ));
                continue;
            }
        }
        let churn =
            if live.is_empty() { 0 } else { config.departure_weight + config.load_shift_weight };
        let total = (config.arrival_weight + churn).max(1);
        let roll = rng.gen_range(0..total);
        let event = if roll < config.arrival_weight || live.is_empty() {
            let spec = arrival_spec(&mut rng);
            live.push(next_id);
            next_id += 1;
            FleetEvent::Arrival { spec }
        } else if roll < config.arrival_weight + config.departure_weight {
            let k = rng.gen_range(0..live.len());
            FleetEvent::Departure { job: live.swap_remove(k) }
        } else {
            let k = rng.gen_range(0..live.len());
            let load = f64::from(rng.gen_range(1..=7)) * 0.1;
            FleetEvent::LoadShift { job: live[k], load: LoadSchedule::Constant(load) }
        };
        events.push(TimedEvent::new(tick, event));
    }
    events
}

/// The same arrival mix the cluster experiment streams: two LC jobs per
/// BG job, LC loads 10–60%.
fn arrival_spec(rng: &mut StdRng) -> JobSpec {
    if rng.gen_range(0..3) == 2 {
        JobSpec::background(WorkloadId::BACKGROUND[rng.gen_range(0..6)])
    } else {
        let w = WorkloadId::LATENCY_CRITICAL[rng.gen_range(0..5)];
        JobSpec::latency_critical(w, f64::from(rng.gen_range(1..=6)) * 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic() {
        let config = TraceConfig { events: 40, ..TraceConfig::default() };
        assert_eq!(generate(&config, 7), generate(&config, 7));
        assert_ne!(generate(&config, 7), generate(&config, 8), "seed matters");
    }

    #[test]
    fn departures_and_shifts_target_prior_arrivals() {
        let config = TraceConfig {
            events: 200,
            arrival_weight: 2,
            departure_weight: 3,
            load_shift_weight: 3,
            ..TraceConfig::default()
        };
        let trace = generate(&config, 42);
        let mut arrived: u64 = 0;
        let mut churn = 0;
        for te in &trace {
            match &te.event {
                FleetEvent::Arrival { .. } => arrived += 1,
                FleetEvent::Departure { job } | FleetEvent::LoadShift { job, .. } => {
                    assert!(*job < arrived, "event targets a job that has not arrived yet");
                    churn += 1;
                }
                FleetEvent::Onboard { .. } => {}
            }
        }
        assert!(churn > 0, "weighted trace must contain churn");
    }

    #[test]
    fn onboard_events_fire_on_schedule() {
        let config = TraceConfig {
            events: 20,
            onboard_every: Some(10),
            onboard_nodes: 4,
            ..TraceConfig::default()
        };
        let trace = generate(&config, 1);
        let onboards: Vec<u64> = trace
            .iter()
            .filter(|te| matches!(te.event, FleetEvent::Onboard { .. }))
            .map(|te| te.at)
            .collect();
        assert_eq!(onboards, vec![10, 20]);
    }
}
