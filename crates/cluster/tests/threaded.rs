//! Serial vs. threaded admission must be indistinguishable: under a fixed
//! seed both modes commit the same jobs to the same nodes with the same
//! partitions and spend the same number of observation windows. The job
//! stream deliberately mixes light and heavy jobs so some submissions are
//! rejected outright and others probe several nodes before landing —
//! exactly the paths where a naive parallelization would diverge.

use std::sync::Arc;

use clite_cluster::placement::PlacementPolicy;
use clite_cluster::scheduler::{AdmissionMode, ClusterScheduler, SchedulerConfig};
use clite_sim::prelude::*;
use clite_store::ObservationStore;

/// A deterministic non-zero ranking model, so the learned policy's
/// byte-identity is tested with weights that actually reorder candidates.
fn test_model() -> Arc<clite_learn::RankingModel> {
    let mut model = clite_learn::RankingModel::zeroed();
    for (i, w) in model.weights.iter_mut().enumerate() {
        *w = (i as f64 - 6.0) * 0.05;
    }
    model.epochs = 1;
    Arc::new(model)
}

fn job_stream() -> Vec<JobSpec> {
    vec![
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.8),
        JobSpec::background(WorkloadId::Streamcluster),
        JobSpec::latency_critical(WorkloadId::Masstree, 0.8),
        JobSpec::latency_critical(WorkloadId::Specjbb, 0.9),
        JobSpec::latency_critical(WorkloadId::Memcached, 0.7),
    ]
}

/// Runs the stream through a fresh cluster and returns the placement
/// sequence (`None` = rejected) plus the final fleet statistics.
fn run(
    mode: AdmissionMode,
    placement: PlacementPolicy,
    seed: u64,
) -> (Vec<Option<usize>>, clite_cluster::stats::ClusterStats) {
    let config = SchedulerConfig { placement, admission: mode, ..SchedulerConfig::default() };
    let mut cluster = ClusterScheduler::new(2, config, seed).expect("2-node cluster");
    let placements: Vec<Option<usize>> = job_stream()
        .into_iter()
        .map(|spec| cluster.submit(spec).expect("submit").map(|p| p.node))
        .collect();
    (placements, cluster.stats())
}

#[test]
fn threaded_admission_matches_serial_placements_and_stats() {
    for placement in [
        PlacementPolicy::FirstFit,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::MostLoaded,
        PlacementPolicy::Learned { model: test_model() },
    ] {
        let (serial_placements, serial_stats) = run(AdmissionMode::Serial, placement.clone(), 42);
        let (threaded_placements, threaded_stats) =
            run(AdmissionMode::Threaded, placement.clone(), 42);
        assert_eq!(
            serial_placements,
            threaded_placements,
            "{} placements diverged between serial and threaded admission",
            placement.name()
        );
        assert_eq!(
            serial_stats,
            threaded_stats,
            "{} fleet statistics diverged between serial and threaded admission",
            placement.name()
        );
    }
}

#[test]
fn threaded_admission_is_self_deterministic() {
    let (a_placements, a_stats) = run(AdmissionMode::Threaded, PlacementPolicy::LeastLoaded, 7);
    let (b_placements, b_stats) = run(AdmissionMode::Threaded, PlacementPolicy::LeastLoaded, 7);
    assert_eq!(a_placements, b_placements);
    assert_eq!(a_stats, b_stats);
}

/// Like [`run`] but with one shared observation store across the fleet.
fn run_with_store(
    mode: AdmissionMode,
    placement: PlacementPolicy,
    seed: u64,
) -> (Vec<Option<usize>>, clite_cluster::stats::ClusterStats, u64) {
    let config = SchedulerConfig { placement, admission: mode, ..SchedulerConfig::default() };
    let store = ObservationStore::in_memory().into_shared();
    let mut cluster =
        ClusterScheduler::new(2, config, seed).expect("2-node cluster").with_store(store.clone());
    let placements: Vec<Option<usize>> = job_stream()
        .into_iter()
        .map(|spec| cluster.submit(spec).expect("submit").map(|p| p.node))
        .collect();
    let appends = store.lock().unwrap().stats().appends;
    (placements, cluster.stats(), appends)
}

#[test]
fn store_backed_admission_keeps_serial_threaded_equivalence() {
    // Probes read the store; appends happen only at commit — so a shared
    // store must not break the serial ≡ threaded placement guarantee, and
    // both modes must append the same committed samples.
    let (serial_placements, serial_stats, serial_appends) =
        run_with_store(AdmissionMode::Serial, PlacementPolicy::LeastLoaded, 42);
    let (threaded_placements, threaded_stats, threaded_appends) =
        run_with_store(AdmissionMode::Threaded, PlacementPolicy::LeastLoaded, 42);
    assert_eq!(serial_placements, threaded_placements);
    assert_eq!(serial_stats, threaded_stats);
    assert_eq!(serial_appends, threaded_appends);
    assert!(serial_appends > 0, "committed searches must reach the store");
}

#[test]
fn store_backed_admission_matches_storeless_placements() {
    // Warm starts change how fast searches converge, never which
    // placements are feasible: the committed fleet must match the
    // storeless run's.
    let (plain, _) = run(AdmissionMode::Serial, PlacementPolicy::LeastLoaded, 42);
    let (stored, _, _) = run_with_store(AdmissionMode::Serial, PlacementPolicy::LeastLoaded, 42);
    assert_eq!(plain, stored);
}

/// Like [`run`] but with fault injection on every node's testbeds: each
/// probe's fault stream is seeded by the build seed — a pure function of
/// `(node id, commit count)` — so both admission modes must see identical
/// crashes, evict identical nodes, and re-place the orphaned jobs
/// identically.
fn run_with_faults(
    mode: AdmissionMode,
    placement: PlacementPolicy,
    seed: u64,
    spec: clite_faults::FaultSpec,
) -> (Vec<Option<usize>>, clite_cluster::stats::ClusterStats) {
    use clite_faults::FaultyFactory;
    use clite_sim::testbed::ServerFactory;

    let config = SchedulerConfig { placement, admission: mode, ..SchedulerConfig::default() };
    let factory = FaultyFactory::new(ServerFactory, spec);
    let mut cluster =
        ClusterScheduler::with_factory(3, config, seed, factory).expect("3-node cluster");
    let placements: Vec<Option<usize>> = job_stream()
        .into_iter()
        .map(|spec| cluster.submit(spec).expect("submit survives crashes").map(|p| p.node))
        .collect();
    (placements, cluster.stats())
}

#[test]
fn node_crashes_keep_serial_threaded_equivalence() {
    // Crashes early enough (windows 1..=20) to hit mid-search, often
    // enough (50%) that several probes die across the stream.
    let spec = clite_faults::FaultSpec {
        crash_prob: 0.5,
        crash_window_max: 20,
        ..clite_faults::FaultSpec::none()
    };
    let (serial_placements, serial_stats) =
        run_with_faults(AdmissionMode::Serial, PlacementPolicy::LeastLoaded, 42, spec.clone());
    let (threaded_placements, threaded_stats) =
        run_with_faults(AdmissionMode::Threaded, PlacementPolicy::LeastLoaded, 42, spec);
    assert_eq!(
        serial_placements, threaded_placements,
        "placements diverged between serial and threaded admission under crashes"
    );
    assert_eq!(
        serial_stats, threaded_stats,
        "fleet statistics diverged between serial and threaded admission under crashes"
    );
    assert!(
        serial_stats.dead_nodes >= 1,
        "the fault spec must actually kill a node, or this test proves nothing"
    );
    // Dead nodes host nothing; live committed nodes still meet QoS.
    for n in serial_stats.nodes.iter().filter(|n| !n.alive) {
        assert_eq!(n.jobs, 0, "evicted node {} still hosts jobs", n.node);
    }
}

#[test]
fn learned_policy_keeps_serial_threaded_equivalence_under_crashes() {
    // The learned scorer reads committed state (stats, traces, headroom),
    // all of which the byte-identity discipline already pins — so the
    // model-ordered fleet must stay identical across admission modes even
    // while nodes crash and orphans re-home.
    let spec = clite_faults::FaultSpec {
        crash_prob: 0.5,
        crash_window_max: 20,
        ..clite_faults::FaultSpec::none()
    };
    let policy = PlacementPolicy::Learned { model: test_model() };
    let (serial_placements, serial_stats) =
        run_with_faults(AdmissionMode::Serial, policy.clone(), 42, spec.clone());
    let (threaded_placements, threaded_stats) =
        run_with_faults(AdmissionMode::Threaded, policy, 42, spec);
    assert_eq!(
        serial_placements, threaded_placements,
        "learned placements diverged between serial and threaded admission under crashes"
    );
    assert_eq!(
        serial_stats, threaded_stats,
        "learned fleet statistics diverged between serial and threaded admission under crashes"
    );
}

#[test]
fn nested_fanout_never_oversubscribes_the_pool() {
    // Threaded admission fans out one slot per candidate node, and each
    // node's search fans out again (hyper-grid fits, acquisition starts)
    // with more requested slots than the pool owns. Before the shared
    // pool, every layer spawned its own OS threads, multiplying live
    // workers; now every layer draws from the same fixed pool and callers
    // self-execute unclaimed slots, so the number of concurrently busy
    // pool workers can never exceed the pool size.
    use clite_par::WorkerPool;

    let pool = WorkerPool::global();
    let before = pool.stats();

    let mut config = SchedulerConfig {
        placement: PlacementPolicy::LeastLoaded,
        admission: AdmissionMode::Threaded,
        ..SchedulerConfig::default()
    };
    // Request far more search parallelism than any pool owns.
    config.clite.bo = config.clite.bo.with_threads(pool.size() * 4);
    let mut cluster = ClusterScheduler::new(3, config, 42).expect("3-node cluster");
    for spec in job_stream() {
        cluster.submit(spec).expect("submit");
    }

    let after = pool.stats();
    assert!(
        after.jobs > before.jobs,
        "the nested fan-out must actually dispatch through the shared pool"
    );
    assert!(
        after.max_busy_workers <= pool.workers(),
        "pool oversubscribed: {} workers busy at once but only {} exist",
        after.max_busy_workers,
        pool.workers()
    );
}

#[test]
fn heavy_stream_exercises_rejections_and_multi_node_probes() {
    // Sanity check on the fixture itself: if everything were trivially
    // placeable on the first candidate, the equality tests above would
    // prove nothing.
    let (placements, stats) = run(AdmissionMode::Serial, PlacementPolicy::LeastLoaded, 42);
    assert!(placements.iter().any(Option::is_none), "stream must include rejections");
    assert!(placements.iter().flatten().count() >= 4, "stream must include placements");
    let probes: u64 = stats.nodes.iter().map(|n| n.samples_spent).sum();
    assert!(probes > 0);
}
