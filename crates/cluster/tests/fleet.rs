//! Fleet-scale determinism: for a fixed trace and seed the event loop's
//! placements, counters, and statistics must be byte-identical across
//! serial vs threaded admission, across store shard counts, and across
//! repeated runs — at a fleet size (≥256 nodes) where a naive
//! parallelization or shard-dependent lookup would actually diverge.

use std::sync::Arc;

use clite_cluster::fleet::{FleetConfig, FleetRun, FleetService};
use clite_cluster::scheduler::AdmissionMode;
use clite_cluster::stats::ClusterStats;
use clite_cluster::trace::{generate, TraceConfig};
use clite_store::{ObservationStore, ShardPolicy, ShardedStore, StoreHandle};
use clite_telemetry::Telemetry;

const NODES: usize = 256;
const SEED: u64 = 42;

/// A mixed trace that grows the fleet past 256 nodes while jobs arrive,
/// depart, and shift load.
fn fleet_trace() -> Vec<clite_cluster::event::TimedEvent> {
    generate(
        &TraceConfig {
            events: 48,
            arrival_weight: 6,
            departure_weight: 2,
            load_shift_weight: 2,
            onboard_every: Some(16),
            onboard_nodes: 8,
        },
        SEED,
    )
}

/// Mean-field config: epoch template every 8 ticks, at most 4 probes per
/// admission — the fleet-scale operating point (probing all 256+ nodes per
/// arrival would be quadratic and is exactly what the epoch policy
/// avoids).
fn config(mode: AdmissionMode) -> FleetConfig {
    let mut config = FleetConfig::mean_field(8, 4);
    config.scheduler.admission = mode;
    config
}

fn run(mode: AdmissionMode, store: Option<StoreHandle>) -> FleetRun {
    let mut fleet = FleetService::new(NODES, config(mode), SEED).expect("fleet");
    if let Some(store) = store {
        fleet = fleet.with_store(store);
    }
    fleet.run(&fleet_trace(), &Telemetry::disabled()).expect("trace runs")
}

/// Like [`config`] but serving a trained (non-zero) placement model.
fn learned_config(mode: AdmissionMode) -> FleetConfig {
    let mut model = clite_learn::RankingModel::zeroed();
    for (i, w) in model.weights.iter_mut().enumerate() {
        *w = (i as f64 - 6.0) * 0.05;
    }
    model.epochs = 1;
    let mut config = FleetConfig::mean_field_learned(8, 4, Arc::new(model));
    config.scheduler.admission = mode;
    config
}

#[test]
fn learned_fleet_is_byte_identical_across_admission_modes() {
    // The acceptance criterion for the learned policy: the model-ordered
    // fleet keeps the serial ≡ threaded contract at scale, epoch solves
    // and all.
    let mut serial_fleet =
        FleetService::new(NODES, learned_config(AdmissionMode::Serial), SEED).expect("fleet");
    let serial = serial_fleet.run(&fleet_trace(), &Telemetry::disabled()).expect("trace runs");
    let mut threaded_fleet =
        FleetService::new(NODES, learned_config(AdmissionMode::Threaded), SEED).expect("fleet");
    let threaded = threaded_fleet.run(&fleet_trace(), &Telemetry::disabled()).expect("trace runs");
    assert_eq!(serial.placements, threaded.placements, "learned placements diverged");
    assert_eq!(serial.counters, threaded.counters, "learned counters diverged");
    assert_eq!(serial.stats, threaded.stats, "learned statistics diverged");
    assert!(serial.counters.epoch_solves >= 2, "epoch loop must keep solving for gauges");
    assert!(
        matches!(
            serial_fleet.scheduler().config().placement,
            clite_cluster::placement::PlacementPolicy::Learned { .. }
        ),
        "epoch solves must never overwrite the learned policy"
    );
}

#[test]
fn serial_and_threaded_fleets_are_byte_identical_at_256_nodes() {
    let serial = run(AdmissionMode::Serial, None);
    let threaded = run(AdmissionMode::Threaded, None);
    assert_eq!(serial.placements, threaded.placements, "placements diverged");
    assert_eq!(serial.counters, threaded.counters, "counters diverged");
    assert_eq!(serial.stats, threaded.stats, "statistics diverged");

    // The fixture must exercise the paths where divergence would show.
    assert!(serial.counters.arrivals >= 20, "trace must be arrival-heavy");
    assert!(serial.counters.departures + serial.counters.load_shifts > 0, "trace must churn");
    assert!(serial.counters.nodes_onboarded > 0, "trace must onboard nodes");
    assert!(serial.counters.epoch_solves >= 2, "epoch policy must re-solve");
    assert_eq!(serial.stats.nodes.len(), NODES + serial.counters.nodes_onboarded as usize);
}

#[test]
fn shard_count_does_not_change_fleet_outcomes() {
    let single: StoreHandle = ObservationStore::in_memory().into_shared().into();
    let reference = run(AdmissionMode::Serial, Some(single));
    for shards in [1usize, 4, 16] {
        let store: Arc<ShardedStore> = ShardedStore::in_memory(ShardPolicy::with_shards(shards));
        let got = run(AdmissionMode::Serial, Some(store.clone().into()));
        assert_eq!(got, reference, "{shards}-shard fleet diverged from the single-lock store");
        assert!(store.stats().appends > 0, "committed searches must reach the store");
    }
}

#[test]
fn threaded_sharded_fleet_matches_serial_single_lock() {
    // The headline contract from the issue: serial over one mutex-guarded
    // store vs threaded over a sharded store — every layer swapped at
    // once, still byte-identical.
    let single: StoreHandle = ObservationStore::in_memory().into_shared().into();
    let serial = run(AdmissionMode::Serial, Some(single));
    let sharded: Arc<ShardedStore> = ShardedStore::in_memory(ShardPolicy::with_shards(8));
    let threaded = run(AdmissionMode::Threaded, Some(sharded.into()));
    assert_eq!(serial, threaded);
}

#[test]
fn incremental_stats_match_from_scratch_recompute() {
    // The fleet reads ClusterStats every epoch; it is maintained
    // incrementally on commit/evict/remove/load-shift. Pin it against the
    // O(fleet) from-scratch recompute after a full churn trace.
    let mut fleet = FleetService::new(8, config(AdmissionMode::Serial), SEED).expect("fleet");
    fleet.run(&fleet_trace(), &Telemetry::disabled()).expect("trace runs");
    let scheduler = fleet.scheduler();
    let recomputed = ClusterStats::collect(scheduler.nodes(), scheduler.rejected());
    assert_eq!(fleet.stats(), recomputed, "incremental stats drifted from recompute");
    assert!(recomputed.placed > 0, "fixture must commit jobs for the check to bite");
}

#[test]
fn fleet_runs_are_self_deterministic() {
    let a = run(AdmissionMode::Threaded, None);
    let b = run(AdmissionMode::Threaded, None);
    assert_eq!(a, b);
}
