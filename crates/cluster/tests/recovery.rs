//! Durable-recovery identity at fleet scale: kill the durable fleet after
//! the k-th event — at both WAL boundaries — for **every** k in the trace,
//! recover from checkpoint + journal suffix, finish the trace, and demand
//! the [`FleetRun`] witness be byte-identical to a never-crashed run. Also
//! pins the overload path: shedding decisions survive kill/recover because
//! the disposition and backlog ride in the journal.

use std::path::PathBuf;

use clite_cluster::event::TimedEvent;
use clite_cluster::fleet::{FleetConfig, FleetRun, FleetService, OverloadConfig};
use clite_cluster::recovery::{CrashPlan, CrashPoint, DurableConfig, DurableFleet, DurableOutcome};
use clite_cluster::scheduler::AdmissionMode;
use clite_cluster::trace::{generate, TraceConfig};
use clite_sim::testbed::ServerFactory;
use clite_telemetry::Telemetry;

const NODES: usize = 64;
const SEED: u64 = 42;

fn recovery_trace() -> Vec<TimedEvent> {
    generate(
        &TraceConfig {
            events: 14,
            arrival_weight: 6,
            departure_weight: 2,
            load_shift_weight: 2,
            onboard_every: Some(6),
            onboard_nodes: 4,
        },
        SEED,
    )
}

fn config(mode: AdmissionMode) -> FleetConfig {
    let mut config = FleetConfig::mean_field(4, 3);
    config.scheduler.admission = mode;
    config
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clite-recovery-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn baseline(mode: AdmissionMode, trace: &[TimedEvent]) -> FleetRun {
    let mut service = FleetService::new(NODES, config(mode), SEED).expect("fleet");
    service.run(trace, &Telemetry::disabled()).expect("baseline runs")
}

/// The tentpole gate: kill at every event boundary (both crash points),
/// recover, finish, compare — byte-identical every time, at 64 nodes,
/// with checkpoints cutting the replay suffix mid-sweep.
#[test]
fn kill_at_every_event_recovers_byte_identically() {
    let trace = recovery_trace();
    let want = baseline(AdmissionMode::Serial, &trace);
    let durable = DurableConfig { checkpoint_every: 4 };
    let dir = tempdir("sweep");
    for k in 0..trace.len() as u64 {
        for point in [CrashPoint::Journaled, CrashPoint::Applied] {
            let mut fleet = DurableFleet::create(
                NODES,
                config(AdmissionMode::Serial),
                SEED,
                ServerFactory,
                &dir,
                durable,
            )
            .expect("create");
            let plan = CrashPlan { after_event: k, point };
            let outcome =
                fleet.run(&trace, Some(&plan), &Telemetry::disabled()).expect("run to kill");
            assert!(matches!(outcome, DurableOutcome::Killed { .. }), "plan at k={k} must fire");
            drop(fleet);

            let mut recovered = DurableFleet::recover(
                NODES,
                config(AdmissionMode::Serial),
                SEED,
                ServerFactory,
                &dir,
                durable,
                None,
                &Telemetry::disabled(),
            )
            .expect("recover");
            let DurableOutcome::Completed(got) =
                recovered.run(&trace, None, &Telemetry::disabled()).expect("finish")
            else {
                panic!("no crash plan on the resumed run");
            };
            assert_eq!(got, want, "witness diverged after kill at k={k} ({point:?})");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Serial and threaded admission recover to the same witness: the WAL
/// layer sits above the admission modes and must not perturb their
/// byte-identity contract.
#[test]
fn recovered_threaded_fleet_matches_serial() {
    let trace = recovery_trace();
    let want = baseline(AdmissionMode::Serial, &trace);
    let durable = DurableConfig { checkpoint_every: 4 };
    let dir = tempdir("threaded");
    let mut fleet = DurableFleet::create(
        NODES,
        config(AdmissionMode::Threaded),
        SEED,
        ServerFactory,
        &dir,
        durable,
    )
    .expect("create");
    let plan = CrashPlan { after_event: 7, point: CrashPoint::Journaled };
    fleet.run(&trace, Some(&plan), &Telemetry::disabled()).expect("run to kill");
    drop(fleet);
    let mut recovered = DurableFleet::recover(
        NODES,
        config(AdmissionMode::Threaded),
        SEED,
        ServerFactory,
        &dir,
        durable,
        None,
        &Telemetry::disabled(),
    )
    .expect("recover");
    let DurableOutcome::Completed(got) =
        recovered.run(&trace, None, &Telemetry::disabled()).expect("finish")
    else {
        panic!("must complete");
    };
    assert_eq!(got, want, "threaded recovery diverged from the serial baseline");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overload shedding under a bursty trace survives kill/recover: the
/// journal carries each arrival's disposition and backlog, so the
/// recovered run sheds the same arrivals and the journal accounts for
/// every one of them.
#[test]
fn shedding_decisions_survive_recovery_and_are_journaled() {
    // A burst: every event lands on the same tick, so the backlog trigger
    // fires for background arrivals while LC arrivals always probe. Use an
    // arrival-heavy trace so the fixture reliably contains BG arrivals.
    let burst: Vec<TimedEvent> = generate(
        &TraceConfig {
            events: 20,
            arrival_weight: 8,
            departure_weight: 1,
            load_shift_weight: 1,
            onboard_every: None,
            onboard_nodes: 0,
        },
        SEED,
    )
    .into_iter()
    .map(|e| TimedEvent::new(1, e.event))
    .collect();
    let mut shedding_config = config(AdmissionMode::Serial);
    shedding_config.overload =
        OverloadConfig { shed_backlog: Some(4), shed_window_debt: None, debt_horizon: 8 };

    let want = {
        let mut service = FleetService::new(NODES, shedding_config.clone(), SEED).expect("fleet");
        service.run(&burst, &Telemetry::disabled()).expect("baseline")
    };
    assert!(want.counters.arrivals_shed > 0, "fixture must actually shed");
    assert_eq!(
        want.placements.len() as u64,
        want.counters.arrivals,
        "shed arrivals still hold a witness slot"
    );

    let durable = DurableConfig { checkpoint_every: 3 };
    let dir = tempdir("shed");
    let mut fleet =
        DurableFleet::create(NODES, shedding_config.clone(), SEED, ServerFactory, &dir, durable)
            .expect("create");
    let plan = CrashPlan { after_event: 5, point: CrashPoint::Applied };
    fleet.run(&burst, Some(&plan), &Telemetry::disabled()).expect("run to kill");
    drop(fleet);
    let mut recovered = DurableFleet::recover(
        NODES,
        shedding_config,
        SEED,
        ServerFactory,
        &dir,
        durable,
        None,
        &Telemetry::disabled(),
    )
    .expect("recover");
    let DurableOutcome::Completed(got) =
        recovered.run(&burst, None, &Telemetry::disabled()).expect("finish")
    else {
        panic!("must complete");
    };
    assert_eq!(got, want, "shedding run diverged across kill/recover");
    let journaled = DurableFleet::<ServerFactory>::journaled_sheds(&dir).expect("audit");
    assert_eq!(
        journaled, want.counters.arrivals_shed,
        "every shed arrival must be accounted in the journal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
