//! # clite-bench — the experiment harness
//!
//! One module per table/figure of the CLITE paper's evaluation (Sec. 5),
//! each regenerating the corresponding result on the simulator substrate:
//! the same workload mixes, the same policies, the same metrics, printed as
//! paper-style tables and ASCII heatmaps.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p clite-bench --bin experiments -- all
//! ```
//!
//! or a single experiment (`fig7`, `fig15a`, `table1`, `summary`,
//! `ablations`, …). Pass `--full` for the paper-sized grids (slower) and
//! `--seed N` to re-seed every stochastic component.
//!
//! The absolute numbers differ from the paper (the substrate is a
//! simulator, not a Xeon testbed); the *shapes* — who wins, by roughly what
//! factor, where the co-location frontier falls — are the reproduction
//! target. `EXPERIMENTS.md` at the repository root records paper-vs-
//! measured for every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod export;
pub mod loadrun;
pub mod mixes;
pub mod render;
pub mod runner;

/// Options shared by every experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpOptions {
    /// Quick mode shrinks load grids and repeat counts so the whole suite
    /// finishes in minutes; `--full` restores paper-sized sweeps.
    pub quick: bool,
    /// Base seed for every stochastic component (servers, policies).
    pub seed: u64,
    /// Observation-store path (`--store`): experiments that re-invoke the
    /// CLITE search (fig16's adaptive loop) persist their observations
    /// here and warm-start from them on re-invocation.
    pub store: Option<std::path::PathBuf>,
    /// Serve the learned candidate-ordering model (`--placement learned`)
    /// instead of the least-loaded heuristic in fleet-style experiments.
    pub learned_placement: bool,
    /// Ranking-model path (`--model`) for learned placement; the zero
    /// model (heuristic-fallback order) when absent.
    pub model: Option<std::path::PathBuf>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self { quick: true, seed: 42, store: None, learned_placement: false, model: None }
    }
}

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Short id (`"fig7"`, `"table1"`, …).
    pub id: &'static str,
    /// Human-readable title (the paper's caption, abridged).
    pub title: String,
    /// Rendered body (tables/heatmaps/series).
    pub body: String,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "━━━ {} — {} ━━━", self.id, self.title)?;
        writeln!(f, "{}", self.body)
    }
}
