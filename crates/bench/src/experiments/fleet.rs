//! `fleet` — the fleet-service scale experiment (extension).
//!
//! Two curves, both committed to `results/BENCH_pr7.json`:
//!
//! 1. **Nodes vs admission latency**: the event loop streams a mixed
//!    arrival/departure/load-shift trace (with node crashes injected via
//!    `clite-faults`) across fleets from 64 up to ≥512 nodes under the
//!    mean-field epoch policy, serial and threaded admission side by
//!    side. The two runs must be byte-identical — the experiment asserts
//!    it at every scale point.
//! 2. **Store scaling**: admission-path throughput (warm-start lookups +
//!    commit appends from concurrent worker threads) against the PR 4
//!    single-mutex store — which must run its log compaction inline,
//!    under the lock, on the admission path — vs the sharded store at 1,
//!    4, and 16 shards, which defers compaction to the background thread
//!    and drains it off the timed path. The JSON rows include the drain
//!    (`settle_ms`) and per-shard contention counters so nothing is
//!    hidden; `host_threads` records how much hardware parallelism the
//!    numbers had available.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use clite_cluster::fleet::{FleetConfig, FleetRun, FleetService};
use clite_cluster::scheduler::AdmissionMode;
use clite_cluster::trace::{generate, TraceConfig};
use clite_faults::{FaultSpec, FaultyFactory};
use clite_sim::prelude::*;
use clite_sim::testbed::Testbed;
use clite_store::{
    MixSignature, ObservationStore, ShardPolicy, ShardedStore, SharedStore, StorePolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::export::save_json;
use crate::render::Table;
use crate::runner::ambient_telemetry;
use crate::{ExpOptions, Report};

/// Default artifact destination, overridable via `$CLITE_FLEET_REPORT`.
const BENCH_ARTIFACT: &str = "results/BENCH_pr7.json";

/// Compaction trigger shared by the mutex baseline and the sharded store,
/// so both pay for the same maintenance policy.
const GC_RATIO: f64 = 0.5;
const GC_MIN_RECORDS: u64 = 256;

/// The committed benchmark artifact.
#[derive(Debug, Serialize)]
struct FleetBench {
    version: u32,
    seed: u64,
    /// Hardware threads the store-scaling numbers had available.
    host_threads: usize,
    /// Nodes-vs-admission-latency curve.
    scale: Vec<ScalePoint>,
    /// Mutex baseline vs shard counts.
    store_scaling: Vec<StorePoint>,
}

/// One fleet size on the scale curve.
#[derive(Debug, Serialize)]
struct ScalePoint {
    nodes: usize,
    events: usize,
    arrivals: u64,
    placed: u64,
    departures: u64,
    load_shifts: u64,
    dead_nodes: usize,
    epoch_solves: u64,
    serial_wall_ms: f64,
    threaded_wall_ms: f64,
    /// Serial wall-clock per arrival — the admission-latency proxy.
    mean_admission_us: f64,
    byte_identical: bool,
}

/// One backend on the store-scaling curve.
#[derive(Debug, Serialize)]
struct StorePoint {
    backend: &'static str,
    shards: usize,
    threads: usize,
    ops: u64,
    admission_wall_ms: f64,
    ops_per_sec: f64,
    /// Off-path compaction drain after the timed window (sharded only;
    /// the mutex baseline compacts inline, inside `admission_wall_ms`).
    settle_ms: f64,
    lock_waits: u64,
    compactions: u64,
    appends: u64,
    hits: u64,
}

/// The crash plan for the scale runs: probes die mid-search often enough
/// that several nodes are evicted and their jobs re-placed at every
/// fleet size.
fn crash_spec() -> FaultSpec {
    FaultSpec { crash_prob: 0.35, crash_window_max: 20, ..FaultSpec::none() }
}

/// Resolves `--placement`/`--model` into the model the fleet serves
/// (`None` = the least-loaded heuristic).
fn placement_model(opts: &ExpOptions) -> Option<Arc<clite_learn::RankingModel>> {
    if !opts.learned_placement {
        return None;
    }
    let model = match &opts.model {
        Some(path) => {
            let (model, err) = clite_learn::load_or_zeroed(path);
            if let Some(e) = err {
                eprintln!("warning: {e}: serving the zero model instead of {}", path.display());
            }
            model
        }
        None => clite_learn::RankingModel::zeroed(),
    };
    Some(Arc::new(model))
}

/// Runs one trace over one fleet and times it.
fn run_fleet(
    nodes: usize,
    events: usize,
    mode: AdmissionMode,
    seed: u64,
    model: Option<&Arc<clite_learn::RankingModel>>,
) -> (FleetRun, std::time::Duration) {
    let mut config = match model {
        Some(m) => FleetConfig::mean_field_learned(8, 4, Arc::clone(m)),
        None => FleetConfig::mean_field(8, 4),
    };
    config.scheduler.admission = mode;
    let factory = FaultyFactory::new(clite_sim::testbed::ServerFactory, crash_spec());
    let store = ShardedStore::in_memory(ShardPolicy::with_shards(8));
    let mut fleet =
        FleetService::with_factory(nodes, config, seed, factory).expect("non-empty fleet");
    fleet = fleet.with_store(store);
    let trace = generate(&TraceConfig { events, ..TraceConfig::default() }, seed);
    let telemetry = ambient_telemetry();
    let start = Instant::now();
    let run = fleet.run(&trace, &telemetry).expect("fleet loop healthy");
    (run, start.elapsed())
}

/// The nodes-vs-admission-latency curve. Panics if serial and threaded
/// runs ever diverge — that is the acceptance contract, not a soft
/// metric.
fn scale_curve(opts: &ExpOptions) -> (Vec<ScalePoint>, String) {
    let node_counts: &[usize] =
        if opts.quick { &[64, 128, 256, 512] } else { &[64, 128, 256, 512, 1024] };
    let events = if opts.quick { 40 } else { 96 };
    let mut points = Vec::new();
    let mut t = Table::new(vec![
        "nodes",
        "arrivals",
        "placed",
        "dead",
        "serial (ms)",
        "threaded (ms)",
        "adm latency (us)",
        "identical",
    ]);
    let model = placement_model(opts);
    for &nodes in node_counts {
        let (serial, serial_wall) =
            run_fleet(nodes, events, AdmissionMode::Serial, opts.seed, model.as_ref());
        let (threaded, threaded_wall) =
            run_fleet(nodes, events, AdmissionMode::Threaded, opts.seed, model.as_ref());
        assert_eq!(serial, threaded, "serial and threaded fleet runs diverged at {nodes} nodes");
        let mean_admission_us =
            serial_wall.as_secs_f64() * 1e6 / (serial.counters.arrivals.max(1)) as f64;
        t.row(vec![
            nodes.to_string(),
            serial.counters.arrivals.to_string(),
            serial.counters.placed.to_string(),
            serial.stats.dead_nodes.to_string(),
            format!("{:.1}", serial_wall.as_secs_f64() * 1e3),
            format!("{:.1}", threaded_wall.as_secs_f64() * 1e3),
            format!("{mean_admission_us:.0}"),
            "yes".to_owned(),
        ]);
        points.push(ScalePoint {
            nodes,
            events,
            arrivals: serial.counters.arrivals,
            placed: serial.counters.placed,
            departures: serial.counters.departures,
            load_shifts: serial.counters.load_shifts,
            dead_nodes: serial.stats.dead_nodes,
            epoch_solves: serial.counters.epoch_solves,
            serial_wall_ms: serial_wall.as_secs_f64() * 1e3,
            threaded_wall_ms: threaded_wall.as_secs_f64() * 1e3,
            mean_admission_us,
            byte_identical: true,
        });
    }
    assert!(
        points.iter().any(|p| p.dead_nodes > 0),
        "the crash plan must actually kill nodes, or the smoke run proves nothing"
    );
    let body = format!(
        "fleet event loop, {events} events/trace, crashes injected (prob {}),\n\
         mean-field epoch policy (template every 8 ticks, probe limit 4),\n\
         {} candidate ordering:\n\n{}\n\
         Reading: admission latency stays flat as the fleet grows — the epoch\n\
         template caps per-arrival work at probe-limit searches regardless of\n\
         fleet size — and every serial/threaded pair is byte-identical.\n",
        crash_spec().crash_prob,
        if model.is_some() { "learned" } else { "heuristic" },
        t.render()
    );
    (points, body)
}

/// One pre-generated store sample.
struct PoolSample {
    signature: MixSignature,
    partition: Partition,
    observation: Observation,
}

/// A deterministic sample pool spanning 24 distinct mix keys × 6 partitions,
/// so shards are populated unevenly-but-broadly and dedupe churn creates
/// log garbage at a realistic rate.
fn sample_pool(seed: u64) -> Vec<PoolSample> {
    let catalog = ResourceCatalog::testbed();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::new();
    for jobs in [2usize, 3, 4] {
        for load_step in 1..=8u32 {
            let load = f64::from(load_step) * 0.1;
            // Rotate the workloads with the load step: the shard route
            // hashes the mix *key* (workloads, not loads), so varying only
            // the load would keep every bucket on three shards.
            let rot = load_step as usize;
            let specs: Vec<JobSpec> = (0..jobs)
                .map(|i| {
                    if i % 2 == 0 {
                        JobSpec::latency_critical(WorkloadId::LATENCY_CRITICAL[(i + rot) % 5], load)
                    } else {
                        JobSpec::background(WorkloadId::BACKGROUND[(i + rot) % 6])
                    }
                })
                .collect();
            let mut server = Server::new(catalog, specs, seed ^ jobs as u64).unwrap();
            let signature = MixSignature::capture(&server);
            for _ in 0..6 {
                let partition = Partition::random(&catalog, jobs, &mut rng).unwrap();
                let observation = Testbed::observe(&mut server, &partition);
                pool.push(PoolSample { signature: signature.clone(), partition, observation });
            }
        }
    }
    pool
}

/// Admission-path op mix: every 5th op is a commit append (with a rising
/// score, so dedupe evicts the previous sample and the log gathers
/// garbage); the rest are warm-start lookups.
fn is_append(op: usize) -> bool {
    op.is_multiple_of(5)
}

/// Drives `ops_per_thread` admission ops per thread against the mutex
/// baseline: one `ObservationStore` behind one exclusive lock, compaction
/// run inline (under the lock) whenever the garbage threshold trips —
/// the PR 4 architecture has no other place to put it.
fn drive_mutex(
    store: &SharedStore,
    pool: &[PoolSample],
    threads: usize,
    ops_per_thread: usize,
) -> std::time::Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..ops_per_thread {
                    let s = &pool[(t * 7919 + i) % pool.len()];
                    let mut guard = store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    if is_append(i) {
                        let score = (t * ops_per_thread + i) as f64 * 1e-9;
                        let _ = guard.append(&s.signature, &s.partition, &s.observation, score);
                        if guard.log_records() >= GC_MIN_RECORDS && guard.garbage_ratio() > GC_RATIO
                        {
                            guard.compact().expect("inline compaction");
                        }
                    } else {
                        let _ = guard.warm_start(&s.signature);
                    }
                }
            });
        }
    });
    start.elapsed()
}

/// The same op stream against the sharded store: lookups on the read fast
/// path, appends behind per-shard write locks, compaction deferred to the
/// background thread. Returns (admission wall, settle wall).
fn drive_sharded(
    store: &Arc<ShardedStore>,
    pool: &[PoolSample],
    threads: usize,
    ops_per_thread: usize,
) -> (std::time::Duration, std::time::Duration) {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(store);
            scope.spawn(move || {
                for i in 0..ops_per_thread {
                    let s = &pool[(t * 7919 + i) % pool.len()];
                    if is_append(i) {
                        let score = (t * ops_per_thread + i) as f64 * 1e-9;
                        let _ = store.append(&s.signature, &s.partition, &s.observation, score);
                    } else {
                        let _ = store.warm_start(&s.signature);
                    }
                }
            });
        }
    });
    let admission = start.elapsed();
    let settle_start = Instant::now();
    store.compact_pending().expect("settle compaction");
    (admission, settle_start.elapsed())
}

/// The store-scaling curve: mutex baseline, then 1/4/16 shards.
fn store_curve(opts: &ExpOptions, dir: &std::path::Path) -> (Vec<StorePoint>, String) {
    let threads = 4;
    let ops_per_thread = if opts.quick { 6_000 } else { 24_000 };
    let total_ops = (threads * ops_per_thread) as u64;
    let pool = sample_pool(opts.seed);
    let mut points = Vec::new();
    let mut t = Table::new(vec![
        "backend",
        "shards",
        "ops/s",
        "admission (ms)",
        "settle (ms)",
        "lock waits",
        "compactions",
    ]);

    // Warm every backend from the same pre-population pass so lookups hit
    // from the first op.
    let prepopulate = |append: &mut dyn FnMut(&PoolSample, f64)| {
        for (k, s) in pool.iter().enumerate() {
            append(s, k as f64 * 1e-12);
        }
    };

    {
        let path = dir.join("mutex.obs");
        let store = ObservationStore::open_with(&path, StorePolicy::default())
            .expect("mutex store opens")
            .into_shared();
        {
            let mut guard = store.lock().unwrap();
            prepopulate(&mut |s, score| {
                let _ = guard.append(&s.signature, &s.partition, &s.observation, score);
            });
        }
        let wall = drive_mutex(&store, &pool, threads, ops_per_thread);
        let stats = store.lock().unwrap().stats();
        let ops_per_sec = total_ops as f64 / wall.as_secs_f64();
        t.row(vec![
            "mutex".into(),
            "-".into(),
            format!("{ops_per_sec:.0}"),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            "inline".into(),
            stats.lock_waits.to_string(),
            stats.compactions.to_string(),
        ]);
        points.push(StorePoint {
            backend: "mutex",
            shards: 0,
            threads,
            ops: total_ops,
            admission_wall_ms: wall.as_secs_f64() * 1e3,
            ops_per_sec,
            settle_ms: 0.0,
            lock_waits: stats.lock_waits,
            compactions: stats.compactions,
            appends: stats.appends,
            hits: stats.hits,
        });
    }

    for shards in [1usize, 4, 16] {
        let path = dir.join(format!("sharded{shards}.obs"));
        let policy = ShardPolicy {
            shards,
            compaction_garbage_ratio: GC_RATIO,
            compaction_min_log_records: GC_MIN_RECORDS,
            background_compaction: true,
            ..ShardPolicy::default()
        };
        let store = ShardedStore::open(&path, policy).expect("sharded store opens");
        prepopulate(&mut |s, score| {
            let _ = store.append(&s.signature, &s.partition, &s.observation, score);
        });
        let (wall, settle) = drive_sharded(&store, &pool, threads, ops_per_thread);
        let stats = store.stats();
        let ops_per_sec = total_ops as f64 / wall.as_secs_f64();
        t.row(vec![
            "sharded".into(),
            shards.to_string(),
            format!("{ops_per_sec:.0}"),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", settle.as_secs_f64() * 1e3),
            stats.lock_waits.to_string(),
            stats.compactions.to_string(),
        ]);
        points.push(StorePoint {
            backend: "sharded",
            shards,
            threads,
            ops: total_ops,
            admission_wall_ms: wall.as_secs_f64() * 1e3,
            ops_per_sec,
            settle_ms: settle.as_secs_f64() * 1e3,
            lock_waits: stats.lock_waits,
            compactions: stats.compactions,
            appends: stats.appends,
            hits: stats.hits,
        });
    }

    let mutex_ops = points[0].ops_per_sec;
    let best = points[1..]
        .iter()
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("sharded points exist");
    let body = format!(
        "store admission path: {threads} threads x {ops_per_thread} ops (80% lookups,\n\
         20% commit appends), identical compaction policy (garbage > {}, min {}\n\
         records) on both backends:\n\n{}\n\
         Reading: the mutex baseline compacts inline on the admission path — every\n\
         worker stalls behind the rewrite — while the sharded store defers it to the\n\
         background thread and drains off-path (settle column). Best sharded\n\
         configuration ({} shards): {:.2}x the mutex admission throughput.\n",
        GC_RATIO,
        GC_MIN_RECORDS,
        t.render(),
        best.shards,
        best.ops_per_sec / mutex_ops,
    );
    (points, body)
}

/// The artifact destination: `$CLITE_FLEET_REPORT` or the default path.
#[must_use]
pub fn report_path() -> PathBuf {
    std::env::var_os("CLITE_FLEET_REPORT")
        .map_or_else(|| PathBuf::from(BENCH_ARTIFACT), PathBuf::from)
}

/// Experiment entry point.
///
/// # Panics
///
/// Panics if a serial and threaded fleet run diverge (determinism
/// regression) or on internal scheduler failures.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let (scale, mut body) = scale_curve(opts);

    let dir = std::env::temp_dir().join(format!("clite-fleet-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let (store_scaling, store_body) = store_curve(opts, &dir);
    std::fs::remove_dir_all(&dir).ok();
    body.push('\n');
    body.push_str(&store_body);

    let bench = FleetBench {
        version: 1,
        seed: opts.seed,
        host_threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        scale,
        store_scaling,
    };
    let path = report_path();
    match save_json(&path, &bench) {
        Ok(()) => body.push_str(&format!("\nbenchmark artifact written to {}\n", path.display())),
        Err(e) => {
            body.push_str(&format!("\nWARNING: cannot write {}: {e}\n", path.display()));
        }
    }
    Report {
        id: "fleet",
        title: "Fleet service at scale: event loop + sharded store (extension)".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_pool_is_deterministic_and_multi_mix() {
        let a = sample_pool(3);
        let b = sample_pool(3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 24 * 6);
        let sigs: std::collections::HashSet<_> =
            a.iter().map(|s| s.signature.shard_hash()).collect();
        assert!(sigs.len() >= 20, "pool must span many distinct mixes");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.signature, y.signature);
            assert_eq!(x.partition, y.partition);
        }
    }

    #[test]
    fn op_mix_is_read_heavy() {
        let appends = (0..100).filter(|&i| is_append(i)).count();
        assert_eq!(appends, 20);
    }
}
