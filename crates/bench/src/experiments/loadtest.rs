//! `loadtest` — the workload-driven load harness over searched
//! partitions: per-job latency percentiles (p50/p99/p99.9), QoS-violation
//! fractions, and tail CCDFs for a congested 2-job mix and a 5-job mix,
//! under every load trace, CLITE vs the equal-share baseline.
//!
//! Not a paper figure: this is the repo's own observability pipeline.
//! Every run writes the versioned JSON report (`results/reports/
//! loadtest.json`, or `$CLITE_LOAD_REPORT` when set — ci.sh points it at
//! a scratch file for the smoke gate); `--full` additionally writes the
//! machine-readable `results/BENCH_pr6.json` artifact. The `loadgate`
//! binary diffs two such reports and fails CI on tail regressions.

use std::path::PathBuf;

use clite_load::{LoadConfig, LoadReport, TraceKind};
use clite_sim::prelude::*;

use crate::loadrun::{equal_share_partition, load_scenario, searched_partition, EQUAL_SHARE};
use crate::mixes::Mix;
use crate::render::{pct, Table};
use crate::runner::{ambient_telemetry, PolicyKind};
use crate::{ExpOptions, Report};

/// Default report destination, overridable via `$CLITE_LOAD_REPORT`.
const DEFAULT_REPORT: &str = "results/reports/loadtest.json";
/// The `--full` run's committed benchmark artifact.
const BENCH_ARTIFACT: &str = "results/BENCH_pr6.json";

/// The two load-tested mixes: a congested 2-LC pair (where partitioning
/// quality shows up directly in the tail) and a 5-job mix with three LC
/// and two BG jobs (the fleet-realistic shape).
fn mixes() -> Vec<Mix> {
    vec![
        Mix::new(&[(WorkloadId::Memcached, 0.7), (WorkloadId::ImgDnn, 0.6)], &[]),
        Mix::new(
            &[(WorkloadId::ImgDnn, 0.4), (WorkloadId::Memcached, 0.4), (WorkloadId::Masstree, 0.4)],
            &[WorkloadId::Fluidanimate, WorkloadId::Blackscholes],
        ),
    ]
}

/// Runs the full loadtest grid and returns the report plus a rendered
/// table body. Shared by the experiment entry point and the acceptance
/// test.
#[must_use]
pub fn run_grid(opts: &ExpOptions) -> (LoadReport, String) {
    let base = if opts.quick {
        LoadConfig {
            windows: 6,
            queries_per_window: 4_000,
            threads: 4,
            seed: opts.seed,
            ..LoadConfig::default()
        }
    } else {
        LoadConfig {
            windows: 16,
            queries_per_window: 50_000,
            threads: 4,
            seed: opts.seed,
            ..LoadConfig::default()
        }
    };
    let telemetry = ambient_telemetry();
    let mut report = LoadReport::new(opts.seed);
    let mut body = String::new();

    for mix in mixes() {
        // One search per mix: the partition a policy commits to does not
        // depend on the trace it is later load-tested under.
        let clite = searched_partition(PolicyKind::Clite, &mix, opts.seed, &telemetry);
        let equal = equal_share_partition(&mix);
        let mut t = Table::new(vec![
            "trace",
            "policy",
            "job",
            "class",
            "p50 (us)",
            "p99 (us)",
            "p99.9 (us)",
            "QoS viol",
        ]);
        for trace in TraceKind::ALL {
            let config = LoadConfig { trace, ..base.clone() };
            for (label, partition) in [("CLITE", &clite), (EQUAL_SHARE, &equal)] {
                let scenario = load_scenario(&mix, label, partition, &config, &telemetry);
                for j in &scenario.jobs {
                    t.row(vec![
                        trace.name().to_owned(),
                        label.to_owned(),
                        j.job.clone(),
                        j.class.clone(),
                        j.tail.p50_us.to_string(),
                        j.tail.p99_us.to_string(),
                        j.tail.p999_us.to_string(),
                        j.tail
                            .qos_target_us
                            .map_or("-".to_owned(), |_| pct(j.tail.violation_fraction)),
                    ]);
                }
                report.push(scenario);
            }
        }
        body.push_str(&format!("mix: {}\n\n{}\n", mix.name, t.render()));
        body.push_str(&p99_delta_summary(&report, &mix.name));
    }
    (report, body)
}

/// One line per (trace, LC job): CLITE's p99 next to equal-share's, with
/// the ratio — the at-a-glance answer to "does the searched partition
/// actually buy tail latency".
fn p99_delta_summary(report: &LoadReport, mix: &str) -> String {
    let mut out = String::from("CLITE p99 vs equal-share:\n");
    for trace in TraceKind::ALL {
        let (Some(clite), Some(equal)) = (
            report.scenario(mix, trace.name(), "CLITE"),
            report.scenario(mix, trace.name(), EQUAL_SHARE),
        ) else {
            continue;
        };
        for (cj, ej) in clite.jobs.iter().zip(&equal.jobs) {
            if cj.class != "LC" {
                continue;
            }
            let ratio = cj.tail.p99_us as f64 / (ej.tail.p99_us as f64).max(1.0);
            out.push_str(&format!(
                "  {:8} {:12} {:>8} vs {:>8} us ({:.2}x)\n",
                trace.name(),
                cj.job,
                cj.tail.p99_us,
                ej.tail.p99_us,
                ratio
            ));
        }
    }
    out.push('\n');
    out
}

/// The report destination: `$CLITE_LOAD_REPORT` or the default path.
#[must_use]
pub fn report_path() -> PathBuf {
    std::env::var_os("CLITE_LOAD_REPORT")
        .map_or_else(|| PathBuf::from(DEFAULT_REPORT), PathBuf::from)
}

/// Experiment entry point.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let (report, mut body) = run_grid(opts);
    let path = report_path();
    match report.save(&path) {
        Ok(()) => body.push_str(&format!("load report written to {}\n", path.display())),
        Err(e) => {
            body.push_str(&format!("WARNING: cannot write load report {}: {e}\n", path.display()))
        }
    }
    if !opts.quick {
        match report.save(&PathBuf::from(BENCH_ARTIFACT)) {
            Ok(()) => body.push_str(&format!("benchmark artifact written to {BENCH_ARTIFACT}\n")),
            Err(e) => body.push_str(&format!("WARNING: cannot write {BENCH_ARTIFACT}: {e}\n")),
        }
    }
    Report {
        id: "loadtest",
        title: "Load harness: latency percentiles under traces, CLITE vs equal-share".into(),
        body,
    }
}
