//! Tables 1–3: the setup tables, regenerated from the code that embodies
//! them (so drift between docs and implementation is impossible).

use clite_sim::prelude::*;

use crate::render::Table;
use crate::{ExpOptions, Report};

/// Table 1: shared resources, allocation methods, and isolation tools.
#[must_use]
pub fn table1(_opts: &ExpOptions) -> Report {
    let catalog = ResourceCatalog::testbed();
    let mut t = Table::new(vec!["Shared Resource", "Allocation Method", "Isolation Tool", "Units"]);
    for r in ResourceKind::ALL {
        t.row(vec![
            r.name().to_owned(),
            r.allocation_method().to_owned(),
            r.isolation_tool().to_owned(),
            catalog.units(r).to_string(),
        ]);
    }
    Report {
        id: "table1",
        title: "Shared resources and their isolation tools".into(),
        body: t.render(),
    }
}

/// Table 2: experimental testbed configuration.
#[must_use]
pub fn table2(_opts: &ExpOptions) -> Report {
    let m = MachineSpec::xeon_silver_4114();
    let mut t = Table::new(vec!["Component", "Specification"]);
    t.row(vec!["CPU Model".to_owned(), m.cpu_model.clone()])
        .row(vec!["Number of Sockets".to_owned(), m.sockets.to_string()])
        .row(vec!["Processor Speed".to_owned(), format!("{:.2}GHz", m.ghz)])
        .row(vec![
            "Logical Processor Cores".to_owned(),
            format!("{} Cores ({} physical cores)", m.logical_cores, m.physical_cores),
        ])
        .row(vec![
            "Private L1 & L2 Cache Size".to_owned(),
            format!("{}KB and {}KB", m.l1_kb, m.l2_kb),
        ])
        .row(vec![
            "Shared L3 Cache Size".to_owned(),
            format!("{} KB ({}-way set associative)", m.l3_kb, m.l3_ways),
        ])
        .row(vec!["Memory Capacity".to_owned(), format!("{} GB", m.mem_gb)])
        .row(vec!["Operating System".to_owned(), m.os.clone()])
        .row(vec!["SSD Capacity".to_owned(), format!("{} GB", m.ssd_gb)])
        .row(vec!["HDD Capacity".to_owned(), format!("{} TB", m.hdd_tb)]);
    Report { id: "table2", title: "Experimental testbed configuration".into(), body: t.render() }
}

/// Table 3: LC and BG workloads with their modelled sensitivities.
#[must_use]
pub fn table3(_opts: &ExpOptions) -> Report {
    let mut t = Table::new(vec!["Workload", "Class", "Description", "Dominant sensitivity"]);
    for w in WorkloadId::ALL {
        let p = w.profile();
        let mut sens: Vec<(&str, f64)> = vec![
            ("cores", p.cpu_time_us),
            ("mem b/w", p.mem_time_us * p.mem_intensity),
            ("disk", p.disk_time_us),
            ("LLC", p.mem_time_us * p.hit_max),
        ];
        sens.sort_by(|a, b| b.1.total_cmp(&a.1));
        t.row(vec![
            w.name().to_owned(),
            w.class().to_string(),
            w.description().to_owned(),
            sens[0].0.to_owned(),
        ]);
    }
    Report {
        id: "table3",
        title: "LC and BG workloads driving the evaluation".into(),
        body: t.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_expected_content() {
        let o = ExpOptions::default();
        let t1 = table1(&o);
        assert!(t1.body.contains("Intel CAT"));
        assert!(t1.body.contains("taskset"));
        let t2 = table2(&o);
        assert!(t2.body.contains("Xeon"));
        assert!(t2.body.contains("14080"));
        let t3 = table3(&o);
        assert!(t3.body.contains("memcached"));
        assert!(t3.body.contains("swaptions"));
    }
}
