//! Fig. 9: why CLITE beats PARTIES.
//!
//! * **(a)** final resource allocations chosen by PARTIES vs CLITE for
//!   img-dnn + memcached + masstree with streamcluster (BG): both meet all
//!   QoS targets, but CLITE's joint exploration picks different per-job
//!   allocations that leave the BG job far better off.
//! * **(b)** allocation over sample number for a load setting where
//!   PARTIES cycles in its FSM for ~100 samples and gives up while CLITE
//!   converges in under ~30.

use clite_policies::policy::PolicyOutcome;
use clite_sim::resource::ResourceKind;

use crate::mixes::{fig9a_mix, Mix};
use crate::render::{pct, Table};
use crate::runner::{run_policy, PolicyKind};
use crate::{ExpOptions, Report};
use clite_sim::workload::WorkloadId;

/// Renders one policy's best partition as per-job resource percentages.
fn allocation_table(outcome: &PolicyOutcome, job_names: &[&str]) -> String {
    let mut t = Table::new(
        std::iter::once("Resource".to_owned())
            .chain(job_names.iter().map(|s| (*s).to_owned()))
            .collect::<Vec<_>>(),
    );
    let p = &outcome.best_partition;
    for r in ResourceKind::ALL {
        let mut row = vec![r.name().to_owned()];
        for j in 0..p.job_count() {
            row.push(pct(p.fraction(j, r)));
        }
        t.row(row);
    }
    t.render()
}

/// The Fig. 9b mix: a tight co-location near the feasibility frontier
/// (the corner region of the paper's Fig. 8a where PARTIES keeps cycling
/// in its FSM while CLITE still finds a feasible partition).
#[must_use]
pub fn fig9b_mix() -> Mix {
    Mix::new(
        &[(WorkloadId::ImgDnn, 0.7), (WorkloadId::Memcached, 0.2), (WorkloadId::Masstree, 0.4)],
        &[WorkloadId::Blackscholes],
    )
}

/// Runs Fig. 9a.
#[must_use]
pub fn run_a(opts: &ExpOptions) -> Report {
    let mix = fig9a_mix();
    let names = ["img-dnn", "memcached", "masstree", "streamcluster"];
    let mut body = String::new();

    let oracle = run_policy(PolicyKind::Oracle, &mix, opts.seed);
    let oracle_bg = oracle.best_bg_perf().unwrap_or(0.0);

    for kind in [PolicyKind::Parties, PolicyKind::Clite] {
        let outcome = run_policy(kind, &mix, opts.seed);
        body.push_str(&format!(
            "\n{} (all QoS met: {}):\n{}",
            kind.name(),
            outcome.qos_met,
            allocation_table(&outcome, &names)
        ));
        let bg = outcome.best_bg_perf().unwrap_or(0.0);
        body.push_str(&format!(
            "streamcluster: {} of isolation = {} of ORACLE's allocation\n",
            pct(bg),
            pct(if oracle_bg > 0.0 { bg / oracle_bg } else { 0.0 }),
        ));
    }
    body.push_str(&format!("\nORACLE streamcluster reference: {} of isolation\n", pct(oracle_bg)));
    Report {
        id: "fig9a",
        title: "Final allocations: PARTIES vs CLITE (3 LC + streamcluster)".into(),
        body,
    }
}

/// Runs Fig. 9b.
#[must_use]
pub fn run_b(opts: &ExpOptions) -> Report {
    let mix = fig9b_mix();
    let mut body = String::new();
    body.push_str(&format!("mix: {}\n", mix.name));
    for kind in [PolicyKind::Parties, PolicyKind::Clite] {
        let outcome = run_policy(kind, &mix, opts.seed);
        body.push_str(&format!(
            "\n{}: samples={} qos_met={} gave_up={} first-qos-sample={:?}\n",
            kind.name(),
            outcome.samples_used(),
            outcome.qos_met,
            outcome.gave_up,
            outcome.samples_to_qos,
        ));
        let mut t = Table::new(vec![
            "sample",
            "img-dnn cores",
            "memcached cores",
            "masstree cores",
            "BG cores",
            "QoS met",
        ]);
        let step = (outcome.samples_used() / 12).max(1);
        for s in outcome.samples.iter().step_by(step) {
            t.row(vec![
                s.index.to_string(),
                s.partition.units(0, ResourceKind::Cores).to_string(),
                s.partition.units(1, ResourceKind::Cores).to_string(),
                s.partition.units(2, ResourceKind::Cores).to_string(),
                s.partition.units(3, ResourceKind::Cores).to_string(),
                s.observation.all_qos_met().to_string(),
            ]);
        }
        body.push_str(&t.render());
    }
    Report {
        id: "fig9b",
        title: "Allocation over samples: PARTIES cycles, CLITE converges".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_both_policies_feasible_mix() {
        // The 9a mix is intended to be satisfiable by both policies.
        let mix = fig9a_mix();
        let clite = run_policy(PolicyKind::Clite, &mix, 11);
        assert!(clite.qos_met);
    }

    #[test]
    fn fig9b_clite_succeeds_where_parties_struggles() {
        let mix = fig9b_mix();
        let clite = run_policy(PolicyKind::Clite, &mix, 11);
        let parties = run_policy(PolicyKind::Parties, &mix, 11);
        assert!(clite.qos_met, "CLITE must co-locate the Fig. 9b mix");
        // PARTIES either fails outright or needs far more samples.
        if parties.qos_met {
            assert!(
                parties.samples_to_qos.unwrap_or(usize::MAX)
                    >= clite.samples_to_qos.unwrap_or(usize::MAX),
                "PARTIES should not beat CLITE to QoS on the tight mix"
            );
        }
    }
}
