//! Fig. 14: multiple BG jobs co-located with multiple LC jobs.
//!
//! Two mixes of 2 LC + 3 BG jobs; per-BG-job throughput as % of ORACLE's
//! for the same mix. Shape to reproduce: CLITE near ~88% of optimal on
//! average because its score's second mode maximizes the *mean over all*
//! BG jobs (Eq. 3), while the next best technique lands below ~75%.

use clite_gp::stats::mean;

use crate::mixes::fig14_mixes;
use crate::render::{pct, Table};
use crate::runner::{final_eval, run_policy, PolicyKind};
use crate::{ExpOptions, Report};
use clite_sim::workload::JobClass;

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let mut body = String::new();
    let mut means: Vec<(String, Vec<f64>)> =
        PolicyKind::ONLINE_COMPARED.iter().map(|k| (k.name().to_owned(), vec![])).collect();

    for (mi, mix) in fig14_mixes().into_iter().enumerate() {
        let seed = opts.seed.wrapping_add(7 * mi as u64);
        body.push_str(&format!("\nmix: {}\n", mix.name));
        let oracle = run_policy(PolicyKind::Oracle, &mix, seed);
        let oracle_obs = final_eval(&mix, &oracle, seed);
        let bg_names: Vec<String> = oracle_obs
            .jobs
            .iter()
            .filter(|j| j.class == JobClass::Background)
            .map(|j| j.workload.acronym().to_owned())
            .collect();
        // Reference: the best *known* QoS-meeting configuration per BG job
        // (ORACLE's hill climb can be locally suboptimal in 30 dimensions;
        // the paper's exhaustive ORACLE is by definition at least as good
        // as anything an online policy finds).
        let mut oracle_perfs: Vec<f64> = oracle_obs.bg_jobs().map(|j| j.normalized_perf).collect();
        for kind in PolicyKind::ONLINE_COMPARED {
            let outcome = run_policy(kind, &mix, seed);
            let obs = final_eval(&mix, &outcome, seed);
            if obs.all_qos_met() {
                for (j, bg) in obs.bg_jobs().enumerate() {
                    oracle_perfs[j] = oracle_perfs[j].max(bg.normalized_perf);
                }
            }
        }

        let mut t = Table::new(
            std::iter::once("Policy".to_owned())
                .chain(bg_names.iter().cloned())
                .chain(std::iter::once("mean".to_owned()))
                .collect::<Vec<_>>(),
        );
        for (ki, kind) in PolicyKind::ONLINE_COMPARED.into_iter().enumerate() {
            let outcome = run_policy(kind, &mix, seed);
            let obs = final_eval(&mix, &outcome, seed);
            let mut row = vec![kind.name().to_owned()];
            let mut rel = Vec::new();
            if obs.all_qos_met() {
                for (j, bg) in obs.bg_jobs().enumerate() {
                    let r = if oracle_perfs[j] > 0.0 {
                        bg.normalized_perf / oracle_perfs[j]
                    } else {
                        0.0
                    };
                    rel.push(r);
                    row.push(pct(r));
                }
            } else {
                for _ in &bg_names {
                    rel.push(0.0);
                    row.push("X".into());
                }
            }
            row.push(pct(mean(&rel)));
            means[ki].1.push(mean(&rel));
            t.row(row);
        }
        body.push_str(&t.render());
    }

    body.push_str("\naverage of per-mix means (% of ORACLE):\n");
    let mut t = Table::new(vec!["Policy", "mean BG perf"]);
    for (name, vals) in means {
        t.row(vec![name, pct(mean(&vals))]);
    }
    body.push_str(&t.render());
    Report { id: "fig14", title: "Multiple BG jobs with multiple LC jobs".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_both_mixes_and_acronyms() {
        let r = run(&ExpOptions { quick: true, seed: 9, ..ExpOptions::default() });
        assert!(r.body.contains("BS") || r.body.contains("FM"));
        assert!(r.body.contains("CLITE"));
    }
}
