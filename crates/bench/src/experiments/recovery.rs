//! `recovery` — durable fleet recovery and overload shedding (extension).
//!
//! Three hard gates, all committed to `results/BENCH_pr10.json`:
//!
//! 1. **Kill sweep → replay identity**: a durable fleet is killed after
//!    the k-th event — at both WAL boundaries (right after the journal
//!    flush, and right after the apply) — for *every* k in the trace,
//!    recovered from the newest checkpoint plus the journal suffix, and
//!    run to completion. The recovered [`FleetRun`] witness must be
//!    byte-identical to a never-crashed run at every kill point. The
//!    guarantee is storeless (the observation store is a performance
//!    cache, not part of the witness), so the sweep runs without one.
//! 2. **Serial ≡ threaded across recovery**: a threaded-admission fleet
//!    killed and recovered must land on the serial baseline's witness.
//! 3. **Overload protection**: under a same-tick arrival burst over a
//!    saturated fleet, the backlog trigger sheds background arrivals
//!    (zero probe cost) and the per-admission deadline budget stops the
//!    candidate scan once its sample allowance is spent. Every protected
//!    admission — p99 included — must stay under the structural bound
//!    `deadline + 2 x max_iterations` (the budget is checked between
//!    candidates, so one in-flight search may finish past it), and every
//!    shed arrival must be accounted in the journal (`journaled_sheds`
//!    equals the counter). The unprotected control run is reported
//!    alongside for contrast.

use std::path::PathBuf;

use clite_cluster::event::{FleetEvent, TimedEvent};
use clite_cluster::fleet::{
    backlog_at, EventOutcome, FleetConfig, FleetRun, FleetService, OverloadConfig,
};
use clite_cluster::recovery::{CrashPlan, CrashPoint, DurableConfig, DurableFleet, DurableOutcome};
use clite_cluster::scheduler::AdmissionMode;
use clite_cluster::trace::{generate, TraceConfig};
use clite_sim::testbed::ServerFactory;
use clite_telemetry::Telemetry;
use serde::Serialize;

use crate::export::save_json;
use crate::render::Table;
use crate::{ExpOptions, Report};

/// Default artifact destination, overridable via `$CLITE_RECOVERY_REPORT`.
const BENCH_ARTIFACT: &str = "results/BENCH_pr10.json";

/// The committed benchmark artifact.
#[derive(Debug, Serialize)]
struct RecoveryBench {
    version: u32,
    seed: u64,
    kill_sweep: KillSweep,
    threaded: ThreadedGate,
    overload: OverloadGate,
}

/// The kill-at-every-k replay-identity sweep.
#[derive(Debug, Serialize)]
struct KillSweep {
    nodes: usize,
    events: usize,
    checkpoint_every: u64,
    /// Kill points exercised: every seqno × both crash boundaries.
    kill_points: usize,
    /// Recoveries that restored from a checkpoint (vs full replay).
    from_checkpoint: usize,
    /// Largest journal suffix any recovery replayed.
    max_replayed: u64,
    all_identical: bool,
}

/// The threaded-admission recovery gate.
#[derive(Debug, Serialize)]
struct ThreadedGate {
    kill_after: u64,
    byte_identical: bool,
}

/// The overload-protection gate.
#[derive(Debug, Serialize)]
struct OverloadGate {
    burst_events: usize,
    shed_backlog_trigger: u64,
    /// Per-admission sample allowance (`deadline_samples`).
    deadline_samples: u64,
    /// The gated bound: p99 of the protected run must stay under this.
    p99_bound: u64,
    arrivals: u64,
    arrivals_shed: u64,
    /// p99 of per-admission sample cost with protections on.
    p99_samples_protected: u64,
    /// p99 of per-admission sample cost on the unprotected control run.
    p99_samples_unprotected: u64,
    /// Shed dispositions found in the journal (must equal the counter).
    journaled_sheds: u64,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clite-recovery-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fleet_config(mode: AdmissionMode) -> FleetConfig {
    let mut config = FleetConfig::mean_field(4, 3);
    config.scheduler.admission = mode;
    config
}

fn baseline(nodes: usize, config: FleetConfig, seed: u64, trace: &[TimedEvent]) -> FleetRun {
    let mut service = FleetService::new(nodes, config, seed).expect("non-empty fleet");
    service.run(trace, &Telemetry::disabled()).expect("baseline run healthy")
}

/// Kills a durable fleet per `plan`, recovers it from `dir`, and finishes
/// the trace. Returns the completed witness and the replayed-suffix
/// length (`None` replay length means recovery restored no checkpoint).
fn kill_and_recover(
    nodes: usize,
    config: &FleetConfig,
    seed: u64,
    trace: &[TimedEvent],
    dir: &std::path::Path,
    durable: DurableConfig,
    plan: &CrashPlan,
) -> (FleetRun, u64, bool) {
    let mut fleet = DurableFleet::create(nodes, config.clone(), seed, ServerFactory, dir, durable)
        .expect("durable fleet opens");
    let outcome =
        fleet.run(trace, Some(plan), &Telemetry::disabled()).expect("run to the kill point");
    assert!(matches!(outcome, DurableOutcome::Killed { .. }), "crash plan must fire");
    drop(fleet);

    let mut recovered = DurableFleet::recover(
        nodes,
        config.clone(),
        seed,
        ServerFactory,
        dir,
        durable,
        None,
        &Telemetry::disabled(),
    )
    .expect("recovery succeeds");
    let info = recovered.recovery_info().expect("recovered fleets carry info");
    let DurableOutcome::Completed(run) =
        recovered.run(trace, None, &Telemetry::disabled()).expect("resumed run completes")
    else {
        panic!("resumed run has no crash plan");
    };
    (run, info.replayed, info.checkpoint_seqno > 0)
}

/// Gate 1: the kill sweep.
fn kill_sweep(opts: &ExpOptions) -> (KillSweep, String) {
    let nodes = if opts.quick { 32 } else { 64 };
    let events = if opts.quick { 10 } else { 16 };
    let durable = DurableConfig { checkpoint_every: 4 };
    let trace = generate(&TraceConfig { events, ..TraceConfig::default() }, opts.seed);
    let want = baseline(nodes, fleet_config(AdmissionMode::Serial), opts.seed, &trace);
    let dir = scratch_dir("sweep");

    let mut from_checkpoint = 0usize;
    let mut max_replayed = 0u64;
    let mut kill_points = 0usize;
    for k in 0..trace.len() as u64 {
        for point in [CrashPoint::Journaled, CrashPoint::Applied] {
            let plan = CrashPlan { after_event: k, point };
            let (got, replayed, had_checkpoint) = kill_and_recover(
                nodes,
                &fleet_config(AdmissionMode::Serial),
                opts.seed,
                &trace,
                &dir,
                durable,
                &plan,
            );
            assert_eq!(got, want, "recovered witness diverged at kill point k={k} ({point:?})");
            kill_points += 1;
            from_checkpoint += usize::from(had_checkpoint);
            max_replayed = max_replayed.max(replayed);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(from_checkpoint > 0, "the sweep must exercise checkpoint restores, not only replay");

    let sweep = KillSweep {
        nodes,
        events: trace.len(),
        checkpoint_every: durable.checkpoint_every,
        kill_points,
        from_checkpoint,
        max_replayed,
        all_identical: true,
    };
    let body = format!(
        "kill sweep: {} kill points ({} events x 2 crash boundaries) over {nodes} nodes,\n\
         checkpoint every {} events: {} recoveries restored a checkpoint, longest\n\
         journal suffix replayed {} events — every recovered witness byte-identical\n\
         to the never-crashed run.\n",
        sweep.kill_points,
        sweep.events,
        sweep.checkpoint_every,
        sweep.from_checkpoint,
        sweep.max_replayed,
    );
    (sweep, body)
}

/// Gate 2: threaded admission recovers onto the serial witness.
fn threaded_gate(opts: &ExpOptions) -> (ThreadedGate, String) {
    let nodes = if opts.quick { 32 } else { 64 };
    let events = if opts.quick { 10 } else { 16 };
    let durable = DurableConfig { checkpoint_every: 4 };
    let trace = generate(&TraceConfig { events, ..TraceConfig::default() }, opts.seed);
    let want = baseline(nodes, fleet_config(AdmissionMode::Serial), opts.seed, &trace);
    let kill_after = (trace.len() / 2) as u64;
    let dir = scratch_dir("threaded");
    let plan = CrashPlan { after_event: kill_after, point: CrashPoint::Journaled };
    let (got, _, _) = kill_and_recover(
        nodes,
        &fleet_config(AdmissionMode::Threaded),
        opts.seed,
        &trace,
        &dir,
        durable,
        &plan,
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(got, want, "threaded recovery diverged from the serial baseline");
    let body = format!(
        "threaded admission killed at event {kill_after} and recovered: witness matches\n\
         the serial never-crashed baseline byte-for-byte.\n"
    );
    (ThreadedGate { kill_after, byte_identical: true }, body)
}

/// A same-tick arrival burst: the backlog trigger sees every later event
/// in the tick as queue depth.
fn burst_trace(opts: &ExpOptions) -> Vec<TimedEvent> {
    let events = if opts.quick { 24 } else { 48 };
    generate(
        &TraceConfig {
            events,
            arrival_weight: 8,
            departure_weight: 1,
            load_shift_weight: 1,
            onboard_every: None,
            onboard_nodes: 0,
        },
        opts.seed,
    )
    .into_iter()
    .map(|e| TimedEvent::new(1, e.event))
    .collect()
}

/// Streams `trace` event-by-event, recording the sample cost of each
/// arrival (shed arrivals cost zero — that is the point).
fn admission_costs(
    nodes: usize,
    config: FleetConfig,
    seed: u64,
    trace: &[TimedEvent],
) -> (Vec<u64>, u64) {
    let mut service = FleetService::new(nodes, config, seed).expect("non-empty fleet");
    let mut costs = Vec::new();
    for (index, timed) in trace.iter().enumerate() {
        let before = service.scheduler().total_samples_spent();
        let outcome = service
            .handle_with_backlog(timed, backlog_at(trace, index), &Telemetry::disabled())
            .expect("event applies");
        if matches!(timed.event, FleetEvent::Arrival { .. }) {
            let spent = service.scheduler().total_samples_spent().saturating_sub(before);
            debug_assert!(!matches!(outcome, EventOutcome::Shed { .. }) || spent == 0);
            costs.push(spent);
        }
    }
    (costs, service.counters().arrivals_shed)
}

/// p99 over a deterministic cost series (nearest-rank).
fn p99(costs: &[u64]) -> u64 {
    let mut sorted = costs.to_vec();
    sorted.sort_unstable();
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * 99).div_ceil(100);
    sorted[rank.saturating_sub(1)]
}

/// Gate 3: overload protection bounds admission cost and is fully
/// journaled.
fn overload_gate(opts: &ExpOptions) -> (OverloadGate, String) {
    // A deliberately small fleet: the burst saturates it, so late
    // arrivals scan several candidates whose searches all come back
    // infeasible — exactly the scans the deadline budget exists to stop.
    let nodes = if opts.quick { 4 } else { 6 };
    let shed_backlog = 4u64;
    // Aggressive deadline: below one search's typical cost, so admission
    // stops scanning once its first search has finished.
    let deadline = 4u64;
    let trace = burst_trace(opts);

    let mut shed_config = fleet_config(AdmissionMode::Serial);
    shed_config.overload = OverloadConfig {
        shed_backlog: Some(shed_backlog),
        shed_window_debt: None,
        debt_horizon: 8,
    };
    shed_config.scheduler.deadline_samples = Some(deadline);
    // The deadline is checked before each candidate, so one in-flight
    // search may finish past it. A single search is capped at
    // `max_iterations` plus a bootstrap phase no longer than that, so
    // `deadline + 2 x max_iterations` is a structural worst case, not a
    // tuned constant.
    let bound = deadline + 2 * shed_config.scheduler.clite.termination.max_iterations as u64;
    let (shed_costs, shed_count) = admission_costs(nodes, shed_config.clone(), opts.seed, &trace);
    let (unshed_costs, none_shed) =
        admission_costs(nodes, fleet_config(AdmissionMode::Serial), opts.seed, &trace);
    assert_eq!(none_shed, 0, "the control run must not shed");
    assert!(shed_count > 0, "the burst must actually trigger shedding");
    let p99_shed = p99(&shed_costs);
    let p99_unshed = p99(&unshed_costs);
    assert!(
        shed_costs.iter().all(|&c| c <= bound),
        "no protected admission may blow through the deadline budget \
         (bound {bound}, costs {shed_costs:?})"
    );

    // Journal accounting: a durable run of the same shedding config must
    // record every shed disposition.
    let dir = scratch_dir("overload");
    let mut fleet = DurableFleet::create(
        nodes,
        shed_config,
        opts.seed,
        ServerFactory,
        &dir,
        DurableConfig { checkpoint_every: 8 },
    )
    .expect("durable fleet opens");
    let DurableOutcome::Completed(run) =
        fleet.run(&trace, None, &Telemetry::disabled()).expect("durable burst completes")
    else {
        panic!("no crash plan");
    };
    drop(fleet);
    let journaled =
        DurableFleet::<ServerFactory>::journaled_sheds(&dir).expect("journal audit reads");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(run.counters.arrivals_shed, shed_count, "durable run must shed identically");
    assert_eq!(journaled, shed_count, "every shed arrival must carry a journaled disposition");

    let gate = OverloadGate {
        burst_events: trace.len(),
        shed_backlog_trigger: shed_backlog,
        deadline_samples: deadline,
        p99_bound: bound,
        arrivals: shed_costs.len() as u64,
        arrivals_shed: shed_count,
        p99_samples_protected: p99_shed,
        p99_samples_unprotected: p99_unshed,
        journaled_sheds: journaled,
    };
    let mut t = Table::new(vec!["run", "arrivals", "shed", "p99 samples/admission"]);
    t.row(vec![
        "protected".into(),
        gate.arrivals.to_string(),
        gate.arrivals_shed.to_string(),
        gate.p99_samples_protected.to_string(),
    ]);
    t.row(vec![
        "unprotected".into(),
        gate.arrivals.to_string(),
        "0".into(),
        gate.p99_samples_unprotected.to_string(),
    ]);
    let body = format!(
        "overload: {} same-tick burst events over {nodes} nodes, backlog trigger {},\n\
         deadline budget {} samples (gated bound {}):\n\n{}\n\
         Reading: background arrivals shed under backlog cost zero probe samples and\n\
         the deadline budget stops probing once spent, so the admission-cost tail\n\
         stays under the bound; {} shed dispositions all accounted in the\n\
         write-ahead journal.\n",
        gate.burst_events,
        gate.shed_backlog_trigger,
        gate.deadline_samples,
        gate.p99_bound,
        t.render(),
        gate.journaled_sheds,
    );
    (gate, body)
}

/// The artifact destination: `$CLITE_RECOVERY_REPORT` or the default path.
#[must_use]
pub fn report_path() -> PathBuf {
    std::env::var_os("CLITE_RECOVERY_REPORT")
        .map_or_else(|| PathBuf::from(BENCH_ARTIFACT), PathBuf::from)
}

/// Experiment entry point.
///
/// # Panics
///
/// Panics if any recovered witness diverges from the never-crashed
/// baseline, if shedding fails to bound the admission-cost tail, or if
/// the journal loses a shed disposition — these are the acceptance
/// gates, not soft metrics.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let (sweep, mut body) = kill_sweep(opts);
    let (threaded, threaded_body) = threaded_gate(opts);
    body.push('\n');
    body.push_str(&threaded_body);
    let (overload, overload_body) = overload_gate(opts);
    body.push('\n');
    body.push_str(&overload_body);

    let bench =
        RecoveryBench { version: 1, seed: opts.seed, kill_sweep: sweep, threaded, overload };
    let path = report_path();
    match save_json(&path, &bench) {
        Ok(()) => body.push_str(&format!("\nbenchmark artifact written to {}\n", path.display())),
        Err(e) => {
            body.push_str(&format!("\nWARNING: cannot write {}: {e}\n", path.display()));
        }
    }
    body.push_str("\nrecovery: PASS (replay identity at every kill point; shed tail bounded)\n");
    Report {
        id: "recovery",
        title: "Durable fleet recovery: kill sweep, replay identity, overload shedding (extension)"
            .into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_is_nearest_rank() {
        assert_eq!(p99(&[]), 0);
        assert_eq!(p99(&[7]), 7);
        let costs: Vec<u64> = (1..=100).collect();
        assert_eq!(p99(&costs), 99);
    }

    #[test]
    fn burst_traces_are_single_tick() {
        let opts = ExpOptions { quick: true, ..ExpOptions::default() };
        let trace = burst_trace(&opts);
        assert!(trace.iter().all(|e| e.at == 1));
        assert!(trace.iter().any(|e| matches!(e.event, FleetEvent::Arrival { .. })));
    }
}
