//! `placement` — learned vs heuristic candidate ordering A/B (extension).
//!
//! Trains the `clite-learn` pairwise ranking model on deterministic
//! simulator rollouts, then runs the same crash-chaos fleet trace twice at
//! every scale point: once with the least-loaded heuristic ordering, once
//! with the trained model ordering. Both arms run serial AND threaded
//! admission and must be byte-identical — the experiment asserts it, same
//! contract as the `fleet` experiment. The committed artifact
//! (`results/BENCH_pr9.json`) records, per scale point and arm: the
//! QoS-safe fraction of alive nodes, the admission rate, observation
//! windows spent, and orphan re-placements.
//!
//! The gate: the learned arm must match or beat the heuristic's QoS-safe
//! fraction at every scale point and never lose more than 2 percentage
//! points of admission rate. The report ends in a `placement: PASS`/`FAIL`
//! marker line (the CI gate greps for it).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use clite_cluster::fleet::{FleetConfig, FleetRun, FleetService};
use clite_cluster::scheduler::AdmissionMode;
use clite_cluster::trace::{generate, TraceConfig};
use clite_faults::{FaultSpec, FaultyFactory};
use clite_learn::{RankingModel, TrainConfig};
use serde::Serialize;

use crate::export::save_json;
use crate::render::{pct, Table};
use crate::runner::ambient_telemetry;
use crate::{ExpOptions, Report};

/// Default artifact destination, overridable via `$CLITE_PLACEMENT_REPORT`.
const BENCH_ARTIFACT: &str = "results/BENCH_pr9.json";

/// Admission-rate slack the learned arm is allowed (2 percentage points):
/// a model that keeps every node QoS-safe by rejecting work wholesale
/// would be a degenerate win.
const ADMISSION_SLACK: f64 = 0.02;

/// The committed benchmark artifact.
#[derive(Debug, Serialize)]
struct PlacementBench {
    version: u32,
    seed: u64,
    /// Final pairwise training loss (untrained level is ln 2 ≈ 0.693).
    train_loss: f64,
    train_epochs: u32,
    scale: Vec<ScalePoint>,
    pass: bool,
}

/// One fleet size on the A/B curve.
#[derive(Debug, Serialize)]
struct ScalePoint {
    nodes: usize,
    events: usize,
    heuristic: ArmMetrics,
    learned: ArmMetrics,
    pass: bool,
}

/// One arm (policy) at one scale point.
#[derive(Debug, Clone, Serialize)]
struct ArmMetrics {
    /// Fraction of alive nodes whose committed jobs all meet QoS.
    qos_safe_frac: f64,
    admission_rate: f64,
    /// Observation windows spent across the fleet (probe + commit cost).
    windows_spent: u64,
    /// Orphaned jobs successfully re-homed after node crashes.
    replacements: u64,
    placed: usize,
    dead_nodes: usize,
    wall_ms: f64,
}

/// The same crash plan as the `fleet` experiment: probes die mid-search
/// often enough that nodes are evicted and orphans re-home at every scale.
fn crash_spec() -> FaultSpec {
    FaultSpec { crash_prob: 0.35, crash_window_max: 20, ..FaultSpec::none() }
}

/// Runs one trace through one fleet arm and times it.
fn run_arm(
    nodes: usize,
    events: usize,
    mode: AdmissionMode,
    seed: u64,
    model: Option<&Arc<RankingModel>>,
) -> (FleetRun, std::time::Duration) {
    let mut config = match model {
        Some(m) => FleetConfig::mean_field_learned(8, 4, Arc::clone(m)),
        None => FleetConfig::mean_field(8, 4),
    };
    config.scheduler.admission = mode;
    let factory = FaultyFactory::new(clite_sim::testbed::ServerFactory, crash_spec());
    let mut fleet =
        FleetService::with_factory(nodes, config, seed, factory).expect("non-empty fleet");
    let trace = generate(&TraceConfig { events, ..TraceConfig::default() }, seed);
    let telemetry = ambient_telemetry();
    let start = Instant::now();
    let run = fleet.run(&trace, &telemetry).expect("fleet loop healthy");
    (run, start.elapsed())
}

/// Runs one arm serial and threaded, asserts byte-identity, and distills
/// the metrics the gate compares.
fn measure_arm(
    nodes: usize,
    events: usize,
    seed: u64,
    model: Option<&Arc<RankingModel>>,
) -> ArmMetrics {
    let (serial, wall) = run_arm(nodes, events, AdmissionMode::Serial, seed, model);
    let (threaded, _) = run_arm(nodes, events, AdmissionMode::Threaded, seed, model);
    assert_eq!(
        serial,
        threaded,
        "serial and threaded fleet runs diverged at {nodes} nodes ({} arm)",
        if model.is_some() { "learned" } else { "heuristic" }
    );
    let stats = &serial.stats;
    let alive = stats.nodes.iter().filter(|n| n.alive).count();
    let qos_safe = stats.nodes.iter().filter(|n| n.alive && n.qos_met).count();
    ArmMetrics {
        qos_safe_frac: qos_safe as f64 / alive.max(1) as f64,
        admission_rate: stats.admission_rate(),
        windows_spent: stats.nodes.iter().map(|n| n.samples_spent).sum(),
        replacements: serial.counters.replacements,
        placed: stats.placed,
        dead_nodes: stats.dead_nodes,
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

/// One scale point passes when the learned arm matches or beats the
/// heuristic's QoS-safe fraction and stays within the admission slack.
fn point_passes(heuristic: &ArmMetrics, learned: &ArmMetrics) -> bool {
    learned.qos_safe_frac >= heuristic.qos_safe_frac - 1e-12
        && learned.admission_rate >= heuristic.admission_rate - ADMISSION_SLACK
}

/// The artifact destination: `$CLITE_PLACEMENT_REPORT` or the default.
#[must_use]
pub fn report_path() -> PathBuf {
    std::env::var_os("CLITE_PLACEMENT_REPORT")
        .map_or_else(|| PathBuf::from(BENCH_ARTIFACT), PathBuf::from)
}

/// Experiment entry point.
///
/// # Panics
///
/// Panics if a serial and threaded fleet run diverge in either arm
/// (determinism regression) or on internal scheduler failures.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let train_config = TrainConfig::smoke(opts.seed);
    let train_start = Instant::now();
    let model = clite_learn::train(&train_config, &ambient_telemetry());
    let train_wall = train_start.elapsed();
    let mut body = format!(
        "trained ranking model: {} rollout groups x {} candidates, {} epochs,\n\
         final pairwise loss {:.4} (untrained level {:.4}) in {:.1} ms\n\n",
        train_config.groups,
        train_config.candidates,
        train_config.epochs,
        model.train_loss,
        std::f64::consts::LN_2,
        train_wall.as_secs_f64() * 1e3
    );
    let train_loss = model.train_loss;
    let train_epochs = model.epochs;
    let model = Arc::new(model);

    let node_counts: &[usize] = if opts.quick { &[32, 64, 128] } else { &[32, 64, 128, 256] };
    let events = if opts.quick { 40 } else { 96 };
    let mut t = Table::new(vec![
        "nodes",
        "arm",
        "QoS-safe",
        "admission",
        "windows",
        "re-placed",
        "dead",
        "wall (ms)",
        "point",
    ]);
    let mut scale = Vec::new();
    for &nodes in node_counts {
        let heuristic = measure_arm(nodes, events, opts.seed, None);
        let learned = measure_arm(nodes, events, opts.seed, Some(&model));
        let pass = point_passes(&heuristic, &learned);
        for (arm, m) in [("heuristic", &heuristic), ("learned", &learned)] {
            t.row(vec![
                nodes.to_string(),
                arm.to_owned(),
                pct(m.qos_safe_frac),
                pct(m.admission_rate),
                m.windows_spent.to_string(),
                m.replacements.to_string(),
                m.dead_nodes.to_string(),
                format!("{:.1}", m.wall_ms),
                if arm == "learned" {
                    if pass { "ok" } else { "REGRESSED" }.to_owned()
                } else {
                    "-".to_owned()
                },
            ]);
        }
        scale.push(ScalePoint { nodes, events, heuristic, learned, pass });
    }
    assert!(
        scale.iter().any(|p| p.heuristic.dead_nodes > 0),
        "the crash plan must actually kill nodes, or the A/B proves nothing"
    );
    let pass = scale.iter().all(|p| p.pass);
    body.push_str(&format!(
        "A/B under crash chaos (prob {}), {events} events/trace, serial == threaded\n\
         asserted in both arms at every scale point:\n\n{}\n\
         Gate: learned must match or beat the heuristic QoS-safe fraction and\n\
         stay within {:.0} pp of its admission rate at every scale point.\n",
        crash_spec().crash_prob,
        t.render(),
        ADMISSION_SLACK * 100.0
    ));

    let bench =
        PlacementBench { version: 1, seed: opts.seed, train_loss, train_epochs, scale, pass };
    let path = report_path();
    match save_json(&path, &bench) {
        Ok(()) => body.push_str(&format!("\nbenchmark artifact written to {}\n", path.display())),
        Err(e) => body.push_str(&format!("\nWARNING: cannot write {}: {e}\n", path.display())),
    }
    body.push_str(&format!("\nplacement: {}\n", if pass { "PASS" } else { "FAIL" }));
    Report {
        id: "placement",
        title: "Learned vs heuristic candidate ordering A/B (extension)".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_compares_qos_and_admission() {
        let base = ArmMetrics {
            qos_safe_frac: 0.9,
            admission_rate: 0.8,
            windows_spent: 100,
            replacements: 2,
            placed: 20,
            dead_nodes: 1,
            wall_ms: 1.0,
        };
        let better = ArmMetrics { qos_safe_frac: 0.95, admission_rate: 0.79, ..base.clone() };
        assert!(point_passes(&base, &better), "within slack, better QoS");
        let equal = ArmMetrics { qos_safe_frac: 0.9, admission_rate: 0.8, ..base.clone() };
        assert!(point_passes(&base, &equal), "exact match passes");
        let worse_qos = ArmMetrics { qos_safe_frac: 0.89, admission_rate: 0.9, ..base.clone() };
        assert!(!point_passes(&base, &worse_qos), "QoS regression fails");
        let starved = ArmMetrics { qos_safe_frac: 1.0, admission_rate: 0.7, ..base.clone() };
        assert!(!point_passes(&base, &starved), "admission collapse fails");
    }
}
