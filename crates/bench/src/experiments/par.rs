//! `par` — multi-core scaling of the shared worker-pool substrate
//! (extension; artifact committed to `results/BENCH_pr8.json`).
//!
//! Three curves over 1/2/4/8 pool slots on the 2-job and 5-job mixes at
//! 60 observations:
//!
//! 1. **`suggest()` wall-clock** on a hyper-refresh round — the round
//!    carrying both fan-outs (15 grid fits + multi-start climbs). Every
//!    slot count must return the byte-identical suggestion; the
//!    experiment asserts it.
//! 2. **`fit_best` pooled vs pre-PR scoped baseline**: the hyper-grid
//!    scan through the shared pool against a faithful reconstruction of
//!    the per-call `std::thread::scope` fan-out it replaced (same
//!    striping, same shared-distance-matrix work, per-call OS-thread
//!    spawns). This is the 1-worker-regression guard: the pooled scan at
//!    one slot must not lose to the old code path.
//! 3. **Modeled multi-core speedup**: the host may not have 4 cores (CI
//!    containers here have one), so wall-clock cannot show parallel
//!    speedup. The model replays the substrate's *actual deterministic
//!    partitioning* over individually measured task times: grid-point
//!    fits are slot-striped exactly as `map_indexed` stripes them
//!    (makespan = the busiest slot), climb starts are assumed uniform
//!    (conservative: jitter copies are excluded from the start count),
//!    and everything else stays serial. Model self-consistency at one
//!    slot is reported so the assumption error is visible.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use clite_bo::engine::{BoConfig, BoEngine, Suggestion};
use clite_bo::space::SearchSpace;
use clite_gp::gp::{GaussianProcess, GpConfig};
use clite_gp::hyper::{fit_best_threaded, HyperGrid};
use clite_gp::kernel::{squared_distances, Kernel};
use clite_gp::GpError;
use clite_sim::alloc::Partition;
use clite_sim::prelude::*;
use clite_sim::resource::ResourceKind;
use clite_telemetry::{NoopRecorder, Phase, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::export::save_json;
use crate::render::Table;
use crate::{ExpOptions, Report};

/// Default artifact destination, overridable via `$CLITE_PAR_REPORT`.
const BENCH_ARTIFACT: &str = "results/BENCH_pr8.json";

/// Slot counts on every curve.
const SLOTS: [usize; 4] = [1, 2, 4, 8];

/// Observation count of the acceptance configuration.
const OBSERVATIONS: usize = 60;

/// Modeled climb-start count: incumbent + last seed + 4 random restarts.
/// The maximizer also coin-flips jittered copies of each start; excluding
/// them *under*-counts the parallel work, making the modeled speedup a
/// lower bound.
const MODEL_STARTS: usize = 6;

/// The committed benchmark artifact.
#[derive(Debug, Serialize)]
struct ParBench {
    version: u32,
    seed: u64,
    /// Hardware threads the wall-clock numbers had available.
    host_threads: usize,
    /// Shared-pool executors (`CLITE_PAR_THREADS` or host threads).
    pool_size: usize,
    config: BenchConfig,
    /// End-to-end `suggest()` wall-clock per (mix, slots).
    suggest_ms: Vec<SuggestPoint>,
    /// Hyper-grid scan: shared pool vs the pre-PR scoped fan-out.
    fit_best_ms: Vec<FitPoint>,
    /// Per-grid-point fit medians feeding the makespan model (5-job mix).
    grid_point_fit_ms: Vec<f64>,
    /// Phase split of one 1-slot refresh-round suggest (5-job mix).
    phase_split_ms: PhaseSplit,
    /// The deterministic-partitioning speedup model per slot count.
    modeled: Vec<ModeledPoint>,
    acceptance: Acceptance,
    notes: Vec<String>,
}

#[derive(Debug, Serialize)]
struct BenchConfig {
    jobs_mixes: Vec<usize>,
    observations: usize,
    /// The benched engines refresh the hyper grid on every suggest, so
    /// each timed round carries the full fan-out the substrate targets.
    hyper_refresh_every: usize,
    repetitions: usize,
    model_starts: usize,
}

#[derive(Debug, Serialize)]
struct SuggestPoint {
    jobs: usize,
    slots: usize,
    median_ms: f64,
    byte_identical_to_1_slot: bool,
}

#[derive(Debug, Serialize)]
struct FitPoint {
    jobs: usize,
    slots: usize,
    pooled_ms: f64,
    /// Pre-PR baseline: per-call `std::thread::scope`, one spawned OS
    /// thread per stripe (serial at one worker, as the old code was).
    scoped_ms: f64,
}

#[derive(Debug, Serialize)]
struct PhaseSplit {
    total_ms: f64,
    gp_fit_ms: f64,
    acquisition_ms: f64,
    other_ms: f64,
}

#[derive(Debug, Serialize)]
struct ModeledPoint {
    slots: usize,
    /// Busiest-slot sum of the measured grid-point fits under the
    /// substrate's stripe partitioning.
    fit_makespan_ms: f64,
    modeled_suggest_ms: f64,
    modeled_speedup: f64,
}

#[derive(Debug, Serialize)]
struct Acceptance {
    criterion: String,
    /// Wall-clock 1-slot/4-slot ratio on this host (1.0 on one core).
    measured_wall_speedup_4w: f64,
    /// Speedup at 4 workers under the deterministic-partitioning model.
    modeled_speedup_4w: f64,
    /// Modeled 1-slot time over measured 1-slot time (1.0 = perfect).
    model_consistency_1w: f64,
    /// Pooled 1-slot `fit_best` over the pre-PR scoped baseline at one
    /// worker (<= 1.0 means the substrate costs nothing serially; the
    /// gate allows 10% measurement noise).
    fit_best_1w_vs_scoped_baseline: f64,
    pass: bool,
}

/// Deterministic synthetic objective (same family the engine tests climb).
fn objective(p: &Partition) -> f64 {
    let jobs = p.job_count();
    0.6 * p.fraction(0, ResourceKind::Cores) + 0.4 * p.fraction(jobs - 1, ResourceKind::LlcWays)
}

/// An engine holding [`OBSERVATIONS`] samples that refreshes its hyper
/// grid on every suggest (see [`BenchConfig::hyper_refresh_every`]).
fn prepared_engine(jobs: usize, slots: usize, seed: u64) -> BoEngine {
    let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).expect("testbed space");
    let config = BoConfig { hyper_refresh_every: 1, ..BoConfig::default() }.with_threads(slots);
    let mut engine = BoEngine::new(space, config, seed);
    for p in engine.bootstrap_samples().expect("bootstrap") {
        let y = objective(&p);
        engine.record(p, y);
    }
    while engine.len() < OBSERVATIONS {
        let s = engine.suggest(None).expect("suggest during preparation");
        let y = objective(&s.partition);
        engine.record(s.partition, y);
    }
    engine
}

/// Random training data shaped like a `jobs`-mix encoding.
fn training_data(n: usize, jobs: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let space = SearchSpace::new(ResourceCatalog::testbed(), jobs).expect("testbed space");
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> =
        (0..n).map(|_| space.encode(&space.random(&mut rng).expect("random partition"))).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>() / x.len() as f64).collect();
    (xs, ys)
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Faithful reconstruction of the pre-PR hyper-grid fan-out: per-call
/// `std::thread::scope` with one spawned OS thread per stripe (fully
/// serial at `threads == 1`, exactly as the old code was), sharing one
/// distance matrix, merged back in grid order.
fn fit_best_scoped(
    template: &Kernel,
    config: GpConfig,
    grid: &HyperGrid,
    xs: &[Vec<f64>],
    ys: &[f64],
    threads: usize,
) -> GaussianProcess {
    let points: Vec<(f64, f64)> = grid
        .variances
        .iter()
        .flat_map(|&v| grid.lengthscales.iter().map(move |&l| (v, l)))
        .collect();
    let xs = Arc::new(xs.to_vec());
    let ys = Arc::new(ys.to_vec());
    let d2 = squared_distances(&xs);
    let fit_point = |&(v, l): &(f64, f64)| -> Result<GaussianProcess, GpError> {
        let kernel = template.reparameterized(v, l);
        let gram = kernel.gram_from_distances(&d2);
        GaussianProcess::fit_with_gram(kernel, config, Arc::clone(&xs), Arc::clone(&ys), gram)
    };
    let threads = threads.max(1).min(points.len());
    let fits: Vec<Result<GaussianProcess, GpError>> = if threads == 1 {
        points.iter().map(fit_point).collect()
    } else {
        let mut indexed: Vec<(usize, Result<GaussianProcess, GpError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        let fit_point = &fit_point;
                        let points = &points;
                        scope.spawn(move || {
                            points
                                .iter()
                                .enumerate()
                                .skip(worker)
                                .step_by(threads)
                                .map(|(idx, p)| (idx, fit_point(p)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("grid worker must not panic"))
                    .collect()
            });
        indexed.sort_by_key(|(idx, _)| *idx);
        indexed.into_iter().map(|(_, fit)| fit).collect()
    };
    let mut best: Option<GaussianProcess> = None;
    for gp in fits.into_iter().flatten() {
        let better = best
            .as_ref()
            .is_none_or(|b| gp.log_marginal_likelihood() > b.log_marginal_likelihood());
        if better {
            best = Some(gp);
        }
    }
    best.expect("grid produced at least one fit")
}

/// Asserts two suggestions are byte-identical.
fn identical(a: &Suggestion, b: &Suggestion) -> bool {
    a.partition == b.partition
        && a.expected_improvement.to_bits() == b.expected_improvement.to_bits()
        && a.posterior_mean.to_bits() == b.posterior_mean.to_bits()
        && a.posterior_std.to_bits() == b.posterior_std.to_bits()
}

/// The artifact destination: `$CLITE_PAR_REPORT` or the default path.
#[must_use]
pub fn report_path() -> PathBuf {
    std::env::var_os("CLITE_PAR_REPORT")
        .map_or_else(|| PathBuf::from(BENCH_ARTIFACT), PathBuf::from)
}

/// Experiment entry point.
///
/// # Panics
///
/// Panics if any slot count changes a suggestion byte (determinism
/// regression) or on internal engine failures.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(opts: &ExpOptions) -> Report {
    let reps = if opts.quick { 3 } else { 9 };
    let grid = HyperGrid::default_unit();
    let template = Kernel::matern52(1.0, 1.0);

    // Curve 1: end-to-end suggest() per (mix, slots), byte-identity
    // asserted against the 1-slot suggestion.
    let mut suggest_ms = Vec::new();
    let mut suggest_table =
        Table::new(vec!["jobs", "slots", "suggest (ms)", "identical to 1 slot"]);
    for &jobs in &[2usize, 5] {
        let reference = prepared_engine(jobs, 1, opts.seed).suggest(None).expect("suggest");
        for &slots in &SLOTS {
            let engine = prepared_engine(jobs, slots, opts.seed);
            let suggestion = engine.clone().suggest(None).expect("suggest");
            assert!(
                identical(&reference, &suggestion),
                "suggestion diverged at {jobs} jobs / {slots} slots"
            );
            let median = median_ms(reps, || engine.clone().suggest(None).expect("suggest"));
            suggest_table.row(vec![
                jobs.to_string(),
                slots.to_string(),
                format!("{median:.2}"),
                "yes".into(),
            ]);
            suggest_ms.push(SuggestPoint {
                jobs,
                slots,
                median_ms: median,
                byte_identical_to_1_slot: true,
            });
        }
    }

    // Curve 2: the hyper-grid scan, shared pool vs pre-PR scoped spawns.
    let mut fit_best_ms = Vec::new();
    let mut fit_table = Table::new(vec!["jobs", "slots", "pooled (ms)", "scoped (ms)"]);
    for &jobs in &[2usize, 5] {
        let (xs, ys) = training_data(OBSERVATIONS, jobs, opts.seed);
        for &slots in &SLOTS {
            let pooled = median_ms(reps, || {
                fit_best_threaded(&template, GpConfig::default(), &grid, &xs, &ys, slots)
                    .expect("grid fit")
            });
            let scoped = median_ms(reps, || {
                fit_best_scoped(&template, GpConfig::default(), &grid, &xs, &ys, slots)
            });
            fit_table.row(vec![
                jobs.to_string(),
                slots.to_string(),
                format!("{pooled:.2}"),
                format!("{scoped:.2}"),
            ]);
            fit_best_ms.push(FitPoint { jobs, slots, pooled_ms: pooled, scoped_ms: scoped });
        }
    }

    // Model inputs, all on the acceptance mix (5 jobs, 60 observations):
    // per-grid-point fit times and the phase split of a 1-slot suggest.
    let (xs5, ys5) = training_data(OBSERVATIONS, 5, opts.seed);
    let grid_point_fit_ms: Vec<f64> = grid
        .variances
        .iter()
        .flat_map(|&v| grid.lengthscales.iter().map(move |&l| (v, l)))
        .map(|(v, l)| {
            let single = HyperGrid { variances: vec![v], lengthscales: vec![l] };
            median_ms(reps, || {
                fit_best_threaded(&template, GpConfig::default(), &single, &xs5, &ys5, 1)
                    .expect("single-point fit")
            })
        })
        .collect();

    let engine5 = prepared_engine(5, 1, opts.seed);
    let recorder = NoopRecorder;
    let phase_split = {
        let telemetry = Telemetry::new(&recorder);
        let total_ms =
            median_ms(reps, || engine5.clone().suggest_with(None, &telemetry).expect("suggest"));
        let report = telemetry.report();
        // The telemetry accumulated over all reps; scale to per-call.
        let calls = report.phase(Phase::GpFit).count.max(1) as f64;
        let gp_fit_ms = report.phase(Phase::GpFit).total_seconds * 1e3 / calls;
        let acquisition_ms = report.phase(Phase::Acquisition).total_seconds * 1e3 / calls;
        PhaseSplit {
            total_ms,
            gp_fit_ms,
            acquisition_ms,
            other_ms: (total_ms - gp_fit_ms - acquisition_ms).max(0.0),
        }
    };

    // The deterministic-partitioning model: stripe the measured grid-point
    // times exactly as `map_indexed` does, split the acquisition over
    // MODEL_STARTS uniform starts, keep the rest serial.
    let grid_total_ms: f64 = grid_point_fit_ms.iter().sum();
    let fit_serial_ms = (phase_split.gp_fit_ms - grid_total_ms).max(0.0);
    let modeled: Vec<ModeledPoint> = SLOTS
        .iter()
        .map(|&slots| {
            let mut per_slot = vec![0.0f64; slots];
            for (i, &t) in grid_point_fit_ms.iter().enumerate() {
                per_slot[i % slots] += t;
            }
            let fit_makespan_ms = per_slot.iter().fold(0.0f64, |a, &b| a.max(b));
            let acq_rounds = MODEL_STARTS.div_ceil(slots) as f64 / MODEL_STARTS as f64;
            let modeled_suggest_ms = phase_split.other_ms
                + fit_serial_ms
                + fit_makespan_ms
                + phase_split.acquisition_ms * acq_rounds;
            ModeledPoint { slots, fit_makespan_ms, modeled_suggest_ms, modeled_speedup: 0.0 }
        })
        .collect();
    let modeled_1w = modeled[0].modeled_suggest_ms;
    let modeled: Vec<ModeledPoint> = modeled
        .into_iter()
        .map(|p| ModeledPoint { modeled_speedup: modeled_1w / p.modeled_suggest_ms, ..p })
        .collect();

    let suggest_5 = |slots: usize| {
        suggest_ms
            .iter()
            .find(|p| p.jobs == 5 && p.slots == slots)
            .expect("5-job point measured")
            .median_ms
    };
    let fit_1w = fit_best_ms.iter().find(|p| p.jobs == 5 && p.slots == 1).expect("1-slot fit");
    let modeled_4w = modeled.iter().find(|p| p.slots == 4).expect("4-slot model").modeled_speedup;
    let one_worker_ratio = fit_1w.pooled_ms / fit_1w.scoped_ms.max(f64::MIN_POSITIVE);
    let acceptance = Acceptance {
        criterion: "suggest() at 5 jobs / 60 observations >= 2x speedup at 4 workers over the \
                    1-worker substrate; 1-worker throughput no worse than the pre-PR \
                    std::thread::scope baseline"
            .into(),
        measured_wall_speedup_4w: suggest_5(1) / suggest_5(4).max(f64::MIN_POSITIVE),
        modeled_speedup_4w: modeled_4w,
        model_consistency_1w: modeled_1w / phase_split.total_ms.max(f64::MIN_POSITIVE),
        fit_best_1w_vs_scoped_baseline: one_worker_ratio,
        pass: modeled_4w >= 2.0 && one_worker_ratio <= 1.10,
    };

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut body = format!(
        "suggest() on a hyper-refresh round, {OBSERVATIONS} observations, {reps} reps/point\n\
         (pool size {}, host threads {host_threads}):\n\n{}\n\nhyper-grid scan, shared pool vs \
         pre-PR per-call scoped spawns:\n\n{}\n",
        clite_par::WorkerPool::global().size(),
        suggest_table.render(),
        fit_table.render(),
    );
    body.push_str(&format!(
        "\nmodeled multi-core suggest() (stripe makespan over measured task times):\n  {}\n\
         model consistency at 1 slot: {:.2} (modeled / measured)\n\
         acceptance: modeled 4-worker speedup {:.2}x (>= 2x required), pooled/scoped 1-worker \
         fit_best ratio {:.2} (<= 1.10 required) -> {}\n",
        modeled
            .iter()
            .map(|p| format!("{}w: {:.2}x", p.slots, p.modeled_speedup))
            .collect::<Vec<_>>()
            .join("  "),
        acceptance.model_consistency_1w,
        acceptance.modeled_speedup_4w,
        acceptance.fit_best_1w_vs_scoped_baseline,
        if acceptance.pass { "PASS" } else { "FAIL" },
    ));
    if host_threads < 4 {
        body.push_str(
            "\nNote: this host cannot show wall-clock parallel speedup (fewer than 4 hardware\n\
             threads); the wall-clock columns demonstrate the substrate adds no serial overhead,\n\
             and the speedup is modeled from the substrate's actual deterministic partitioning\n\
             over individually measured task times.\n",
        );
    }

    let bench = ParBench {
        version: 1,
        seed: opts.seed,
        host_threads,
        pool_size: clite_par::WorkerPool::global().size(),
        config: BenchConfig {
            jobs_mixes: vec![2, 5],
            observations: OBSERVATIONS,
            hyper_refresh_every: 1,
            repetitions: reps,
            model_starts: MODEL_STARTS,
        },
        suggest_ms,
        fit_best_ms,
        grid_point_fit_ms,
        phase_split_ms: phase_split,
        modeled,
        acceptance,
        notes: vec![
            "Byte-identity across slot counts is asserted by this experiment and enforced in CI \
             at two pool sizes (CLITE_PAR_THREADS=1 and =4) by the release-mode determinism \
             suites."
                .into(),
            "The modeled speedup replays map_indexed's slot striping over the 15 measured \
             grid-point fit times (makespan = busiest slot) and assumes 6 uniform climb starts \
             (jitter copies excluded, which under-counts parallel work)."
                .into(),
            "The scoped baseline reconstructs the pre-PR per-call std::thread::scope fan-out \
             byte-for-byte: same striping, same shared distance matrix, serial at one worker."
                .into(),
        ],
    };
    let path = report_path();
    match save_json(&path, &bench) {
        Ok(()) => body.push_str(&format!("\nbenchmark artifact written to {}\n", path.display())),
        Err(e) => {
            body.push_str(&format!("\nWARNING: cannot write {}: {e}\n", path.display()));
        }
    }
    Report {
        id: "par",
        title: "Parallel substrate scaling: shared pool vs scoped spawns (extension)".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_baseline_matches_pooled_scan() {
        let (xs, ys) = training_data(16, 2, 3);
        let grid = HyperGrid::default_unit();
        let template = Kernel::matern52(1.0, 1.0);
        let pooled = fit_best_threaded(&template, GpConfig::default(), &grid, &xs, &ys, 4).unwrap();
        let scoped = fit_best_scoped(&template, GpConfig::default(), &grid, &xs, &ys, 4);
        assert_eq!(
            pooled.log_marginal_likelihood().to_bits(),
            scoped.log_marginal_likelihood().to_bits()
        );
        assert_eq!(pooled.kernel(), scoped.kernel());
    }

    #[test]
    fn stripe_model_is_a_true_makespan() {
        // 4 slots over [3,1,1,1,3,...]: slot 0 gets both 3s.
        let times = [3.0, 1.0, 1.0, 1.0, 3.0];
        let mut per_slot = [0.0f64; 4];
        for (i, &t) in times.iter().enumerate() {
            per_slot[i % 4] += t;
        }
        let makespan = per_slot.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!((makespan - 6.0).abs() < 1e-12);
    }
}
