//! One module per paper table/figure (see `DESIGN.md` for the index).

pub mod ablations;
pub mod chaos;
pub mod cluster;
pub mod fig01;
pub mod fig02;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fleet;
pub mod frontier;
pub mod loadtest;
pub mod par;
pub mod placement;
pub mod recovery;
pub mod summary;
pub mod tables;

use crate::{ExpOptions, Report};

/// An experiment entry point.
pub type ExperimentFn = fn(&ExpOptions) -> Report;

/// All experiments: `(id, runner)` in presentation order.
#[must_use]
pub fn registry() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table1", tables::table1 as ExperimentFn),
        ("table2", tables::table2),
        ("table3", tables::table3),
        ("fig1", fig01::run),
        ("fig2", fig02::run),
        ("fig6", fig06::run),
        ("fig7", fig07::run),
        ("fig8", fig08::run),
        ("fig9a", fig09::run_a),
        ("fig9b", fig09::run_b),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15a", fig15::run_a),
        ("fig15b", fig15::run_b),
        ("fig16", fig16::run),
        ("summary", summary::run),
        ("ablations", ablations::run),
        ("frontier", frontier::run),
        ("cluster", cluster::run),
        ("chaos", chaos::run),
        ("loadtest", loadtest::run),
        ("fleet", fleet::run),
        ("placement", placement::run),
        ("par", par::run),
        ("recovery", recovery::run),
    ]
}

/// Runs one experiment by id (`None` for an unknown id).
#[must_use]
pub fn run_by_id(id: &str, opts: &ExpOptions) -> Option<Report> {
    registry().into_iter().find(|(i, _)| *i == id).map(|(_, f)| f(opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<_> = reg.iter().map(|(i, _)| *i).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("fig99", &ExpOptions::default()).is_none());
    }
}
