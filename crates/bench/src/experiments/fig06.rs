//! Fig. 6: QPS-vs-p95 isolation curves and the derived QoS targets.
//!
//! For every LC workload, sweep the offered load in isolation (whole
//! machine allocated), print the hockey-stick curve, and report the knee
//! latency (= QoS target) and knee QPS (= maximum load), exactly the
//! methodology the paper uses to set up its evaluation.

use clite_sim::prelude::*;
use clite_sim::queueing::isolation_sweep;

use crate::render::Table;
use crate::{ExpOptions, Report};

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let catalog = ResourceCatalog::testbed();
    let points = if opts.quick { 10 } else { 20 };
    let mut body = String::new();

    let mut summary =
        Table::new(vec!["Workload", "Unloaded p95 (us)", "QoS target (us)", "Max load (QPS)"]);
    for w in WorkloadId::LATENCY_CRITICAL {
        let spec = QosSpec::derive(w, &catalog);
        summary.row(vec![
            w.name().to_owned(),
            format!("{:.0}", spec.unloaded_p95_us),
            format!("{:.0}", spec.target_us),
            format!("{:.0}", spec.max_qps),
        ]);
    }
    body.push_str(&summary.render());

    for w in WorkloadId::LATENCY_CRITICAL {
        let profile = w.profile();
        let sweep = isolation_sweep(&profile, &catalog, points, 0.95);
        body.push_str(&format!("\n{} isolation curve:\n", w.name()));
        let mut t = Table::new(vec!["QPS", "p95 (us)"]);
        for p in sweep {
            t.row(vec![format!("{:.0}", p.qps), format!("{:.0}", p.p95_us)]);
        }
        body.push_str(&t.render());
    }
    Report {
        id: "fig6",
        title: "QPS vs 95th-percentile latency in isolation; knee = QoS target".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_lc_workloads() {
        let r = run(&ExpOptions::default());
        for w in WorkloadId::LATENCY_CRITICAL {
            assert!(r.body.contains(w.name()));
        }
    }
}
