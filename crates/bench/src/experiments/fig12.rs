//! Fig. 12: BG-job performance heatmap while two LC jobs meet QoS.
//!
//! streamcluster co-located with memcached and xapian at a grid of loads;
//! the value is streamcluster's throughput normalized to isolation, for
//! configurations where both LC jobs meet QoS (`X` otherwise). Shapes to
//! reproduce: CLITE within ~5% of ORACLE across most of the grid, PARTIES
//! clearly darker-to-lighter (worse), all policies degrading as the LC
//! loads grow.

use crate::mixes::fig12_mix;
use crate::render::{heatmap, pct};
use crate::runner::{load_grid, run_and_eval, PolicyKind};
use crate::{ExpOptions, Report};

/// The policies Fig. 12 compares.
pub const POLICIES: [PolicyKind; 3] = [PolicyKind::Parties, PolicyKind::Clite, PolicyKind::Oracle];

/// BG performance grid (`grid[memcached][xapian]`); `None` where the
/// policy could not meet both QoS targets.
#[must_use]
pub fn policy_grid(kind: PolicyKind, loads: &[f64], seed: u64) -> Vec<Vec<Option<f64>>> {
    loads
        .iter()
        .enumerate()
        .map(|(yi, &mem)| {
            loads
                .iter()
                .enumerate()
                .map(|(xi, &xap)| {
                    let mix = fig12_mix(mem, xap);
                    let (qos_met, bg, _) =
                        run_and_eval(kind, &mix, seed.wrapping_add((yi * 37 + xi) as u64));
                    if qos_met {
                        bg
                    } else {
                        None
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let loads = if opts.quick { load_grid(0.4) } else { load_grid(0.2) };
    let ticks: Vec<String> = loads.iter().map(|&l| pct(l)).collect();
    let mut body = String::new();
    body.push_str(
        "streamcluster throughput as % of isolation (memcached+xapian QoS met; X = infeasible)\n",
    );
    for kind in POLICIES {
        let grid = policy_grid(kind, &loads, opts.seed);
        body.push_str(&format!("\n{}:\n", kind.name()));
        body.push_str(&heatmap("xapian load", "memcached", &ticks, &ticks, &grid, pct));
    }
    Report { id: "fig12", title: "BG performance while meeting 2 LC QoS targets".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bg_perf_degrades_with_load_for_oracle() {
        let loads = [0.1, 0.9];
        let grid = policy_grid(PolicyKind::Oracle, &loads, 7);
        let easy = grid[0][0].expect("10/10 must be feasible");
        if let Some(hard) = grid[1][1] {
            assert!(hard <= easy + 1e-9, "more LC load cannot help the BG job");
        }
    }

    #[test]
    fn clite_tracks_oracle_on_easy_cell() {
        let loads = [0.1];
        let oracle = policy_grid(PolicyKind::Oracle, &loads, 9)[0][0].unwrap();
        let clite = policy_grid(PolicyKind::Clite, &loads, 9)[0][0].unwrap();
        assert!(clite / oracle > 0.8, "CLITE at {:.2} of oracle", clite / oracle);
    }
}
