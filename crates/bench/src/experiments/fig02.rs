//! Fig. 2: why one-dimension-at-a-time (coordinate-descent) search fails.
//!
//! The paper's second motivating figure shows three two-job scenarios of
//! increasing difficulty: (a) equal division works, (b) success depends on
//! the starting point, (c) the overlap region is so skewed that exploring
//! one dimension at a time from any natural start never finds it. We
//! reproduce the *operational* content of the figure by running PARTIES
//! (coordinate descent) and CLITE (joint multi-dimensional search) on
//! three concrete two-LC-job settings of increasing tightness and
//! reporting who co-locates what.

use crate::mixes::Mix;
use crate::render::Table;
use crate::runner::{run_policy, PolicyKind};
use crate::{ExpOptions, Report};
use clite_sim::workload::WorkloadId;

/// The three scenarios: progressively tighter two-LC-job co-locations.
#[must_use]
pub fn scenarios() -> Vec<(&'static str, Mix)> {
    vec![
        (
            "(a) loose: both jobs at 20%",
            Mix::new(&[(WorkloadId::Memcached, 0.2), (WorkloadId::ImgDnn, 0.2)], &[]),
        ),
        (
            "(b) asymmetric: masstree 80% + img-dnn 30%",
            Mix::new(&[(WorkloadId::Masstree, 0.8), (WorkloadId::ImgDnn, 0.3)], &[]),
        ),
        (
            "(c) tight: masstree 80% + img-dnn 70%",
            Mix::new(&[(WorkloadId::Masstree, 0.8), (WorkloadId::ImgDnn, 0.7)], &[]),
        ),
    ]
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let mut t = Table::new(vec!["Scenario", "PARTIES", "CLITE", "ORACLE"]);
    for (name, mix) in scenarios() {
        let mut cells = vec![name.to_owned()];
        for kind in [PolicyKind::Parties, PolicyKind::Clite, PolicyKind::Oracle] {
            let outcome = run_policy(kind, &mix, opts.seed);
            cells.push(if outcome.qos_met { "QoS met".into() } else { "failed".to_owned() });
        }
        t.row(cells);
    }
    let mut body = t.render();
    body.push_str(
        "\nReading: coordinate descent handles the loose case; as the feasible\n\
         region shrinks and skews, one-dimension-at-a-time search becomes\n\
         start-point dependent and eventually fails where joint exploration\n\
         still succeeds (paper Fig. 2 (a)-(c)).\n",
    );
    Report { id: "fig2", title: "Coordinate descent vs joint search".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_list_is_three_cases() {
        assert_eq!(scenarios().len(), 3);
    }

    #[test]
    fn loose_scenario_easy_for_everyone() {
        let (_, mix) = &scenarios()[0];
        let outcome = run_policy(PolicyKind::Parties, mix, 7);
        assert!(outcome.qos_met, "case (a) must be easy for PARTIES too");
    }
}
