//! Fig. 10: mean LC performance normalized to ORACLE as one job's load
//! sweeps.
//!
//! Two 3-LC-job mixes; two jobs held at 10% load, the third swept. The
//! metric is the mean isolation-relative performance of the three LC jobs
//! at each policy's chosen configuration, normalized to ORACLE's. Shapes
//! to reproduce: CLITE in the high 90s% of ORACLE, PARTIES meaningfully
//! lower (the paper reports 74–85%), RAND+/GENETIC below 80%, and the
//! CLITE advantage growing with load.

use crate::mixes::{fig10_mix_a, fig10_mix_b, Mix};
use crate::render::{pct, Table};
use crate::runner::{run_and_eval, PolicyKind};
use crate::{ExpOptions, Report};

/// Ground-truth mean LC performance of a policy's chosen partition,
/// `None` if it does not meet QoS (reported as X in the figure, like the
/// paper's missing bars).
fn lc_perf(kind: PolicyKind, mix: &Mix, seed: u64) -> Option<f64> {
    let (qos_met, _, lc) = run_and_eval(kind, mix, seed);
    if qos_met {
        lc
    } else {
        None
    }
}

/// Runs one mix family over the load sweep.
fn sweep(make: impl Fn(f64) -> Mix, loads: &[f64], seed: u64) -> Table {
    let mut t = Table::new(vec!["swept load", "PARTIES", "RAND+", "GENETIC", "CLITE"]);
    for (i, &load) in loads.iter().enumerate() {
        let mix = make(load);
        let oracle = lc_perf(PolicyKind::Oracle, &mix, seed.wrapping_add(i as u64)).unwrap_or(0.0);
        let mut row = vec![pct(load)];
        for kind in PolicyKind::ONLINE_COMPARED {
            let perf = lc_perf(kind, &mix, seed.wrapping_add(i as u64)).unwrap_or(0.0);
            row.push(if oracle > 0.0 { pct(perf / oracle) } else { "X".into() });
        }
        t.row(row);
    }
    t
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let loads: Vec<f64> =
        if opts.quick { vec![0.1, 0.5, 0.9] } else { vec![0.1, 0.3, 0.5, 0.7, 0.9] };
    let mut body = String::new();
    body.push_str("mean LC performance as % of ORACLE (X = QoS not met)\n");
    body.push_str("\nmix A: img-dnn@10% + xapian@10% + memcached@swept:\n");
    body.push_str(&sweep(fig10_mix_a, &loads, opts.seed).render());
    body.push_str("\nmix B: specjbb@10% + masstree@10% + xapian@swept:\n");
    body.push_str(&sweep(fig10_mix_b, &loads, opts.seed ^ 0xB).render());
    Report { id: "fig10", title: "LC performance normalized to ORACLE vs load".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clite_close_to_oracle_at_moderate_load() {
        let mix = fig10_mix_a(0.5);
        let oracle = lc_perf(PolicyKind::Oracle, &mix, 21).unwrap();
        let clite = lc_perf(PolicyKind::Clite, &mix, 21).unwrap();
        assert!(
            clite / oracle > 0.85,
            "CLITE at {:.1}% of ORACLE ({clite:.3} vs {oracle:.3})",
            100.0 * clite / oracle
        );
    }
}
