//! Extension experiment: the co-location frontier.
//!
//! Figs. 7/8 probe the feasibility boundary along one axis; this sweep
//! characterizes it directly: three LC jobs share a total load budget
//! equally, and we measure — per policy — the largest budget that is
//! still co-locatable. The gap between ORACLE's frontier and each
//! policy's frontier is the utilization left on the table by that
//! policy's search.

use crate::mixes::Mix;
use crate::render::{pct, Table};
use crate::runner::{run_and_eval, PolicyKind};
use crate::{ExpOptions, Report};
use clite_sim::workload::WorkloadId;

/// The LC trio whose total load is swept.
const TRIO: [WorkloadId; 3] = [WorkloadId::Memcached, WorkloadId::Masstree, WorkloadId::ImgDnn];

/// Builds the equal-split mix for a total load budget (plus one BG job so
/// the score's performance mode is exercised).
fn mix(total_load: f64, with_bg: bool) -> Mix {
    let per_job = total_load / 3.0;
    let lc: Vec<(WorkloadId, f64)> = TRIO.iter().map(|&w| (w, per_job)).collect();
    let bg: &[WorkloadId] = if with_bg { &[WorkloadId::Blackscholes] } else { &[] };
    Mix::new(&lc, bg)
}

/// Whether `kind` co-locates the trio at `total_load` (majority over
/// `seeds` re-seeded runs).
fn feasible(kind: PolicyKind, total_load: f64, with_bg: bool, seeds: &[u64]) -> bool {
    let ok = seeds.iter().filter(|&&s| run_and_eval(kind, &mix(total_load, with_bg), s).0).count();
    ok * 2 > seeds.len()
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let seeds: Vec<u64> = if opts.quick {
        vec![opts.seed]
    } else {
        vec![opts.seed, opts.seed + 101, opts.seed + 202]
    };
    let budgets: Vec<f64> = (3..=10).map(|i| f64::from(i) * 0.3).collect(); // 90% .. 300% total

    let mut body = String::new();
    for with_bg in [false, true] {
        body.push_str(if with_bg { "\nwith blackscholes (BG):\n" } else { "\nLC jobs only:\n" });
        let mut t = Table::new(vec!["total LC load", "PARTIES", "CLITE", "ORACLE"]);
        for &b in &budgets {
            let mut row = vec![pct(b)];
            for kind in [PolicyKind::Parties, PolicyKind::Clite, PolicyKind::Oracle] {
                row.push(if feasible(kind, b, with_bg, &seeds) {
                    "yes".to_owned()
                } else {
                    "X".to_owned()
                });
            }
            t.row(row);
        }
        body.push_str(&t.render());
    }
    body.push_str(
        "\nReading: each policy's frontier is the last 'yes'. The distance to\n\
         ORACLE's frontier is utilization the policy leaves on the table; adding\n\
         a BG job pulls every frontier in.\n",
    );
    Report { id: "frontier", title: "Co-location feasibility frontier (extension)".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_frontier_is_monotone_boundary() {
        // If ORACLE can host 1.8 total load, it can host 0.9.
        let seeds = [5u64];
        if feasible(PolicyKind::Oracle, 1.8, false, &seeds) {
            assert!(feasible(PolicyKind::Oracle, 0.9, false, &seeds));
        }
    }

    #[test]
    fn low_budget_feasible_high_budget_not() {
        let seeds = [5u64];
        assert!(feasible(PolicyKind::Oracle, 0.9, false, &seeds));
        assert!(!feasible(PolicyKind::Oracle, 3.0, false, &seeds));
    }
}
