//! Extension experiment: the co-location frontier.
//!
//! Figs. 7/8 probe the feasibility boundary along one axis; this sweep
//! characterizes it directly: three LC jobs share a total load budget
//! equally, and we measure — per policy — the largest budget that is
//! still co-locatable. The gap between ORACLE's frontier and each
//! policy's frontier is the utilization left on the table by that
//! policy's search.

use std::sync::{Arc, Mutex};

use crate::mixes::Mix;
use crate::render::{pct, Table};
use crate::runner::{final_eval, run_and_eval, run_policy_memoized, PolicyKind};
use crate::{ExpOptions, Report};
use clite_sim::testbed::ObservationCache;
use clite_sim::workload::WorkloadId;

/// The LC trio whose total load is swept.
const TRIO: [WorkloadId; 3] = [WorkloadId::Memcached, WorkloadId::Masstree, WorkloadId::ImgDnn];

/// Builds the equal-split mix for a total load budget (plus one BG job so
/// the score's performance mode is exercised).
fn mix(total_load: f64, with_bg: bool) -> Mix {
    let per_job = total_load / 3.0;
    let lc: Vec<(WorkloadId, f64)> = TRIO.iter().map(|&w| (w, per_job)).collect();
    let bg: &[WorkloadId] = if with_bg { &[WorkloadId::Blackscholes] } else { &[] };
    Mix::new(&lc, bg)
}

/// Whether `kind` co-locates the trio at `total_load` (majority over
/// `seeds` re-seeded runs).
///
/// `oracle_cache`, when given, routes runs through a shared
/// [`ObservationCache`]: ORACLE's exhaustive ground-truth sweeps revisit
/// the same (workloads, loads, partition) keys across budgets, BG
/// settings and seeds, so one cache serves the whole experiment. Only
/// ground-truth-driven policies may share it — replaying cached *noisy*
/// observations across seeds would collapse the majority vote.
fn feasible(
    kind: PolicyKind,
    total_load: f64,
    with_bg: bool,
    seeds: &[u64],
    oracle_cache: Option<&Arc<Mutex<ObservationCache>>>,
) -> bool {
    let ok = seeds
        .iter()
        .filter(|&&s| {
            let mix = mix(total_load, with_bg);
            match oracle_cache {
                Some(cache) => {
                    let outcome = run_policy_memoized(kind, &mix, s, cache);
                    final_eval(&mix, &outcome, s).all_qos_met()
                }
                None => run_and_eval(kind, &mix, s).0,
            }
        })
        .count();
    ok * 2 > seeds.len()
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let seeds: Vec<u64> = if opts.quick {
        vec![opts.seed]
    } else {
        vec![opts.seed, opts.seed + 101, opts.seed + 202]
    };
    let budgets: Vec<f64> = (3..=10).map(|i| f64::from(i) * 0.3).collect(); // 90% .. 300% total

    // One ground-truth cache for every ORACLE cell: the `ObsKey` embeds
    // workloads and per-job loads, so budgets / BG variants never collide.
    let oracle_cache = ObservationCache::shared();

    let mut body = String::new();
    for with_bg in [false, true] {
        body.push_str(if with_bg { "\nwith blackscholes (BG):\n" } else { "\nLC jobs only:\n" });
        let mut t = Table::new(vec!["total LC load", "PARTIES", "CLITE", "ORACLE"]);
        for &b in &budgets {
            let mut row = vec![pct(b)];
            for kind in [PolicyKind::Parties, PolicyKind::Clite, PolicyKind::Oracle] {
                let cache = if kind == PolicyKind::Oracle { Some(&oracle_cache) } else { None };
                row.push(if feasible(kind, b, with_bg, &seeds, cache) {
                    "yes".to_owned()
                } else {
                    "X".to_owned()
                });
            }
            t.row(row);
        }
        body.push_str(&t.render());
    }
    body.push_str(
        "\nReading: each policy's frontier is the last 'yes'. The distance to\n\
         ORACLE's frontier is utilization the policy leaves on the table; adding\n\
         a BG job pulls every frontier in.\n",
    );
    {
        let cache = oracle_cache.lock().expect("oracle cache lock");
        body.push_str(&format!(
            "\nORACLE memoization: {} ground-truth evaluations replayed, {} simulated\n",
            cache.hits(),
            cache.misses()
        ));
    }
    Report { id: "frontier", title: "Co-location feasibility frontier (extension)".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_frontier_is_monotone_boundary() {
        // If ORACLE can host 1.8 total load, it can host 0.9.
        let seeds = [5u64];
        let cache = ObservationCache::shared();
        if feasible(PolicyKind::Oracle, 1.8, false, &seeds, Some(&cache)) {
            assert!(feasible(PolicyKind::Oracle, 0.9, false, &seeds, Some(&cache)));
        }
    }

    #[test]
    fn low_budget_feasible_high_budget_not() {
        let seeds = [5u64];
        assert!(feasible(PolicyKind::Oracle, 0.9, false, &seeds, None));
        assert!(!feasible(PolicyKind::Oracle, 3.0, false, &seeds, None));
    }

    #[test]
    fn memoized_and_plain_oracle_agree() {
        let seeds = [5u64];
        let cache = ObservationCache::shared();
        for budget in [0.9, 3.0] {
            assert_eq!(
                feasible(PolicyKind::Oracle, budget, false, &seeds, Some(&cache)),
                feasible(PolicyKind::Oracle, budget, false, &seeds, None),
                "memoization must not change the ORACLE verdict at {budget}"
            );
        }
        assert!(cache.lock().unwrap().misses() > 0);
    }
}
