//! Extension experiment: warehouse-scale placement on top of CLITE.
//!
//! The paper's introduction argues co-location exists to raise datacenter
//! utilization; its ejection rule presumes a cluster scheduler above the
//! node controller. This experiment streams a fixed arrival sequence onto
//! a small fleet under each placement policy and reports admission rate,
//! freed machines, and the partitioning work spent.

use std::time::Instant;

use clite_cluster::placement::PlacementPolicy;
use clite_cluster::scheduler::{AdmissionMode, ClusterScheduler, SchedulerConfig};
use clite_sim::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::render::{pct, Table};
use crate::runner::ambient_telemetry;
use crate::{ExpOptions, Report};

/// A deterministic arrival sequence: two LC jobs per BG job, loads 10–60%.
fn arrivals(n: usize, seed: u64) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                JobSpec::background(WorkloadId::BACKGROUND[rng.gen_range(0..6)])
            } else {
                let w = WorkloadId::LATENCY_CRITICAL[rng.gen_range(0..5)];
                JobSpec::latency_critical(w, f64::from(rng.gen_range(1..=6)) * 0.1)
            }
        })
        .collect()
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal scheduler failures (harness bug).
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let (nodes, jobs) = if opts.quick { (3, 10) } else { (4, 16) };
    let stream = arrivals(jobs, opts.seed);

    let mut t = Table::new(vec![
        "placement",
        "placed",
        "rejected",
        "admission",
        "empty nodes",
        "QoS nodes ok",
        "samples spent",
    ]);
    for policy in
        [PlacementPolicy::FirstFit, PlacementPolicy::LeastLoaded, PlacementPolicy::MostLoaded]
    {
        let mut cluster = ClusterScheduler::new(
            nodes,
            SchedulerConfig { placement: policy.clone(), ..SchedulerConfig::default() },
            opts.seed,
        )
        .expect("non-empty cluster");
        let telemetry = ambient_telemetry();
        for spec in stream.clone() {
            cluster.submit_with(spec, &telemetry).expect("scheduler healthy");
        }
        let stats = cluster.stats();
        let qos_ok = stats.nodes.iter().filter(|n| n.qos_met).count();
        let samples: u64 = stats.nodes.iter().map(|n| n.samples_spent).sum();
        t.row(vec![
            policy.name().to_owned(),
            stats.placed.to_string(),
            stats.rejected.to_string(),
            pct(stats.admission_rate()),
            stats.empty_nodes.to_string(),
            format!("{qos_ok}/{nodes}"),
            samples.to_string(),
        ]);
    }
    let mut body =
        format!("{jobs} arrivals onto {nodes} nodes (admission = CLITE feasibility)\n\n");
    body.push_str(&t.render());
    body.push_str(
        "\nReading: bin-packing (most-loaded) frees whole machines at equal\n\
         admission; every committed node holds all of its QoS targets because\n\
         admission *is* a CLITE feasibility proof.\n",
    );

    // Serial vs. threaded admission: identical placements by construction
    // (per-node search seeds are pure functions of committed state), so the
    // only observable difference is wall-clock — candidate nodes are probed
    // concurrently instead of one after another.
    let mut wall = Vec::new();
    for mode in [AdmissionMode::Serial, AdmissionMode::Threaded] {
        let mut cluster = ClusterScheduler::new(
            nodes,
            SchedulerConfig {
                placement: PlacementPolicy::LeastLoaded,
                admission: mode,
                ..SchedulerConfig::default()
            },
            opts.seed,
        )
        .expect("non-empty cluster");
        let telemetry = ambient_telemetry();
        let start = Instant::now();
        for spec in stream.clone() {
            cluster.submit_with(spec, &telemetry).expect("scheduler healthy");
        }
        wall.push((mode, start.elapsed(), cluster.stats()));
    }
    let (serial, threaded) = (&wall[0], &wall[1]);
    assert_eq!(serial.2, threaded.2, "admission modes must commit identical fleets");
    body.push_str(&format!(
        "\nadmission wall-clock (least-loaded): serial {:.2}s, threaded {:.2}s \
         ({:.1}x speedup); fleets byte-identical. Threaded admission probes\n\
         every candidate node speculatively, so it needs as many cores as\n\
         candidates to win; on a single core the speculation serializes.\n",
        serial.1.as_secs_f64(),
        threaded.1.as_secs_f64(),
        serial.1.as_secs_f64() / threaded.1.as_secs_f64().max(1e-9),
    ));
    Report { id: "cluster", title: "Fleet placement on CLITE admission (extension)".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_stream_is_deterministic() {
        assert_eq!(arrivals(8, 3), arrivals(8, 3));
        assert_ne!(arrivals(8, 3), arrivals(8, 4));
    }

    #[test]
    fn report_covers_all_policies() {
        let r = run(&ExpOptions { quick: true, seed: 6, ..ExpOptions::default() });
        for name in ["first-fit", "least-loaded", "most-loaded"] {
            assert!(r.body.contains(name));
        }
        assert!(r.body.contains("speedup"), "serial vs. threaded timing must be reported");
    }
}
