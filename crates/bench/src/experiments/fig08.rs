//! Fig. 8: the Fig. 7 sweep with an additional BG job (blackscholes).
//!
//! Same metric as Fig. 7 — maximum supported memcached load — with four
//! co-located jobs. Expected shapes: every policy supports less than in
//! Fig. 7 (more `X` cells), and CLITE still beats PARTIES by a wide margin
//! at high loads while feeding the BG job.

use crate::mixes::fig8_mix;
use crate::render::{heatmap, pct};
use crate::runner::{load_grid, max_supported_load, PolicyKind};
use crate::{ExpOptions, Report};

/// The policies Fig. 8 compares.
pub const POLICIES: [PolicyKind; 3] = [PolicyKind::Parties, PolicyKind::Clite, PolicyKind::Oracle];

/// Computes the heatmap for one policy (`grid[imgdnn][masstree]`).
#[must_use]
pub fn policy_grid(kind: PolicyKind, loads: &[f64], seed: u64) -> Vec<Vec<Option<f64>>> {
    loads
        .iter()
        .map(|&img| {
            loads
                .iter()
                .map(|&mas| max_supported_load(kind, loads, seed, |mem| fig8_mix(mem, mas, img)))
                .collect()
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let loads = if opts.quick { load_grid(0.4) } else { load_grid(0.2) };
    let ticks: Vec<String> = loads.iter().map(|&l| pct(l)).collect();
    let mut body = String::new();
    body.push_str("3 LC jobs + blackscholes (BG); value = max memcached load with all QoS met\n");
    for kind in POLICIES {
        let grid = policy_grid(kind, &loads, opts.seed);
        body.push_str(&format!("\n{}:\n", kind.name()));
        body.push_str(&heatmap("masstree load", "img-dnn", &ticks, &ticks, &grid, pct));
    }
    Report {
        id: "fig8",
        title: "Three LC jobs plus one BG job: max supported memcached load".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bg_job_reduces_headroom_vs_fig7() {
        // With the BG job present, ORACLE's supported load in the hard
        // corner can only be <= the Fig. 7 value.
        let loads = [0.1, 0.9];
        let with_bg = policy_grid(PolicyKind::Oracle, &loads, 5);
        let without = crate::experiments::fig07::policy_grid(PolicyKind::Oracle, &loads, 5);
        let hard_with = with_bg[1][1].unwrap_or(0.0);
        let hard_without = without[1][1].unwrap_or(0.0);
        assert!(hard_with <= hard_without + 1e-9);
    }
}
