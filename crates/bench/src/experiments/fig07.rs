//! Fig. 7: maximum supported memcached load when co-located with masstree
//! and img-dnn (no BG job), per policy.
//!
//! For every (masstree load, img-dnn load) grid cell, find the highest
//! memcached load at which the policy meets *all three* QoS targets; `X`
//! marks cells where no load works. The paper's headline observations to
//! reproduce: Heracles cannot co-locate memcached at all; CLITE matches or
//! beats PARTIES everywhere; ORACLE bounds everyone; CLITE tracks ORACLE
//! except at extreme loads.

use crate::mixes::fig7_mix;
use crate::render::{heatmap, pct};
use crate::runner::{load_grid, max_supported_load, PolicyKind};
use crate::{ExpOptions, Report};

/// The policies Fig. 7 compares.
pub const POLICIES: [PolicyKind; 4] =
    [PolicyKind::Heracles, PolicyKind::Parties, PolicyKind::Clite, PolicyKind::Oracle];

/// Computes the heatmap for one policy. Returned as `grid[imgdnn][masstree]`.
#[must_use]
pub fn policy_grid(kind: PolicyKind, loads: &[f64], seed: u64) -> Vec<Vec<Option<f64>>> {
    loads
        .iter()
        .map(|&img| {
            loads
                .iter()
                .map(|&mas| max_supported_load(kind, loads, seed, |mem| fig7_mix(mem, mas, img)))
                .collect()
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let loads = if opts.quick { load_grid(0.4) } else { load_grid(0.2) };
    let ticks: Vec<String> = loads.iter().map(|&l| pct(l)).collect();
    let mut body = String::new();
    body.push_str("value = max memcached load with all QoS met; X = not co-locatable\n");
    for kind in POLICIES {
        let grid = policy_grid(kind, &loads, opts.seed);
        body.push_str(&format!("\n{}:\n", kind.name()));
        body.push_str(&heatmap("masstree load", "img-dnn", &ticks, &ticks, &grid, pct));
    }
    Report {
        id: "fig7",
        title: "Co-locating three LC jobs: max supported memcached load".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_dominates_parties_in_easy_corner() {
        let loads = [0.1, 0.5];
        let seed = 3;
        let parties = policy_grid(PolicyKind::Parties, &loads, seed);
        let oracle = policy_grid(PolicyKind::Oracle, &loads, seed);
        // Easy corner (10%/10%) must be co-locatable for both.
        assert!(oracle[0][0].is_some());
        // ORACLE supports at least what PARTIES supports there.
        let p = parties[0][0].unwrap_or(0.0);
        let o = oracle[0][0].unwrap_or(0.0);
        assert!(o >= p, "oracle {o} vs parties {p}");
    }
}
