//! Fig. 1: QoS-safe regions for three LC jobs over two resources.
//!
//! The paper's motivating figure: multiple (cores, LLC-ways) allocations
//! meet a job's QoS, and the share of one resource required depends on the
//! share of the other — the *resource equivalence class* property. We plot
//! the QoS-safe region of each workload at 50% load with the remaining
//! resources held at half, directly from the performance model.

use clite_sim::alloc::JobAllocation;
use clite_sim::perf::{capacity_qps, query_time_us};
use clite_sim::queueing::{p95_latency_us, QosSpec};
use clite_sim::resource::ResourceCatalog;
use clite_sim::workload::WorkloadId;

use crate::render::region;
use crate::{ExpOptions, Report};

/// Whether `workload` at `load` meets QoS with `cores` cores and `ways`
/// LLC ways (other resources at half the machine).
#[must_use]
pub fn qos_safe(workload: WorkloadId, load: f64, cores: u32, ways: u32) -> bool {
    let catalog = ResourceCatalog::testbed();
    let spec = QosSpec::derive(workload, &catalog);
    let profile = workload.profile();
    let alloc = JobAllocation::from_units([cores, ways, 5, 5, 5, 5]);
    let t = query_time_us(&profile, &alloc, &catalog);
    let p95 = p95_latency_us(spec.qps_at_load(load), capacity_qps(t, cores), t);
    spec.met_by(p95)
}

/// Runs the experiment.
#[must_use]
pub fn run(_opts: &ExpOptions) -> Report {
    let catalog = ResourceCatalog::testbed();
    let mut body = String::new();
    for w in [WorkloadId::ImgDnn, WorkloadId::Specjbb, WorkloadId::Memcached] {
        let max_ways = catalog.all_units()[1];
        let max_cores = catalog.all_units()[0];
        // Rows: ways from max down to 1; cols: cores from 1 to max.
        let grid: Vec<Vec<bool>> = (1..=max_ways)
            .rev()
            .map(|ways| (1..=max_cores).map(|cores| qos_safe(w, 0.5, cores, ways)).collect())
            .collect();
        body.push_str(&format!("\n{} @ 50% load (# = QoS met):\n", w.name()));
        body.push_str(&region("cores", "LLC ways", &grid));
    }
    body.push_str(
        "\nReading: several (cores, ways) combinations along the region frontier are\n\
         interchangeable for QoS — the resource equivalence class property.\n",
    );
    Report { id: "fig1", title: "QoS-safe regions for three LC jobs".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_monotone_in_resources() {
        // More cores (ways fixed) can never break a safe configuration.
        for w in [WorkloadId::ImgDnn, WorkloadId::Specjbb, WorkloadId::Memcached] {
            for ways in [2, 6, 10] {
                let mut was_safe = false;
                for cores in 1..=10 {
                    let safe = qos_safe(w, 0.5, cores, ways);
                    if was_safe {
                        assert!(safe, "{w} lost QoS when gaining cores ({cores}, {ways})");
                    }
                    was_safe = safe;
                }
            }
        }
    }

    #[test]
    fn equivalence_class_exists() {
        // img-dnn: a ways-heavy and a cores-heavy configuration both safe,
        // while the starved corner is not.
        assert!(!qos_safe(WorkloadId::ImgDnn, 0.5, 1, 1));
        let frontier: Vec<(u32, u32)> = (1..=10)
            .flat_map(|c| (1..=11).map(move |w| (c, w)))
            .filter(|&(c, w)| qos_safe(WorkloadId::ImgDnn, 0.5, c, w))
            .collect();
        assert!(frontier.len() >= 2, "multiple configurations must meet QoS");
    }
}
