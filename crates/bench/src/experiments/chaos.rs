//! Extension experiment: chaos mode — how gracefully does CLITE degrade
//! under injected testbed faults?
//!
//! The paper assumes clean counters and live nodes; real warehouse
//! hardware delivers neither. Part A sweeps the fault rate (spikes,
//! dropped/stuck windows, enforcement faults — crashes disabled so every
//! run can finish) over the hardened controller and reports the QoS-safe
//! fraction and the extra observation windows the retries/quarantines
//! cost. Part B kills nodes mid-search in a small fleet and checks that
//! serial and threaded admission evict and re-place identically.

use clite_cluster::placement::PlacementPolicy;
use clite_cluster::scheduler::{AdmissionMode, ClusterScheduler, SchedulerConfig};
use clite_faults::{FaultSpec, FaultyFactory};
use clite_sim::prelude::*;

use crate::mixes::fig7_mix;
use crate::render::{pct, Table};
use crate::runner::{ambient_telemetry, final_eval, run_clite_chaos};
use crate::{ExpOptions, Report};

/// One fault-rate sweep point, aggregated over the seed set.
struct SweepPoint {
    scale: f64,
    completed: usize,
    degraded: usize,
    qos_safe: usize,
    runs: usize,
    mean_windows: f64,
    faults: u64,
    quarantined: usize,
}

/// Runs `runs` chaos searches at `scale` times the default fault rates
/// (crashes disabled so the search can always finish or degrade on its
/// own terms) and aggregates QoS safety and window spend.
fn sweep_point(scale: f64, runs: usize, base_seed: u64) -> SweepPoint {
    let spec = FaultSpec {
        crash_prob: 0.0,
        crash_at_window: None,
        ..FaultSpec::default_chaos().scaled(scale)
    };
    let mix = fig7_mix(0.3, 0.2, 0.2);
    let (mut completed, mut degraded, mut qos_safe) = (0usize, 0usize, 0usize);
    let (mut windows, mut faults, mut quarantined) = (0usize, 0u64, 0usize);
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i as u64);
        let chaos = run_clite_chaos(&mix, seed, &spec, None, &ambient_telemetry());
        faults += chaos.faults.total();
        quarantined += chaos.quarantined;
        match (&chaos.outcome, &chaos.fallback) {
            (Some(outcome), _) => {
                completed += 1;
                windows += outcome.samples_used() + chaos.quarantined;
                if final_eval(&mix, outcome, seed).all_qos_met() {
                    qos_safe += 1;
                }
            }
            (None, Some((fallback, _))) => {
                degraded += 1;
                // A degraded run still enforces its fallback; it is
                // QoS-safe iff that partition holds every target.
                if mix.server(seed).ground_truth(fallback).all_qos_met() {
                    qos_safe += 1;
                }
            }
            (None, None) => unreachable!("chaos run produced neither outcome nor fallback"),
        }
    }
    let mean_windows = if completed == 0 { f64::NAN } else { windows as f64 / completed as f64 };
    SweepPoint { scale, completed, degraded, qos_safe, runs, mean_windows, faults, quarantined }
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if serial and threaded admission diverge under crashes, or if
/// the default fault rate drops the QoS-safe fraction below 90% of the
/// fault-free one (the acceptance bar; a harness regression, not chance —
/// every fault stream here is seeded).
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let runs = if opts.quick { 3 } else { 8 };
    let scales = [0.0, 0.5, 1.0, 2.0];

    let points: Vec<SweepPoint> = scales.iter().map(|&s| sweep_point(s, runs, opts.seed)).collect();
    let clean = &points[0];
    let mut t = Table::new(vec![
        "fault scale",
        "completed",
        "degraded",
        "QoS-safe",
        "mean windows",
        "extra windows",
        "faults",
        "quarantined",
    ]);
    for p in &points {
        t.row(vec![
            format!("{:.1}x", p.scale),
            format!("{}/{}", p.completed, p.runs),
            p.degraded.to_string(),
            format!("{}/{}", p.qos_safe, p.runs),
            format!("{:.1}", p.mean_windows),
            format!("{:+.1}", p.mean_windows - clean.mean_windows),
            p.faults.to_string(),
            p.quarantined.to_string(),
        ]);
    }
    let default_point = &points[2];
    let safe_ratio = if clean.qos_safe == 0 {
        1.0
    } else {
        default_point.qos_safe as f64 / clean.qos_safe as f64
    };
    assert!(
        safe_ratio >= 0.9,
        "QoS-safe fraction at the default fault rate fell to {safe_ratio:.2} of fault-free"
    );
    let mut body = format!(
        "Part A — fault-rate sweep: {runs} hardened CLITE searches per point on\n\
         memcached:30 + masstree:20 + img-dnn:20 (crashes disabled; scale 1.0 =\n\
         5% spikes, 2% drops, 1% stuck, 2% enforce faults per window)\n\n{}\n\
         QoS-safe fraction at 1.0x is {} of fault-free (acceptance bar: >= 0.90).\n\
         Reading: spikes are caught by the 5-sigma outlier guard and re-observed;\n\
         repeatable \"outliers\" are kept (the surrogate was wrong, not the counter),\n\
         unrepeatable ones quarantined — charged to the window budget but never\n\
         entering the surrogate or the store. Drops/stuck windows retry with\n\
         window-counted backoff, so the price of chaos is extra windows, not\n\
         QoS regressions.\n",
        t.render(),
        pct(safe_ratio),
    );

    // Part B: node crashes in a fleet. Crash streams are pure functions of
    // (node id, commit count), so serial and threaded admission must see
    // the same crashes, evict the same nodes, and re-place the same
    // orphans.
    let spec = FaultSpec { crash_prob: 0.5, crash_window_max: 20, ..FaultSpec::none() };
    let stream = [
        JobSpec::latency_critical(WorkloadId::Memcached, 0.3),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.4),
        JobSpec::background(WorkloadId::Streamcluster),
        JobSpec::latency_critical(WorkloadId::Masstree, 0.5),
        JobSpec::latency_critical(WorkloadId::Xapian, 0.3),
        JobSpec::background(WorkloadId::Blackscholes),
    ];
    let mut fleets = Vec::new();
    for mode in [AdmissionMode::Serial, AdmissionMode::Threaded] {
        let config = SchedulerConfig {
            placement: PlacementPolicy::LeastLoaded,
            admission: mode,
            ..SchedulerConfig::default()
        };
        let factory = FaultyFactory::new(ServerFactory, spec.clone());
        let mut cluster =
            ClusterScheduler::with_factory(3, config, opts.seed, factory).expect("3-node cluster");
        let telemetry = ambient_telemetry();
        for job in stream.iter().cloned() {
            cluster.submit_with(job, &telemetry).expect("submission survives crashes");
        }
        fleets.push((mode, cluster.stats()));
    }
    let (serial, threaded) = (&fleets[0].1, &fleets[1].1);
    assert_eq!(serial, threaded, "admission modes diverged under node crashes");
    body.push_str(&format!(
        "\nPart B — node crashes under admission: {} jobs onto 3 nodes, every\n\
         testbed crash-prone (p=0.5, windows 1..=20). Fleet after the stream:\n\
         {} placed, {} rejected, {} node(s) evicted; serial and threaded\n\
         admission committed byte-identical fleets (evictions, orphan\n\
         re-placement and all) because fault streams are seeded by committed\n\
         state, not by thread timing.\n",
        stream.len(),
        serial.placed,
        serial.rejected,
        serial.dead_nodes,
    ));
    Report {
        id: "chaos",
        title: "Chaos mode: degradation under injected faults (extension)".into(),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_report_covers_sweep_and_crashes() {
        let r = run(&ExpOptions { quick: true, seed: 9, ..ExpOptions::default() });
        assert!(r.body.contains("fault scale") || r.body.contains("fault-rate"));
        assert!(r.body.contains("QoS-safe"));
        assert!(r.body.contains("evicted"));
    }
}
