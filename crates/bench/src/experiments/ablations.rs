//! Ablations of CLITE's design choices (paper Sec. 3.3–4).
//!
//! The paper argues each component earns its keep: the Matérn kernel (no
//! strong smoothness assumption), EI with ζ (cheap, balanced), informed
//! bootstrapping (extrema + equal split), dropout-copy (dimensionality),
//! and the scaled EI termination. Each ablation swaps exactly one choice
//! and reports the score achieved and samples spent on a standard
//! 3 LC + 1 BG mix.

use clite::config::CliteConfig;
use clite::controller::CliteController;
use clite_bo::acquisition::Acquisition;
use clite_bo::engine::BoConfig;
use clite_bo::termination::Termination;
use clite_gp::kernel::KernelFamily;
use clite_gp::stats::mean;

use crate::mixes::fig15b_mix;
use crate::render::Table;
use crate::{ExpOptions, Report};

/// One ablation variant.
struct Variant {
    name: &'static str,
    config: CliteConfig,
}

fn variants() -> Vec<Variant> {
    let base = CliteConfig::default();
    let with_kernel = |family: KernelFamily| {
        base.clone().with_bo(BoConfig { kernel_family: family, ..BoConfig::default() })
    };
    let with_acq = |acq: Acquisition| {
        base.clone().with_bo(BoConfig { acquisition: acq, ..BoConfig::default() })
    };
    vec![
        Variant { name: "CLITE (paper defaults)", config: base.clone() },
        Variant { name: "kernel: Matern 3/2", config: with_kernel(KernelFamily::Matern32) },
        Variant {
            name: "kernel: squared-exponential",
            config: with_kernel(KernelFamily::SquaredExponential),
        },
        Variant {
            name: "acquisition: PI",
            config: with_acq(Acquisition::ProbabilityOfImprovement { zeta: 0.01 }),
        },
        Variant {
            name: "acquisition: UCB (beta=2)",
            config: with_acq(Acquisition::UpperConfidenceBound { beta: 2.0 }),
        },
        Variant {
            name: "zeta = 0 (pure exploitation)",
            config: with_acq(Acquisition::ExpectedImprovement { zeta: 0.0 }),
        },
        Variant {
            name: "zeta = 0.1 (heavy exploration)",
            config: with_acq(Acquisition::ExpectedImprovement { zeta: 0.1 }),
        },
        Variant { name: "no dropout-copy", config: base.clone().without_dropout() },
        Variant {
            name: "loose termination (0.5%)",
            config: base
                .clone()
                .with_termination(Termination { ei_threshold: 0.005, ..Termination::default() }),
        },
        Variant {
            name: "tight termination (15%)",
            config: base
                .with_termination(Termination { ei_threshold: 0.15, ..Termination::default() }),
        },
    ]
}

/// Runs the ablation suite.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let repeats = if opts.quick { 2 } else { 4 };
    let mix = fig15b_mix();
    let mut t = Table::new(vec!["Variant", "mean best score", "mean samples", "QoS met"]);
    for v in variants() {
        let mut scores = Vec::new();
        let mut samples = Vec::new();
        let mut met = 0usize;
        for r in 0..repeats {
            let seed = opts.seed.wrapping_add(31 * r as u64);
            let mut server = mix.server(seed);
            let controller = CliteController::new(v.config.clone().with_seed(seed));
            let outcome = controller.run(&mut server).expect("ablation run succeeds");
            scores.push(outcome.best_score);
            samples.push(outcome.samples_used() as f64);
            if outcome.qos_met() {
                met += 1;
            }
        }
        t.row(vec![
            v.name.to_owned(),
            format!("{:.4}", mean(&scores)),
            format!("{:.1}", mean(&samples)),
            format!("{met}/{repeats}"),
        ]);
    }
    let mut body = format!("mix: {} ({repeats} repeats each)\n\n", mix.name);
    body.push_str(&t.render());

    // Simulator-model sensitivity: the same controller under different
    // queueing models / QoS quantiles (targets are re-derived per model,
    // so every row is a self-consistent world).
    use clite_sim::queueing::{TailConfig, TailModel};
    let mut t2 = Table::new(vec!["latency model", "mean best score", "QoS met"]);
    for (name, tail) in [
        ("processor-sharing p95 (default)", TailConfig::default()),
        (
            "processor-sharing p99",
            TailConfig { model: TailModel::ProcessorSharing, quantile: 0.99 },
        ),
        ("Erlang-C p95", TailConfig { model: TailModel::ErlangC, quantile: 0.95 }),
    ] {
        let mut scores = Vec::new();
        let mut met = 0usize;
        for r in 0..repeats {
            let seed = opts.seed.wrapping_add(77 * r as u64);
            let mut server = mix.server(seed);
            server.set_tail(tail);
            let outcome = CliteController::new(CliteConfig::default().with_seed(seed))
                .run(&mut server)
                .expect("ablation run succeeds");
            scores.push(outcome.best_score);
            if outcome.qos_met() {
                met += 1;
            }
        }
        t2.row(vec![name.to_owned(), format!("{:.4}", mean(&scores)), format!("{met}/{repeats}")]);
    }
    body.push_str("\nsimulator latency-model sensitivity:\n");
    body.push_str(&t2.render());
    Report { id: "ablations", title: "CLITE design-choice ablations".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_list_covers_all_design_axes() {
        let names: Vec<&str> = variants().iter().map(|v| v.name).collect();
        assert!(names.iter().any(|n| n.contains("Matern 3/2")));
        assert!(names.iter().any(|n| n.contains("PI")));
        assert!(names.iter().any(|n| n.contains("dropout")));
        assert!(names.iter().any(|n| n.contains("termination")));
        assert!(names.iter().any(|n| n.contains("zeta")));
    }
}
