//! Fig. 11: run-to-run variability of each policy's chosen configuration.
//!
//! The same co-located set is run several times (different seeds for both
//! the measurement noise and the policy's stochastic choices); the metric
//! is the standard deviation, as % of the mean, of the mean-LC performance
//! of the chosen configuration. Shapes to reproduce: CLITE's variability
//! stays below ~7% while PARTIES / RAND+ / GENETIC often exceed 20% (their
//! randomness — trial-and-error order, uniform sampling, mutation — is
//! structural; CLITE's only residue is the probabilistic dropout choice).

use clite_gp::stats::{mean, std_dev};

use crate::mixes::Mix;
use crate::render::{pct1, Table};
use crate::runner::{run_policy, PolicyKind};
use crate::{ExpOptions, Report};
use clite_sim::workload::WorkloadId;

/// The two job sets the paper uses for the variability study.
#[must_use]
pub fn variability_mixes() -> Vec<(&'static str, Mix)> {
    vec![
        (
            "img-dnn+xapian+memcached",
            Mix::new(
                &[
                    (WorkloadId::ImgDnn, 0.3),
                    (WorkloadId::Xapian, 0.3),
                    (WorkloadId::Memcached, 0.3),
                ],
                &[],
            ),
        ),
        (
            "specjbb+masstree+xapian",
            Mix::new(
                &[
                    (WorkloadId::Specjbb, 0.3),
                    (WorkloadId::Masstree, 0.3),
                    (WorkloadId::Xapian, 0.3),
                ],
                &[],
            ),
        ),
    ]
}

/// Variability (std dev as % of mean) of a policy's best-sample LC
/// performance across `trials` re-seeded runs.
#[must_use]
pub fn variability(kind: PolicyKind, mix: &Mix, trials: usize, seed: u64) -> f64 {
    let perfs: Vec<f64> = (0..trials)
        .map(|i| {
            let outcome = run_policy(kind, mix, seed.wrapping_add(1000 * i as u64 + 1));
            outcome.best_lc_perf().unwrap_or(0.0)
        })
        .collect();
    let m = mean(&perfs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(&perfs) / m
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let trials = if opts.quick { 4 } else { 8 };
    let mut t = Table::new(vec!["Job set", "PARTIES", "RAND+", "GENETIC", "CLITE"]);
    for (name, mix) in variability_mixes() {
        let mut row = vec![name.to_owned()];
        for kind in PolicyKind::ONLINE_COMPARED {
            row.push(pct1(variability(kind, &mix, trials, opts.seed)));
        }
        t.row(row);
    }
    let mut body =
        format!("std dev as % of mean over {trials} re-seeded runs (lower is better)\n\n");
    body.push_str(&t.render());
    Report { id: "fig11", title: "Run-to-run variability of chosen configurations".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clite_variability_is_low() {
        let (_, mix) = &variability_mixes()[0];
        let v = variability(PolicyKind::Clite, mix, 3, 31);
        assert!(v < 0.15, "CLITE variability {v}");
    }
}
