//! Fig. 15: overhead and convergence.
//!
//! * **(a)** configurations sampled per policy as the number of co-located
//!   jobs grows. Shapes: RAND+/GENETIC highest (pre-set budgets), PARTIES
//!   lowest (stops at first QoS-meeting configuration), CLITE slightly
//!   above PARTIES but under ~30 samples, ORACLE orders of magnitude more
//!   (offline).
//! * **(b)** convergence over samples for 3 LC + fluidanimate: both
//!   policies reach all-QoS-met at similar times, but CLITE keeps
//!   improving the BG job's throughput afterwards while PARTIES stops at
//!   a suboptimal value.

use clite_policies::oracle::Oracle;

use crate::mixes::{fig15_mixes, fig15b_mix};
use crate::render::{pct, Table};
use crate::runner::{run_policy, PolicyKind};
use crate::{ExpOptions, Report};

/// Runs Fig. 15a.
#[must_use]
pub fn run_a(opts: &ExpOptions) -> Report {
    let mut t = Table::new(vec![
        "Mix",
        "Heracles",
        "PARTIES",
        "RAND+",
        "GENETIC",
        "CLITE",
        "ORACLE (offline)",
    ]);
    for (mi, mix) in fig15_mixes().into_iter().enumerate() {
        let seed = opts.seed.wrapping_add(13 * mi as u64);
        let mut row = vec![mix.name.clone()];
        for kind in [
            PolicyKind::Heracles,
            PolicyKind::Parties,
            PolicyKind::RandomPlus,
            PolicyKind::Genetic,
            PolicyKind::Clite,
        ] {
            let outcome = run_policy(kind, &mix, seed);
            row.push(outcome.samples_used().to_string());
        }
        let oracle = run_policy(PolicyKind::Oracle, &mix, seed);
        row.push(Oracle::evaluations(&oracle).to_string());
        t.row(row);
    }
    let mut body = String::from("configurations sampled before each policy stops\n\n");
    body.push_str(&t.render());
    Report { id: "fig15a", title: "Sampling overhead vs number of co-located jobs".into(), body }
}

/// Runs Fig. 15b.
#[must_use]
pub fn run_b(opts: &ExpOptions) -> Report {
    let mix = fig15b_mix();
    let mut body = format!("mix: {}\n", mix.name);
    for kind in [PolicyKind::Parties, PolicyKind::Clite] {
        let outcome = run_policy(kind, &mix, opts.seed);
        body.push_str(&format!(
            "\n{}: first all-QoS sample = {:?}, total samples = {}\n",
            kind.name(),
            outcome.samples_to_qos,
            outcome.samples_used()
        ));
        let mut t = Table::new(vec!["sample", "all QoS met", "fluidanimate perf", "best-so-far"]);
        let mut best_bg_so_far: f64 = 0.0;
        let step = (outcome.samples_used() / 15).max(1);
        for s in &outcome.samples {
            let bg = s.observation.mean_bg_perf().unwrap_or(0.0);
            if s.observation.all_qos_met() {
                best_bg_so_far = best_bg_so_far.max(bg);
            }
            if s.index % step == 0 || s.index + 1 == outcome.samples_used() {
                t.row(vec![
                    s.index.to_string(),
                    s.observation.all_qos_met().to_string(),
                    pct(bg),
                    pct(best_bg_so_far),
                ]);
            }
        }
        body.push_str(&t.render());
    }
    body.push_str(
        "\nReading: PARTIES stabilizes at the first QoS-meeting allocation;\n\
         CLITE keeps sampling and pushes the BG job's throughput higher\n\
         (paper Fig. 15b).\n",
    );
    Report { id: "fig15b", title: "Convergence: QoS first, then BG improvement".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clite_under_sampling_budget() {
        let mix = fig15b_mix();
        let outcome = run_policy(PolicyKind::Clite, &mix, 61);
        assert!(outcome.samples_used() <= 70, "CLITE used {}", outcome.samples_used());
    }

    #[test]
    fn clite_bg_exceeds_parties_bg() {
        // The Fig. 15b claim: CLITE's final BG throughput beats PARTIES's.
        let mix = fig15b_mix();
        let parties = run_policy(PolicyKind::Parties, &mix, 61);
        let clite = run_policy(PolicyKind::Clite, &mix, 61);
        let p = parties.best_bg_perf().unwrap_or(0.0);
        let c = clite.best_bg_perf().unwrap_or(0.0);
        assert!(c >= p * 0.95, "CLITE BG {c:.3} vs PARTIES BG {p:.3}");
    }
}
