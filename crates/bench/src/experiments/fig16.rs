//! Fig. 16: adaptivity to dynamic load changes.
//!
//! img-dnn and masstree fixed at 10% load, memcached stepping 10% → 20% →
//! 30%, fluidanimate as the BG job. CLITE's adaptive loop re-invokes the
//! search at each step; the trace shows the re-partitioning transients and
//! the BG job's stable throughput decreasing step over step (resources
//! migrate to memcached), exactly the paper's reading of the figure.
//!
//! The adaptive loop runs on a [`MemoizedTestbed`]: steady-state windows
//! re-observe the committed partition at an unchanged load vector, so
//! after the first window of each step every subsequent steady window is
//! replayed from the cache instead of re-simulated. Cache keys embed the
//! load vector, so memcached's steps invalidate exactly the entries they
//! should.

use clite::adaptive::{run_adaptive, AdaptiveConfig, Phase};
use clite::controller::CliteController;
use clite_sim::load::LoadSchedule;
use clite_sim::prelude::*;
use clite_sim::resource::ResourceKind;
use clite_sim::testbed::MemoizedTestbed;

use crate::render::{pct, Table};
use crate::{ExpOptions, Report};

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the adaptive run fails (treated as a harness bug).
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let step_s = if opts.quick { 200.0 } else { 300.0 };
    let duration = 3.0 * step_s;
    let jobs = vec![
        JobSpec::latency_critical_scheduled(
            WorkloadId::Memcached,
            LoadSchedule::Steps(vec![(0.0, 0.10), (step_s, 0.20), (2.0 * step_s, 0.30)]),
        ),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.10),
        JobSpec::latency_critical(WorkloadId::Masstree, 0.10),
        JobSpec::background(WorkloadId::Fluidanimate),
    ];
    let server = Server::new(ResourceCatalog::testbed(), jobs, opts.seed).unwrap();
    let mut testbed = MemoizedTestbed::new(server);
    let trace = run_adaptive(
        &CliteController::default(),
        &mut testbed,
        duration,
        AdaptiveConfig::default(),
    )
    .expect("adaptive run succeeds");

    let mut body = format!(
        "memcached load: 10% -> 20% (t={step_s:.0}s) -> 30% (t={:.0}s); invocations: {}\n\n",
        2.0 * step_s,
        trace.invocations
    );
    let mut t = Table::new(vec![
        "t (s)",
        "phase",
        "mem load",
        "mem cores",
        "mem b/w",
        "BG cores",
        "BG perf",
        "QoS",
    ]);
    let step = (trace.points.len() / 30).max(1);
    for (i, p) in trace.points.iter().enumerate() {
        if i % step != 0 && i + 1 != trace.points.len() {
            continue;
        }
        t.row(vec![
            format!("{:.0}", p.time_s),
            match p.phase {
                Phase::Search => "search".to_owned(),
                Phase::Steady => "steady".to_owned(),
            },
            pct(load_at(p.time_s, step_s)),
            p.partition.units(0, ResourceKind::Cores).to_string(),
            p.partition.units(0, ResourceKind::MemBandwidth).to_string(),
            p.partition.units(3, ResourceKind::Cores).to_string(),
            pct(p.observation.mean_bg_perf().unwrap_or(0.0)),
            if p.observation.all_qos_met() { "met".to_owned() } else { "VIOLATED".to_owned() },
        ]);
    }
    body.push_str(&t.render());
    body.push_str(&format!("\nsteady-state QoS fraction: {}\n", pct(trace.steady_qos_fraction())));
    body.push_str(&format!(
        "memoized windows: {} replayed / {} simulated (steady-state re-observations\n\
         of an unchanged partition + load are served from the cache)\n",
        testbed.hits(),
        testbed.misses()
    ));
    Report { id: "fig16", title: "Adaptation to dynamic memcached load steps".into(), body }
}

fn load_at(t: f64, step_s: f64) -> f64 {
    if t >= 2.0 * step_s {
        0.30
    } else if t >= step_s {
        0.20
    } else {
        0.10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shows_reinvocation_and_high_qos() {
        let r = run(&ExpOptions { quick: true, seed: 71 });
        assert!(r.body.contains("invocations"));
        assert!(r.body.contains("steady"));
        assert!(r.body.contains("replayed"), "memoization stats must be reported");
    }
}
