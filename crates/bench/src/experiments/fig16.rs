//! Fig. 16: adaptivity to dynamic load changes.
//!
//! img-dnn and masstree fixed at 10% load, memcached stepping 10% → 20% →
//! 30%, fluidanimate as the BG job. CLITE's adaptive loop re-invokes the
//! search at each step; the trace shows the re-partitioning transients and
//! the BG job's stable throughput decreasing step over step (resources
//! migrate to memcached), exactly the paper's reading of the figure.
//!
//! The adaptive loop runs on a [`MemoizedTestbed`]: steady-state windows
//! re-observe the committed partition at an unchanged load vector, so
//! after the first window of each step every subsequent steady window is
//! replayed from the cache instead of re-simulated. Cache keys embed the
//! load vector, so memcached's steps invalidate exactly the entries they
//! should.

use clite::adaptive::{run_adaptive, run_adaptive_with_store, AdaptiveConfig, Phase};
use clite::controller::CliteController;
use clite_sim::load::LoadSchedule;
use clite_sim::prelude::*;
use clite_sim::resource::ResourceKind;
use clite_sim::testbed::MemoizedTestbed;
use clite_store::ObservationStore;

use crate::render::{pct, Table};
use crate::runner::ambient_telemetry;
use crate::{ExpOptions, Report};

/// Runs the experiment. With `--store` the adaptive loop runs against a
/// persistent observation store, so each re-invocation (and each repeat of
/// the whole experiment against the same path) warm-starts from stored
/// samples of the same or a nearby-load mix.
///
/// # Panics
///
/// Panics if the adaptive run fails or the store cannot be opened
/// (treated as harness bugs).
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let step_s = if opts.quick { 200.0 } else { 300.0 };
    let duration = 3.0 * step_s;
    let jobs = vec![
        JobSpec::latency_critical_scheduled(
            WorkloadId::Memcached,
            LoadSchedule::Steps(vec![(0.0, 0.10), (step_s, 0.20), (2.0 * step_s, 0.30)]),
        ),
        JobSpec::latency_critical(WorkloadId::ImgDnn, 0.10),
        JobSpec::latency_critical(WorkloadId::Masstree, 0.10),
        JobSpec::background(WorkloadId::Fluidanimate),
    ];
    let server = Server::new(ResourceCatalog::testbed(), jobs, opts.seed).unwrap();
    let mut testbed = MemoizedTestbed::new(server);
    let mut store_line = None;
    let trace = match &opts.store {
        Some(path) => {
            let store = ObservationStore::open(path)
                .unwrap_or_else(|e| panic!("cannot open observation store {}: {e}", path.display()))
                .into_shared();
            let trace = run_adaptive_with_store(
                &CliteController::default(),
                &mut testbed,
                duration,
                AdaptiveConfig::default(),
                &store,
                &ambient_telemetry(),
            )
            .expect("adaptive run succeeds");
            let guard = store.lock().expect("observation store lock");
            let stats = guard.stats();
            store_line = Some(format!(
                "observation store: {} warm hits, {} misses, {} samples appended; \
                 {} mixes, {} records kept at {}\n",
                stats.hits,
                stats.misses,
                stats.appends,
                guard.mix_count(),
                guard.record_count(),
                path.display()
            ));
            trace
        }
        None => run_adaptive(
            &CliteController::default(),
            &mut testbed,
            duration,
            AdaptiveConfig::default(),
        )
        .expect("adaptive run succeeds"),
    };

    let mut body = format!(
        "memcached load: 10% -> 20% (t={step_s:.0}s) -> 30% (t={:.0}s); invocations: {}\n\n",
        2.0 * step_s,
        trace.invocations
    );
    let mut t = Table::new(vec![
        "t (s)",
        "phase",
        "mem load",
        "mem cores",
        "mem b/w",
        "BG cores",
        "BG perf",
        "QoS",
    ]);
    let step = (trace.points.len() / 30).max(1);
    for (i, p) in trace.points.iter().enumerate() {
        if i % step != 0 && i + 1 != trace.points.len() {
            continue;
        }
        t.row(vec![
            format!("{:.0}", p.time_s),
            match p.phase {
                Phase::Search => "search".to_owned(),
                Phase::Steady => "steady".to_owned(),
            },
            pct(load_at(p.time_s, step_s)),
            p.partition.units(0, ResourceKind::Cores).to_string(),
            p.partition.units(0, ResourceKind::MemBandwidth).to_string(),
            p.partition.units(3, ResourceKind::Cores).to_string(),
            pct(p.observation.mean_bg_perf().unwrap_or(0.0)),
            if p.observation.all_qos_met() { "met".to_owned() } else { "VIOLATED".to_owned() },
        ]);
    }
    body.push_str(&t.render());
    body.push_str(&format!("\nsteady-state QoS fraction: {}\n", pct(trace.steady_qos_fraction())));
    body.push_str(&format!(
        "memoized windows: {} replayed / {} simulated (steady-state re-observations\n\
         of an unchanged partition + load are served from the cache)\n",
        testbed.hits(),
        testbed.misses()
    ));
    if let Some(line) = store_line {
        body.push_str(&line);
    }
    Report { id: "fig16", title: "Adaptation to dynamic memcached load steps".into(), body }
}

fn load_at(t: f64, step_s: f64) -> f64 {
    if t >= 2.0 * step_s {
        0.30
    } else if t >= step_s {
        0.20
    } else {
        0.10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shows_reinvocation_and_high_qos() {
        let r = run(&ExpOptions { quick: true, seed: 71, ..ExpOptions::default() });
        assert!(r.body.contains("invocations"));
        assert!(r.body.contains("steady"));
        assert!(r.body.contains("replayed"), "memoization stats must be reported");
        assert!(!r.body.contains("observation store"), "no store line without --store");
    }

    #[test]
    fn store_option_warm_starts_repeat_runs() {
        let path =
            std::env::temp_dir().join(format!("clite_fig16_store_{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = ExpOptions {
            quick: true,
            seed: 71,
            store: Some(path.clone()),
            ..ExpOptions::default()
        };
        let _ = run(&opts);
        let r = run(&opts);
        let _ = std::fs::remove_file(&path);
        let line = r
            .body
            .lines()
            .find(|l| l.starts_with("observation store:"))
            .expect("store line in report");
        let hits: u64 = line
            .strip_prefix("observation store: ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .expect("hit count in store line");
        assert!(hits >= 1, "repeat run must warm-start from the persisted store: {line}");
    }
}
