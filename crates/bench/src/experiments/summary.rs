//! The paper's §5.2 headline claims, measured on this reproduction.
//!
//! * CLITE's LC performance within ~5% of ORACLE, >15% over PARTIES in
//!   many cases;
//! * CLITE variability < 7% vs often > 20% for the others;
//! * CLITE converges in < ~30 samples;
//! * CLITE BG performance ≥ 75% of ORACLE, competitors far lower.

use clite_gp::stats::mean;

use crate::experiments::fig11::{variability, variability_mixes};
use crate::mixes::{fig10_mix_a, fig10_mix_b, fig13_lc_mixes, Mix};
use crate::render::{pct1, Table};
use crate::runner::{run_and_eval, run_policy, PolicyKind};
use crate::{ExpOptions, Report};
use clite_sim::workload::WorkloadId;

/// Runs the summary.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let mut t = Table::new(vec!["Claim (paper §5.2)", "Paper", "Measured"]);

    // LC performance vs ORACLE and PARTIES over the Fig. 10 settings.
    let mut clite_vs_oracle = Vec::new();
    let mut parties_vs_oracle = Vec::new();
    let mut clite_samples = Vec::new();
    for (i, mix) in [fig10_mix_a(0.3), fig10_mix_a(0.6), fig10_mix_b(0.3), fig10_mix_b(0.6)]
        .into_iter()
        .enumerate()
    {
        let seed = opts.seed.wrapping_add(i as u64);
        let (_, _, oracle_lc) = run_and_eval(PolicyKind::Oracle, &mix, seed);
        let oracle = oracle_lc.unwrap_or(0.0);
        let clite = run_policy(PolicyKind::Clite, &mix, seed);
        let (_, _, clite_lc) = run_and_eval(PolicyKind::Clite, &mix, seed);
        let (_, _, parties_lc) = run_and_eval(PolicyKind::Parties, &mix, seed);
        if oracle > 0.0 {
            clite_vs_oracle.push(clite_lc.unwrap_or(0.0) / oracle);
            parties_vs_oracle.push(parties_lc.unwrap_or(0.0) / oracle);
        }
        clite_samples.push(clite.samples_used() as f64);
    }
    t.row(vec![
        "CLITE LC perf vs ORACLE".to_owned(),
        "within 5% (95-98%)".to_owned(),
        pct1(mean(&clite_vs_oracle)),
    ]);
    t.row(vec![
        "PARTIES LC perf vs ORACLE".to_owned(),
        "74-85%".to_owned(),
        pct1(mean(&parties_vs_oracle)),
    ]);

    // Variability.
    let trials = if opts.quick { 3 } else { 6 };
    let (_, vmix) = &variability_mixes()[0];
    let clite_var = variability(PolicyKind::Clite, vmix, trials, opts.seed);
    let parties_var = variability(PolicyKind::Parties, vmix, trials, opts.seed);
    t.row(vec!["CLITE variability".to_owned(), "< 7%".to_owned(), pct1(clite_var)]);
    t.row(vec![
        "PARTIES/RAND+/GENETIC variability".to_owned(),
        "often > 20%".to_owned(),
        pct1(parties_var),
    ]);

    // Convergence samples.
    t.row(vec![
        "CLITE samples to converge".to_owned(),
        "< 30".to_owned(),
        format!("{:.0}", mean(&clite_samples)),
    ]);

    // BG performance vs ORACLE, aggregated over the Fig. 13 settings
    // (both LC mixes, three BG workloads each).
    let mut clite_bg_ratios = Vec::new();
    let mut parties_bg_ratios = Vec::new();
    for (_, lc) in fig13_lc_mixes().iter() {
        for (bi, bg) in [WorkloadId::Blackscholes, WorkloadId::Streamcluster, WorkloadId::Canneal]
            .into_iter()
            .enumerate()
        {
            let mix = Mix::new(lc, &[bg]);
            // Same seeding as the fig13 experiment so the summary row is a
            // strict aggregate of that figure's cells.
            let seed = opts.seed.wrapping_add(100 + bi as u64);
            let (_, oracle_bg_opt, _) = run_and_eval(PolicyKind::Oracle, &mix, seed);
            let (clite_met, clite_bg, _) = run_and_eval(PolicyKind::Clite, &mix, seed);
            let (parties_met, parties_bg, _) = run_and_eval(PolicyKind::Parties, &mix, seed);
            let clite_bg = if clite_met { clite_bg.unwrap_or(0.0) } else { 0.0 };
            let parties_bg = if parties_met { parties_bg.unwrap_or(0.0) } else { 0.0 };
            // Best-known QoS-meeting reference (see fig13/fig14 notes).
            let reference = oracle_bg_opt.unwrap_or(0.0).max(clite_bg).max(parties_bg);
            if reference <= 0.0 {
                continue;
            }
            clite_bg_ratios.push(clite_bg / reference);
            parties_bg_ratios.push(parties_bg / reference);
        }
    }
    t.row(vec![
        "CLITE BG perf vs ORACLE".to_owned(),
        "> 75%".to_owned(),
        pct1(mean(&clite_bg_ratios)),
    ]);
    t.row(vec![
        "PARTIES BG perf vs ORACLE".to_owned(),
        "< 30-40%".to_owned(),
        pct1(mean(&parties_bg_ratios)),
    ]);

    Report { id: "summary", title: "Headline claims, paper vs measured".into(), body: t.render() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders_all_claims() {
        let r = run(&ExpOptions { quick: true, seed: 3, ..ExpOptions::default() });
        assert!(r.body.contains("CLITE LC perf vs ORACLE"));
        assert!(r.body.contains("variability"));
        assert!(r.body.contains("samples to converge"));
    }
}
