//! Fig. 13: BG performance for different BG jobs under 3-LC mixes.
//!
//! Every BG workload co-located with each of two 3-LC-job mixes; the value
//! is the BG job's throughput as % of ORACLE's for the same mix, with 0
//! where the policy failed to meet the three QoS targets at all. Shapes to
//! reproduce: CLITE above ~75% of ORACLE on average, every other technique
//! far lower (the paper reports <30% for the rest), occasional 0s for
//! PARTIES/RAND+/GENETIC.

use crate::mixes::{fig13_lc_mixes, Mix};
use crate::render::{pct, Table};
use crate::runner::{run_and_eval, PolicyKind};
use crate::{ExpOptions, Report};
use clite_sim::workload::WorkloadId;

/// Ground-truth BG perf of a policy's chosen partition (absolute,
/// isolation-relative); `None` when QoS is not met.
fn bg_perf(kind: PolicyKind, mix: &Mix, seed: u64) -> Option<f64> {
    let (qos_met, bg, _) = run_and_eval(kind, mix, seed);
    if qos_met {
        bg
    } else {
        None
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Report {
    let bg_set: &[WorkloadId] = if opts.quick {
        &[WorkloadId::Blackscholes, WorkloadId::Streamcluster, WorkloadId::Canneal]
    } else {
        &WorkloadId::BACKGROUND
    };
    let mut body = String::new();
    body.push_str("BG throughput as % of ORACLE (0% = QoS of the 3 LC jobs not met)\n");
    for (mix_name, lc) in fig13_lc_mixes() {
        body.push_str(&format!("\nLC mix: {mix_name}\n"));
        let mut t = Table::new(vec!["BG job", "PARTIES", "RAND+", "GENETIC", "CLITE"]);
        for (bi, &bg) in bg_set.iter().enumerate() {
            let mix = Mix::new(&lc, &[bg]);
            let seed = opts.seed.wrapping_add(100 + bi as u64);
            // Reference: best known QoS-meeting configuration (ORACLE's
            // hill climb can be locally suboptimal in 30 dimensions; the
            // paper's exhaustive ORACLE bounds every policy by definition).
            let perfs: Vec<f64> = PolicyKind::ONLINE_COMPARED
                .iter()
                .map(|&k| bg_perf(k, &mix, seed).unwrap_or(0.0))
                .collect();
            let oracle = bg_perf(PolicyKind::Oracle, &mix, seed)
                .unwrap_or(0.0)
                .max(perfs.iter().cloned().fold(0.0, f64::max));
            let mut row = vec![bg.name().to_owned()];
            for &perf in &perfs {
                row.push(if oracle > 0.0 { pct(perf / oracle) } else { "X".into() });
            }
            t.row(row);
        }
        body.push_str(&t.render());
    }
    Report { id: "fig13", title: "BG jobs' performance under 3-LC mixes".into(), body }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clite_feeds_bg_job_on_moderate_mix() {
        let (_, lc) = &fig13_lc_mixes()[0];
        let mix = Mix::new(lc, &[WorkloadId::Blackscholes]);
        let clite = bg_perf(PolicyKind::Clite, &mix, 51);
        assert!(clite.is_some(), "CLITE must meet the 3 QoS targets");
        assert!(clite.unwrap() > 0.1);
    }
}
