//! Shared experiment-execution helpers.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use clite::config::CliteConfig;
use clite::controller::CliteController;
use clite::trace::CliteOutcome;
use clite::CliteError;
use clite_faults::{FaultSpec, FaultStats, FaultyTestbed};
use clite_policies::clite_policy::ClitePolicy;
use clite_policies::genetic::Genetic;
use clite_policies::heracles::Heracles;
use clite_policies::oracle::Oracle;
use clite_policies::parties::Parties;
use clite_policies::policy::{Policy, PolicyOutcome};
use clite_policies::random_plus::RandomPlus;
use clite_sim::testbed::{MemoizedTestbed, ObservationCache, OracleTestbed};
use clite_store::SharedStore;
use clite_telemetry::{JsonlRecorder, Telemetry};

use crate::mixes::Mix;

/// Process-wide JSONL sink, installed once by `--telemetry-out`. Every
/// [`run_policy`] call then streams its events here; explicit callers can
/// still pass their own recorder through [`run_policy_with`].
static AMBIENT_SINK: OnceLock<JsonlRecorder> = OnceLock::new();

/// Installs a process-wide JSONL telemetry sink at `path` (truncating).
/// Subsequent [`run_policy`] calls stream their events to it. Idempotent
/// only in the sense that a second install is rejected.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be created, or
/// [`io::ErrorKind::AlreadyExists`] if a sink was installed before.
pub fn install_jsonl_sink(path: impl AsRef<Path>) -> io::Result<()> {
    let recorder = JsonlRecorder::create(path)?;
    AMBIENT_SINK
        .set(recorder)
        .map_err(|_| io::Error::new(io::ErrorKind::AlreadyExists, "telemetry sink already set"))
}

/// The process-wide sink, if [`install_jsonl_sink`] has run.
#[must_use]
pub fn ambient_sink() -> Option<&'static JsonlRecorder> {
    AMBIENT_SINK.get()
}

/// A fresh telemetry context over the ambient sink — disabled when no
/// sink is installed. Experiments that drive instrumented APIs directly
/// (rather than through [`run_policy`]) use this to stay observable
/// under `--telemetry-out`.
#[must_use]
pub fn ambient_telemetry() -> Telemetry<'static> {
    match ambient_sink() {
        Some(sink) => Telemetry::new(sink),
        None => Telemetry::disabled(),
    }
}

/// The policies an experiment can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Heracles (protects one LC job).
    Heracles,
    /// PARTIES (FSM coordinate descent).
    Parties,
    /// RAND+ (filtered random sampling).
    RandomPlus,
    /// GENETIC (crossover + mutation).
    Genetic,
    /// CLITE (this paper).
    Clite,
    /// ORACLE (offline upper bound).
    Oracle,
}

impl PolicyKind {
    /// The paper's presentation order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Heracles,
        PolicyKind::Parties,
        PolicyKind::RandomPlus,
        PolicyKind::Genetic,
        PolicyKind::Clite,
        PolicyKind::Oracle,
    ];

    /// The four policies Fig. 10/11 compare (online, multi-LC-aware).
    pub const ONLINE_COMPARED: [PolicyKind; 4] =
        [PolicyKind::Parties, PolicyKind::RandomPlus, PolicyKind::Genetic, PolicyKind::Clite];

    /// Paper name of the policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Heracles => "Heracles",
            PolicyKind::Parties => "PARTIES",
            PolicyKind::RandomPlus => "RAND+",
            PolicyKind::Genetic => "GENETIC",
            PolicyKind::Clite => "CLITE",
            PolicyKind::Oracle => "ORACLE",
        }
    }

    /// Instantiates the policy, seeded deterministically, for any testbed
    /// backend (the [`OracleTestbed`] bound comes from ORACLE's need for
    /// ground-truth access).
    #[must_use]
    pub fn build<T: OracleTestbed + 'static>(self, seed: u64) -> Box<dyn Policy<T>> {
        match self {
            PolicyKind::Heracles => Box::new(Heracles::default()),
            PolicyKind::Parties => Box::new(Parties::default().with_seed(seed)),
            PolicyKind::RandomPlus => Box::new(RandomPlus::default().with_seed(seed)),
            PolicyKind::Genetic => Box::new(Genetic::default().with_seed(seed)),
            PolicyKind::Clite => Box::new(ClitePolicy::new(CliteConfig::default().with_seed(seed))),
            PolicyKind::Oracle => Box::new(Oracle::default()),
        }
    }
}

/// Runs `kind` on a fresh server hosting `mix`.
///
/// Streams telemetry to the ambient sink when one is installed (see
/// [`install_jsonl_sink`]); each call gets a fresh phase timer, so phase
/// timings stay per-run while counters accumulate across runs.
///
/// # Panics
///
/// Panics on internal policy failures (experiments treat those as bugs).
#[must_use]
pub fn run_policy(kind: PolicyKind, mix: &Mix, seed: u64) -> PolicyOutcome {
    run_policy_with(kind, mix, seed, &ambient_telemetry())
}

/// [`run_policy`] with an explicit telemetry context.
///
/// # Panics
///
/// Panics on internal policy failures (experiments treat those as bugs).
#[must_use]
pub fn run_policy_with(
    kind: PolicyKind,
    mix: &Mix,
    seed: u64,
    telemetry: &Telemetry<'_>,
) -> PolicyOutcome {
    let mut server = mix.server(seed);
    kind.build(seed ^ 0x9E37_79B9)
        .run_with(&mut server, telemetry)
        .unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.name(), mix.name))
}

/// Runs CLITE on a fresh server hosting `mix` against a shared
/// observation store: the search warm-starts from any stored samples of
/// this (or a nearby-load) mix and appends everything it evaluates back.
/// Seeding matches [`run_policy`], so a storeless CLITE run on the same
/// mix and seed is the cold baseline for this call.
///
/// # Panics
///
/// Panics on internal controller failures (experiments treat those as
/// bugs).
#[must_use]
pub fn run_clite_with_store(
    mix: &Mix,
    seed: u64,
    store: &SharedStore,
    telemetry: &Telemetry<'_>,
) -> PolicyOutcome {
    let mut server = mix.server(seed);
    let controller = CliteController::new(CliteConfig::default().with_seed(seed ^ 0x9E37_79B9));
    let outcome = controller
        .run_with_store(&mut server, store, telemetry)
        .unwrap_or_else(|e| panic!("CLITE (stored) failed on {}: {e}", mix.name));
    clite_outcome_to_policy(&outcome)
}

/// Converts a controller [`CliteOutcome`] into the policy-comparison
/// [`PolicyOutcome`] shape the experiments and CLI render.
#[must_use]
pub fn clite_outcome_to_policy(outcome: &CliteOutcome) -> PolicyOutcome {
    let samples: Vec<clite_policies::policy::PolicySample> = outcome
        .samples
        .iter()
        .map(|r| clite_policies::policy::PolicySample {
            index: r.index,
            partition: r.partition.clone(),
            observation: r.observation.clone(),
            score: r.score.value,
        })
        .collect();
    PolicyOutcome {
        policy: "CLITE".to_owned(),
        best_partition: outcome.best_partition.clone(),
        best_score: outcome.best_score,
        qos_met: outcome.qos_met(),
        samples_to_qos: outcome.samples_to_qos,
        samples,
        gave_up: !outcome.infeasible_jobs.is_empty(),
    }
}

/// What a chaos-mode CLITE run produced: either a completed (possibly
/// retried and quarantine-filtered) search, or a graceful degradation to
/// the controller's safe fallback partition. Panicking is reserved for
/// genuine harness bugs — injected faults never panic.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The completed search (`None` when the run degraded).
    pub outcome: Option<PolicyOutcome>,
    /// Samples the outlier guard quarantined (charged to the window
    /// budget, never entering the surrogate or the store).
    pub quarantined: usize,
    /// The re-enforced fallback partition and the fault that forced it
    /// (`None` when the search completed).
    pub fallback: Option<(clite_sim::alloc::Partition, String)>,
    /// Faults the decorator actually injected.
    pub faults: FaultStats,
    /// Whether the injected node crash fired.
    pub crashed: bool,
}

/// Runs the chaos-hardened CLITE controller on `mix` behind a
/// [`FaultyTestbed`] injecting `spec`. Seeding matches [`run_policy`]
/// (controller seed `seed ^ 0x9E37_79B9`; the fault stream is seeded by
/// `seed` itself), so a `FaultSpec::none()` chaos run is byte-identical
/// to the plain CLITE run on the same mix and seed.
///
/// # Panics
///
/// Panics on internal controller failures other than graceful
/// degradation (experiments treat those as bugs).
#[must_use]
pub fn run_clite_chaos(
    mix: &Mix,
    seed: u64,
    spec: &FaultSpec,
    store: Option<&SharedStore>,
    telemetry: &Telemetry<'_>,
) -> ChaosOutcome {
    let mut server = FaultyTestbed::new(mix.server(seed), spec.clone(), seed);
    let controller =
        CliteController::new(CliteConfig::default().with_seed(seed ^ 0x9E37_79B9).hardened());
    let result = match store {
        Some(s) => controller.run_with_store(&mut server, s, telemetry),
        None => controller.run_with(&mut server, telemetry),
    };
    let (outcome, quarantined, fallback) = match result {
        Ok(o) => {
            let q = o.quarantined;
            (Some(clite_outcome_to_policy(&o)), q, None)
        }
        Err(CliteError::Degraded { fallback, reason }) => {
            (None, 0, Some((fallback, reason.to_string())))
        }
        Err(e) => panic!("CLITE (chaos) failed on {}: {e}", mix.name),
    };
    ChaosOutcome {
        outcome,
        quarantined,
        fallback,
        faults: server.stats(),
        crashed: server.crashed(),
    }
}

/// [`run_policy`] on a [`MemoizedTestbed`] sharing `cache` with other
/// runs: observations of a (job set, load, partition) combination already
/// in the cache are replayed instead of re-simulated.
///
/// Sharing replayed *noisy* observations across runs freezes the noise
/// they were first drawn with, so a shared cache is only sound for
/// sweeps whose runs are meant to agree on ground truth — ORACLE sweeps
/// being the canonical case (its evaluations are noise-free, so caching
/// loses nothing). Pass a fresh cache per run when independence matters.
///
/// # Panics
///
/// Panics on internal policy failures (experiments treat those as bugs).
#[must_use]
pub fn run_policy_memoized(
    kind: PolicyKind,
    mix: &Mix,
    seed: u64,
    cache: &Arc<Mutex<ObservationCache>>,
) -> PolicyOutcome {
    let mut testbed = MemoizedTestbed::with_shared_cache(mix.server(seed), Arc::clone(cache));
    kind.build(seed ^ 0x9E37_79B9)
        .run_with(&mut testbed, &ambient_telemetry())
        .unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.name(), mix.name))
}

/// Ground-truth (noise-free) evaluation of a policy's chosen partition on
/// a fresh server hosting `mix`: the steady-state outcome the operator
/// would measure after the controller settles, free of the winner's-curse
/// bias of selecting by noisy samples.
#[must_use]
pub fn final_eval(
    mix: &Mix,
    outcome: &PolicyOutcome,
    seed: u64,
) -> clite_sim::metrics::Observation {
    let server = mix.server(seed);
    server.ground_truth(&outcome.best_partition)
}

/// Runs `kind` on `mix` and ground-truth-evaluates its chosen partition.
/// Returns `(qos_met, mean_bg_perf, mean_lc_perf)`.
#[must_use]
pub fn run_and_eval(kind: PolicyKind, mix: &Mix, seed: u64) -> (bool, Option<f64>, Option<f64>) {
    let outcome = run_policy(kind, mix, seed);
    let obs = final_eval(mix, &outcome, seed);
    (obs.all_qos_met(), obs.mean_bg_perf(), obs.mean_lc_perf())
}

/// Finds the maximum load (from `loads`, descending) of a *probe job*
/// at which `kind` still meets every LC job's QoS. `make_mix` builds the
/// mix for a candidate probe load. Returns `None` if no load works
/// (the paper's `X`).
#[must_use]
pub fn max_supported_load(
    kind: PolicyKind,
    loads: &[f64],
    seed: u64,
    make_mix: impl Fn(f64) -> Mix,
) -> Option<f64> {
    let mut sorted: Vec<f64> = loads.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    for (i, &load) in sorted.iter().enumerate() {
        let mix = make_mix(load);
        let (qos_met, _, _) = run_and_eval(kind, &mix, seed.wrapping_add(i as u64));
        if qos_met {
            return Some(load);
        }
    }
    None
}

/// The standard load grid (10%..=90% in `step` increments, as fractions).
#[must_use]
pub fn load_grid(step: f64) -> Vec<f64> {
    let mut out = Vec::new();
    let mut l: f64 = 0.1;
    while l < 0.95 {
        out.push((l * 100.0).round() / 100.0);
        l += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::fig7_mix;

    #[test]
    fn load_grids() {
        assert_eq!(load_grid(0.2), vec![0.1, 0.3, 0.5, 0.7, 0.9]);
        assert_eq!(load_grid(0.4), vec![0.1, 0.5, 0.9]);
    }

    #[test]
    fn run_policy_with_streams_events() {
        use clite_telemetry::MemoryRecorder;

        let sink = MemoryRecorder::new();
        let telemetry = Telemetry::new(&sink);
        let mix = fig7_mix(0.2, 0.2, 0.2);
        let outcome = run_policy_with(PolicyKind::Clite, &mix, 3, &telemetry);
        assert!(outcome.samples_used() > 0);
        assert!(sink.count_kind("bootstrap_sample") > 0);
        assert_eq!(sink.count_kind("terminated"), 1);
        let report = telemetry.report();
        assert!(report.profiled_seconds() <= report.wall_seconds);
    }

    #[test]
    fn stored_rerun_warm_starts() {
        use clite_store::ObservationStore;

        let mix = fig7_mix(0.2, 0.2, 0.2);
        let store = ObservationStore::in_memory().into_shared();
        let cold = run_clite_with_store(&mix, 3, &store, &Telemetry::disabled());
        let warm = run_clite_with_store(&mix, 3, &store, &Telemetry::disabled());
        let stats = store.lock().unwrap().stats();
        assert_eq!(stats.misses, 1, "first run is cold");
        assert!(stats.hits >= 1, "second run must warm-start");
        assert!(warm.qos_met);
        assert!(
            warm.samples_used() < cold.samples_used(),
            "warm {} vs cold {}",
            warm.samples_used(),
            cold.samples_used()
        );
    }

    #[test]
    fn policies_build_and_name() {
        for k in PolicyKind::ALL {
            assert!(!k.name().is_empty());
            let _ = k.build::<clite_sim::server::Server>(1);
        }
    }

    #[test]
    fn memoized_rerun_reuses_observations() {
        let mix = fig7_mix(0.2, 0.2, 0.2);
        let cache = ObservationCache::shared();
        let a = run_policy_memoized(PolicyKind::Oracle, &mix, 3, &cache);
        let misses_after_first = cache.lock().unwrap().misses();
        let b = run_policy_memoized(PolicyKind::Oracle, &mix, 4, &cache);
        assert_eq!(a.best_partition, b.best_partition, "ORACLE ignores server noise");
        let guard = cache.lock().unwrap();
        assert_eq!(
            guard.misses(),
            misses_after_first,
            "second ORACLE sweep must be answered entirely from the cache"
        );
        assert!(guard.hits() > 0);
    }

    #[test]
    fn max_supported_load_descends() {
        // ORACLE on an easy pair of fixed loads: highest feasible probe
        // load should be found.
        let max = max_supported_load(PolicyKind::Oracle, &[0.1, 0.5], 1, |l| fig7_mix(l, 0.1, 0.1));
        assert!(max.is_some());
    }
}
