//! Argument parsing for the `colocate` CLI (hand-rolled; the workspace
//! stays dependency-light).
//!
//! Grammar:
//!
//! ```text
//! colocate run   [--policy NAME] [--seed N] [--telemetry-out PATH] [--store PATH] [--faults SPEC] JOB...
//! colocate load  [--policy NAME] [--seed N] [--trace NAME] [--windows N] [--queries N]
//!                [--threads N] [--report PATH] [--telemetry-out PATH] JOB...
//! colocate sweep [--policy NAME] [--seed N] [--telemetry-out PATH] [--store PATH] --sweep JOB JOB...
//! colocate qos   [WORKLOAD...]
//! JOB := <workload>[:<load-percent>]       e.g. memcached:40, blackscholes
//! SPEC := none | default | key=value[,key=value...]   (see clite-faults)
//! ```
//!
//! A job with a load is latency-critical; one without is background.

use std::path::PathBuf;

use clite_cluster::scheduler::AdmissionMode;
use clite_faults::FaultSpec;
use clite_load::{LoadConfig, TraceKind};
use clite_sim::prelude::*;

use crate::runner::PolicyKind;

/// Which candidate-ordering policy `colocate fleet` serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementChoice {
    /// Least-loaded heuristic ordering (the default).
    #[default]
    Heuristic,
    /// Trained pairwise ranking model ([`clite_learn`]); with no
    /// `--model` the zero model reproduces the heuristic order.
    Learned,
}

impl PlacementChoice {
    /// Parses a `--placement` value.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] for anything but `heuristic` / `learned`.
    pub fn parse(name: &str) -> Result<Self, ParseError> {
        match name {
            "heuristic" => Ok(Self::Heuristic),
            "learned" => Ok(Self::Learned),
            other => Err(ParseError(format!(
                "unknown placement '{other}' (expected 'heuristic' or 'learned')"
            ))),
        }
    }
}

/// A parsed `colocate` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one policy on one mix.
    Run {
        /// Policy to run.
        policy: PolicyKind,
        /// RNG seed.
        seed: u64,
        /// JSONL telemetry destination, if requested.
        telemetry_out: Option<PathBuf>,
        /// Observation-store path (CLITE only): persist samples and
        /// warm-start repeat searches.
        store: Option<PathBuf>,
        /// Chaos mode (CLITE only): inject this fault plan into the
        /// testbed and report how the controller degrades.
        faults: Option<FaultSpec>,
        /// The co-located jobs.
        jobs: Vec<JobSpec>,
    },
    /// Drive a searched partition through a load trace and report
    /// per-job latency percentiles against the equal-share baseline.
    Load {
        /// Policy whose partition is load-tested (against equal-share).
        policy: PolicyKind,
        /// Harness configuration (trace, windows, queries, threads, seed).
        config: LoadConfig,
        /// Versioned JSON report destination, if requested.
        report: Option<PathBuf>,
        /// JSONL telemetry destination, if requested.
        telemetry_out: Option<PathBuf>,
        /// The co-located jobs.
        jobs: Vec<JobSpec>,
    },
    /// Sweep one job's load from 10% to 90% against a fixed rest-of-mix.
    Sweep {
        /// Policy to run.
        policy: PolicyKind,
        /// RNG seed.
        seed: u64,
        /// JSONL telemetry destination, if requested.
        telemetry_out: Option<PathBuf>,
        /// Observation-store path (CLITE only), shared across the sweep's
        /// steps.
        store: Option<PathBuf>,
        /// The swept job (its parsed load is ignored).
        swept: JobSpec,
        /// The fixed jobs.
        fixed: Vec<JobSpec>,
    },
    /// Run the fleet service over a generated event trace.
    Fleet {
        /// Initial fleet size.
        nodes: usize,
        /// Events in the generated trace.
        events: usize,
        /// Trace + probe seed.
        seed: u64,
        /// Observation-store shard count.
        shards: usize,
        /// Serial or threaded admission probing.
        admission: AdmissionMode,
        /// Mean-field template re-solve period in ticks (0 disables).
        epoch: u64,
        /// Candidate nodes probed per admission (local refinement cap).
        probe_limit: usize,
        /// Crash/fault plan injected into every node's testbeds.
        faults: Option<FaultSpec>,
        /// Sharded observation-store path (`<path>.shard<i>` per shard);
        /// in-memory when absent.
        store: Option<PathBuf>,
        /// Candidate-ordering policy: heuristic (least-loaded) or learned.
        placement: PlacementChoice,
        /// Ranking-model path for learned placement; the zero model
        /// (heuristic-fallback order) when absent or unloadable.
        model: Option<PathBuf>,
        /// Durability directory (event journal + checkpoints); volatile
        /// when absent.
        journal: Option<PathBuf>,
        /// Resume from the journal directory instead of starting fresh.
        recover: bool,
        /// Kill the run after journaling the k-th event (demo/test hook
        /// for the recovery protocol; requires `--journal`).
        kill_after: Option<u64>,
    },
    /// Train the placement ranking model over simulator rollouts and save
    /// it as a checksummed model file.
    Train {
        /// Model destination.
        out: PathBuf,
        /// Rollout + SGD seed.
        seed: u64,
        /// SGD epochs.
        epochs: u32,
        /// Rollout groups (one incoming job × candidate set each).
        groups: usize,
    },
    /// Print QoS targets for LC workloads (all of them if none named).
    Qos {
        /// Workloads to describe.
        workloads: Vec<WorkloadId>,
    },
    /// Print usage.
    Help,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses one `workload[:load%]` job token.
///
/// # Errors
///
/// Returns [`ParseError`] for unknown workloads, malformed loads, loads
/// outside (0, 100], or an LC workload without a load / BG workload with
/// one.
pub fn parse_job(token: &str) -> Result<JobSpec, ParseError> {
    let (name, load) = match token.split_once(':') {
        Some((n, l)) => {
            let pct: f64 =
                l.parse().map_err(|_| ParseError(format!("bad load '{l}' in '{token}'")))?;
            if !(pct > 0.0 && pct <= 100.0) {
                return Err(ParseError(format!("load {pct}% outside (0, 100] in '{token}'")));
            }
            (n, Some(pct / 100.0))
        }
        None => (token, None),
    };
    let workload = WorkloadId::from_name(name)
        .ok_or_else(|| ParseError(format!("unknown workload '{name}'")))?;
    match (workload.class(), load) {
        (JobClass::LatencyCritical, Some(l)) => Ok(JobSpec::latency_critical(workload, l)),
        (JobClass::LatencyCritical, None) => Err(ParseError(format!(
            "latency-critical workload '{name}' needs a load, e.g. '{name}:40'"
        ))),
        (JobClass::Background, None) => Ok(JobSpec::background(workload)),
        (JobClass::Background, Some(_)) => {
            Err(ParseError(format!("background workload '{name}' takes no load")))
        }
    }
}

/// Parses a policy name (paper spelling, case-insensitive).
///
/// # Errors
///
/// Returns [`ParseError`] for unknown policies.
pub fn parse_policy(name: &str) -> Result<PolicyKind, ParseError> {
    PolicyKind::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name)).ok_or_else(|| {
        ParseError(format!(
            "unknown policy '{name}' (expected one of: {})",
            PolicyKind::ALL.map(|k| k.name()).join(", ")
        ))
    })
}

/// Parses the full argument list (without the program name).
///
/// # Errors
///
/// Returns [`ParseError`] on any malformed input.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter().peekable();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "qos" => {
            let mut workloads = Vec::new();
            for tok in it {
                let w = WorkloadId::from_name(tok)
                    .ok_or_else(|| ParseError(format!("unknown workload '{tok}'")))?;
                workloads.push(w);
            }
            Ok(Command::Qos { workloads })
        }
        "load" => {
            let mut policy = PolicyKind::Clite;
            let mut config = LoadConfig::default();
            let mut report: Option<PathBuf> = None;
            let mut telemetry_out: Option<PathBuf> = None;
            let mut jobs: Vec<JobSpec> = Vec::new();
            while let Some(tok) = it.next() {
                match tok.as_str() {
                    "--policy" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--policy requires a value".into()))?;
                        policy = parse_policy(v)?;
                    }
                    "--seed" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--seed requires a value".into()))?;
                        config.seed =
                            v.parse().map_err(|_| ParseError(format!("bad seed '{v}'")))?;
                    }
                    "--trace" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--trace requires a name".into()))?;
                        config.trace = TraceKind::parse(v).ok_or_else(|| {
                            ParseError(format!(
                                "unknown trace '{v}' (expected one of: {})",
                                TraceKind::ALL.map(TraceKind::name).join(", ")
                            ))
                        })?;
                    }
                    "--windows" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--windows requires a count".into()))?;
                        config.windows =
                            v.parse().map_err(|_| ParseError(format!("bad window count '{v}'")))?;
                        if config.windows == 0 {
                            return Err(ParseError("--windows must be at least 1".into()));
                        }
                    }
                    "--queries" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--queries requires a count".into()))?;
                        config.queries_per_window =
                            v.parse().map_err(|_| ParseError(format!("bad query count '{v}'")))?;
                    }
                    "--threads" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--threads requires a count".into()))?;
                        config.threads =
                            v.parse().map_err(|_| ParseError(format!("bad thread count '{v}'")))?;
                        if config.threads == 0 {
                            return Err(ParseError("--threads must be at least 1".into()));
                        }
                    }
                    "--report" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--report requires a path".into()))?;
                        report = Some(PathBuf::from(v));
                    }
                    "--telemetry-out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--telemetry-out requires a path".into()))?;
                        telemetry_out = Some(PathBuf::from(v));
                    }
                    other if other.starts_with('-') => {
                        return Err(ParseError(format!("unknown flag '{other}'")));
                    }
                    other => jobs.push(parse_job(other)?),
                }
            }
            if jobs.is_empty() {
                return Err(ParseError("load needs at least one job".into()));
            }
            Ok(Command::Load { policy, config, report, telemetry_out, jobs })
        }
        "fleet" => {
            let mut nodes = 64usize;
            let mut events = 48usize;
            let mut seed = 42u64;
            let mut shards = 8usize;
            let mut admission = AdmissionMode::Serial;
            let mut epoch = 8u64;
            let mut probe_limit = 4usize;
            let mut faults: Option<FaultSpec> = None;
            let mut store: Option<PathBuf> = None;
            let mut placement = PlacementChoice::default();
            let mut model: Option<PathBuf> = None;
            let mut journal: Option<PathBuf> = None;
            let mut recover = false;
            let mut kill_after: Option<u64> = None;
            while let Some(tok) = it.next() {
                match tok.as_str() {
                    "--nodes" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--nodes requires a count".into()))?;
                        nodes =
                            v.parse().map_err(|_| ParseError(format!("bad node count '{v}'")))?;
                        if nodes == 0 {
                            return Err(ParseError("--nodes must be at least 1".into()));
                        }
                    }
                    "--events" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--events requires a count".into()))?;
                        events =
                            v.parse().map_err(|_| ParseError(format!("bad event count '{v}'")))?;
                    }
                    "--seed" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--seed requires a value".into()))?;
                        seed = v.parse().map_err(|_| ParseError(format!("bad seed '{v}'")))?;
                    }
                    "--shards" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--shards requires a count".into()))?;
                        shards =
                            v.parse().map_err(|_| ParseError(format!("bad shard count '{v}'")))?;
                        if shards == 0 {
                            return Err(ParseError("--shards must be at least 1".into()));
                        }
                    }
                    "--threaded" => admission = AdmissionMode::Threaded,
                    "--epoch" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--epoch requires a tick count".into()))?;
                        epoch = v.parse().map_err(|_| ParseError(format!("bad epoch '{v}'")))?;
                    }
                    "--probe-limit" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--probe-limit requires a count".into()))?;
                        probe_limit =
                            v.parse().map_err(|_| ParseError(format!("bad probe limit '{v}'")))?;
                        if probe_limit == 0 {
                            return Err(ParseError("--probe-limit must be at least 1".into()));
                        }
                    }
                    "--faults" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--faults requires a spec".into()))?;
                        faults = Some(FaultSpec::parse(v).map_err(|e| ParseError(e.to_string()))?);
                    }
                    "--store" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--store requires a path".into()))?;
                        store = Some(PathBuf::from(v));
                    }
                    "--placement" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--placement requires a value".into()))?;
                        placement = PlacementChoice::parse(v)?;
                    }
                    "--model" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--model requires a path".into()))?;
                        model = Some(PathBuf::from(v));
                    }
                    "--journal" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--journal requires a directory".into()))?;
                        journal = Some(PathBuf::from(v));
                    }
                    "--recover" => recover = true,
                    "--kill-after" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--kill-after requires an event".into()))?;
                        kill_after = Some(
                            v.parse().map_err(|_| ParseError(format!("bad kill event '{v}'")))?,
                        );
                    }
                    other => {
                        return Err(ParseError(format!("unknown fleet argument '{other}'")));
                    }
                }
            }
            if model.is_some() && placement != PlacementChoice::Learned {
                return Err(ParseError("--model requires --placement learned".into()));
            }
            if journal.is_none() && (recover || kill_after.is_some()) {
                return Err(ParseError("--recover/--kill-after require --journal DIR".into()));
            }
            Ok(Command::Fleet {
                nodes,
                events,
                seed,
                shards,
                admission,
                epoch,
                probe_limit,
                faults,
                store,
                placement,
                model,
                journal,
                recover,
                kill_after,
            })
        }
        "train" => {
            let mut out = PathBuf::from("results/placement.model");
            let mut seed = 42u64;
            let mut epochs = 12u32;
            let mut groups = 24usize;
            while let Some(tok) = it.next() {
                match tok.as_str() {
                    "--out" => {
                        let v =
                            it.next().ok_or_else(|| ParseError("--out requires a path".into()))?;
                        out = PathBuf::from(v);
                    }
                    "--seed" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--seed requires a value".into()))?;
                        seed = v.parse().map_err(|_| ParseError(format!("bad seed '{v}'")))?;
                    }
                    "--epochs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--epochs requires a count".into()))?;
                        epochs =
                            v.parse().map_err(|_| ParseError(format!("bad epoch count '{v}'")))?;
                        if epochs == 0 {
                            return Err(ParseError("--epochs must be at least 1".into()));
                        }
                    }
                    "--groups" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--groups requires a count".into()))?;
                        groups =
                            v.parse().map_err(|_| ParseError(format!("bad group count '{v}'")))?;
                        if groups < 2 {
                            return Err(ParseError("--groups must be at least 2".into()));
                        }
                    }
                    other => {
                        return Err(ParseError(format!("unknown train argument '{other}'")));
                    }
                }
            }
            Ok(Command::Train { out, seed, epochs, groups })
        }
        "run" | "sweep" => {
            let mut policy = PolicyKind::Clite;
            let mut seed = 42u64;
            let mut telemetry_out: Option<PathBuf> = None;
            let mut store: Option<PathBuf> = None;
            let mut faults: Option<FaultSpec> = None;
            let mut jobs: Vec<JobSpec> = Vec::new();
            let mut swept: Option<JobSpec> = None;
            while let Some(tok) = it.next() {
                match tok.as_str() {
                    "--telemetry-out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--telemetry-out requires a path".into()))?;
                        telemetry_out = Some(PathBuf::from(v));
                    }
                    "--store" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--store requires a path".into()))?;
                        store = Some(PathBuf::from(v));
                    }
                    "--policy" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--policy requires a value".into()))?;
                        policy = parse_policy(v)?;
                    }
                    "--seed" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--seed requires a value".into()))?;
                        seed = v.parse().map_err(|_| ParseError(format!("bad seed '{v}'")))?;
                    }
                    "--faults" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--faults requires a spec".into()))?;
                        faults = Some(FaultSpec::parse(v).map_err(|e| ParseError(e.to_string()))?);
                    }
                    "--sweep" => {
                        let v = it
                            .next()
                            .ok_or_else(|| ParseError("--sweep requires a job token".into()))?;
                        swept = Some(parse_job(v)?);
                    }
                    other if other.starts_with('-') => {
                        return Err(ParseError(format!("unknown flag '{other}'")));
                    }
                    other => jobs.push(parse_job(other)?),
                }
            }
            if sub == "run" {
                if jobs.is_empty() {
                    return Err(ParseError("run needs at least one job".into()));
                }
                Ok(Command::Run { policy, seed, telemetry_out, store, faults, jobs })
            } else {
                if faults.is_some() {
                    return Err(ParseError("--faults only supports the run subcommand".into()));
                }
                let swept = swept
                    .ok_or_else(|| ParseError("sweep needs --sweep <workload>:<load>".into()))?;
                Ok(Command::Sweep { policy, seed, telemetry_out, store, swept, fixed: jobs })
            }
        }
        other => Err(ParseError(format!("unknown subcommand '{other}'"))),
    }
}

/// The usage text printed by `colocate help`.
#[must_use]
pub fn usage() -> &'static str {
    "colocate — co-locate jobs on a simulated server with a scheduling policy

USAGE:
  colocate run   [--policy NAME] [--seed N] [--telemetry-out PATH] [--store PATH] [--faults SPEC] JOB...
  colocate load  [--policy NAME] [--seed N] [--trace NAME] [--windows N] [--queries N]
                 [--threads N] [--report PATH] [--telemetry-out PATH] JOB...
  colocate sweep [--policy NAME] [--seed N] [--telemetry-out PATH] [--store PATH] --sweep JOB JOB...
  colocate fleet [--nodes N] [--events N] [--seed N] [--shards N] [--threaded]
                 [--epoch N] [--probe-limit N] [--faults SPEC] [--store PATH]
                 [--placement heuristic|learned] [--model PATH]
                 [--journal DIR] [--recover] [--kill-after K]
  colocate train [--out PATH] [--seed N] [--epochs N] [--groups N]
  colocate qos   [WORKLOAD...]

JOB:
  <workload>:<load-percent>   latency-critical, e.g. memcached:40
  <workload>                  background, e.g. blackscholes

POLICIES:
  Heracles, PARTIES, RAND+, GENETIC, CLITE (default), ORACLE

TELEMETRY:
  --telemetry-out PATH writes one JSON event per line to PATH and prints a
  Prometheus metrics snapshot plus a search-phase overhead report on exit.

STORE:
  --store PATH (CLITE only) appends every evaluated sample to a crash-safe
  observation log at PATH and warm-starts repeat searches on the same (or
  nearby-load) mix from it. The run prints 'store: hit' or 'store: miss'.

LOAD (latency percentiles under a trace):
  colocate load searches a partition with --policy, enforces it, then fires
  simulated queries through a client pool while the trace (steady, diurnal,
  bursty) modulates offered load. It prints per-job p50/p90/p99/p99.9 and
  QoS-violation fractions for the policy AND the equal-share baseline, and
  --report PATH writes the versioned JSON report the loadgate CI gate diffs.

FAULTS (chaos mode, CLITE only):
  --faults SPEC injects deterministic faults into the testbed and runs the
  hardened controller: counter spikes are quarantined, dropped/stuck
  windows retried with backoff, and on an unrecoverable fault the run
  degrades to the best QoS-feasible partition instead of panicking.
  SPEC is 'none', 'default', or comma-separated key=value pairs:
  spike, spike_mag, drop, stuck, stuck_windows, enforce, crash
  (= crash at window N), crash_prob, crash_max.

FLEET (long-running event-driven scheduler):
  colocate fleet generates a deterministic arrival/departure/load-shift
  trace (--events long, from --seed) and streams it through the fleet
  service over --nodes simulated servers backed by a --shards-way sharded
  observation store. --epoch re-solves the mean-field placement template
  every N ticks and --probe-limit caps CLITE searches per admission.
  --threaded probes candidates concurrently (byte-identical to serial by
  construction). --faults injects node crashes; --store persists the
  sharded observation log at <path>.shard<i>. --placement learned orders
  candidate nodes with the trained ranking model from --model (a missing
  or corrupt file degrades to the zero model, whose order matches the
  least-loaded heuristic).

DURABILITY (write-ahead journal + checkpoints):
  --journal DIR makes the fleet durable: every event is journaled (with
  its shed disposition) before it mutates scheduler state, and periodic
  checkpoints bound replay. --recover resumes from DIR — newest valid
  checkpoint plus journal suffix — and finishing the same trace yields a
  byte-identical witness to a never-crashed run. --kill-after K kills the
  process right after journaling event K (recovery demo/test hook).

TRAIN (fit the placement ranking model):
  colocate train runs deterministic simulator rollouts (labels come from
  ground-truth windows, never from anything admission can see), fits the
  pairwise ranking model with seeded SGD, and saves it as a checksummed
  model file at --out. Same --seed => bit-identical weights at any worker
  count.

EXAMPLES:
  colocate run memcached:40 img-dnn:30 streamcluster
  colocate load --trace bursty memcached:70 img-dnn:60
  colocate load --report results/reports/adhoc.json memcached:40 streamcluster
  colocate run --policy PARTIES memcached:40 img-dnn:30 streamcluster
  colocate run --telemetry-out /tmp/run.jsonl memcached:40 img-dnn:30 streamcluster
  colocate run --store /tmp/obs.clite memcached:40 img-dnn:30 streamcluster
  colocate run --faults default memcached:40 img-dnn:30 streamcluster
  colocate run --faults spike=0.1,drop=0.05 memcached:40 streamcluster
  colocate sweep --sweep memcached:0 masstree:30 img-dnn:30
  colocate fleet --nodes 128 --events 64 --threaded --faults crash_prob=0.3,crash_max=20
  colocate train --out results/placement.model --epochs 12
  colocate fleet --placement learned --model results/placement.model
  colocate fleet --journal /tmp/fleet.wal --kill-after 20
  colocate fleet --journal /tmp/fleet.wal --recover
  colocate qos memcached xapian"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_lc_and_bg_jobs() {
        let lc = parse_job("memcached:40").unwrap();
        assert_eq!(lc.workload, WorkloadId::Memcached);
        assert!((lc.load.at(0.0) - 0.4).abs() < 1e-12);
        let bg = parse_job("blackscholes").unwrap();
        assert_eq!(bg.class(), JobClass::Background);
    }

    #[test]
    fn rejects_malformed_jobs() {
        assert!(parse_job("nginx:40").is_err());
        assert!(parse_job("memcached").is_err(), "LC without load");
        assert!(parse_job("blackscholes:40").is_err(), "BG with load");
        assert!(parse_job("memcached:0").is_err());
        assert!(parse_job("memcached:140").is_err());
        assert!(parse_job("memcached:abc").is_err());
    }

    #[test]
    fn parses_policies_case_insensitively() {
        assert_eq!(parse_policy("clite").unwrap(), PolicyKind::Clite);
        assert_eq!(parse_policy("PARTIES").unwrap(), PolicyKind::Parties);
        assert_eq!(parse_policy("rand+").unwrap(), PolicyKind::RandomPlus);
        assert!(parse_policy("sgd").is_err());
    }

    #[test]
    fn parses_run_command() {
        let cmd =
            parse(&v(&["run", "--policy", "PARTIES", "--seed", "7", "memcached:40", "swaptions"]))
                .unwrap();
        match cmd {
            Command::Run { policy, seed, telemetry_out, store, faults, jobs } => {
                assert_eq!(policy, PolicyKind::Parties);
                assert_eq!(seed, 7);
                assert_eq!(telemetry_out, None);
                assert_eq!(store, None);
                assert_eq!(faults, None);
                assert_eq!(jobs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_telemetry_out_flag() {
        let cmd = parse(&v(&["run", "--telemetry-out", "/tmp/run.jsonl", "memcached:40"])).unwrap();
        match cmd {
            Command::Run { telemetry_out, .. } => {
                assert_eq!(telemetry_out, Some(PathBuf::from("/tmp/run.jsonl")));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["run", "--telemetry-out"])).is_err(), "flag needs a path");
        let sweep = parse(&v(&[
            "sweep",
            "--telemetry-out",
            "t.jsonl",
            "--sweep",
            "memcached:10",
            "masstree:30",
        ]))
        .unwrap();
        match sweep {
            Command::Sweep { telemetry_out, .. } => {
                assert_eq!(telemetry_out, Some(PathBuf::from("t.jsonl")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_store_flag() {
        let cmd = parse(&v(&["run", "--store", "/tmp/obs.clite", "memcached:40"])).unwrap();
        match cmd {
            Command::Run { store, .. } => {
                assert_eq!(store, Some(PathBuf::from("/tmp/obs.clite")));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["run", "--store"])).is_err(), "flag needs a path");
        let sweep =
            parse(&v(&["sweep", "--store", "obs.clite", "--sweep", "memcached:10", "masstree:30"]))
                .unwrap();
        match sweep {
            Command::Sweep { store, .. } => assert_eq!(store, Some(PathBuf::from("obs.clite"))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_faults_flag() {
        let cmd = parse(&v(&["run", "--faults", "default", "memcached:40"])).unwrap();
        match cmd {
            Command::Run { faults, .. } => assert_eq!(faults, Some(FaultSpec::default_chaos())),
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&v(&["run", "--faults", "spike=0.1,crash=6", "memcached:40"])).unwrap();
        match cmd {
            Command::Run { faults: Some(spec), .. } => {
                assert!((spec.spike_prob - 0.1).abs() < 1e-12);
                assert_eq!(spec.crash_at_window, Some(6));
            }
            other => panic!("unexpected {other:?}"),
        }
        let none = parse(&v(&["run", "--faults", "none", "memcached:40"])).unwrap();
        match none {
            Command::Run { faults: Some(spec), .. } => assert!(spec.is_none()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["run", "--faults"])).is_err(), "flag needs a spec");
        assert!(parse(&v(&["run", "--faults", "bogus=1", "memcached:40"])).is_err());
        assert!(
            parse(&v(&["sweep", "--faults", "default", "--sweep", "memcached:10", "masstree:30"]))
                .is_err(),
            "chaos mode is run-only"
        );
    }

    #[test]
    fn parses_load_command() {
        let cmd = parse(&v(&[
            "load",
            "--trace",
            "bursty",
            "--windows",
            "6",
            "--queries",
            "5000",
            "--threads",
            "2",
            "--seed",
            "9",
            "--report",
            "out.json",
            "memcached:70",
            "img-dnn:60",
        ]))
        .unwrap();
        match cmd {
            Command::Load { policy, config, report, telemetry_out, jobs } => {
                assert_eq!(policy, PolicyKind::Clite);
                assert_eq!(config.trace, TraceKind::Bursty);
                assert_eq!(config.windows, 6);
                assert_eq!(config.queries_per_window, 5000);
                assert_eq!(config.threads, 2);
                assert_eq!(config.seed, 9);
                assert_eq!(report, Some(PathBuf::from("out.json")));
                assert_eq!(telemetry_out, None);
                assert_eq!(jobs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_command_defaults_and_rejects_bad_input() {
        match parse(&v(&["load", "memcached:40"])).unwrap() {
            Command::Load { policy, config, report, .. } => {
                assert_eq!(policy, PolicyKind::Clite);
                assert_eq!(config, LoadConfig::default());
                assert_eq!(report, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["load"])).is_err(), "load without jobs");
        assert!(parse(&v(&["load", "--trace", "square", "memcached:40"])).is_err());
        assert!(parse(&v(&["load", "--windows", "0", "memcached:40"])).is_err());
        assert!(parse(&v(&["load", "--threads", "0", "memcached:40"])).is_err());
        assert!(parse(&v(&["load", "--faults", "default", "memcached:40"])).is_err());
    }

    #[test]
    fn parses_sweep_command() {
        let cmd =
            parse(&v(&["sweep", "--sweep", "memcached:10", "masstree:30", "img-dnn:30"])).unwrap();
        match cmd {
            Command::Sweep { swept, fixed, .. } => {
                assert_eq!(swept.workload, WorkloadId::Memcached);
                assert_eq!(fixed.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&v(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run"])).is_err(), "run without jobs");
        assert!(parse(&v(&["sweep", "masstree:30"])).is_err(), "sweep without --sweep");
    }

    #[test]
    fn parses_fleet_command_with_defaults() {
        match parse(&v(&["fleet"])).unwrap() {
            Command::Fleet {
                nodes,
                events,
                seed,
                shards,
                admission,
                epoch,
                probe_limit,
                faults,
                store,
                placement,
                model,
                journal,
                recover,
                kill_after,
            } => {
                assert_eq!(nodes, 64);
                assert_eq!(events, 48);
                assert_eq!(seed, 42);
                assert_eq!(shards, 8);
                assert_eq!(admission, AdmissionMode::Serial);
                assert_eq!(epoch, 8);
                assert_eq!(probe_limit, 4);
                assert_eq!(faults, None);
                assert_eq!(store, None);
                assert_eq!(placement, PlacementChoice::Heuristic);
                assert_eq!(model, None);
                assert_eq!(journal, None);
                assert!(!recover);
                assert_eq!(kill_after, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fleet_placement_flags() {
        let cmd = parse(&v(&["fleet", "--placement", "learned", "--model", "m.bin"])).unwrap();
        match cmd {
            Command::Fleet { placement, model, .. } => {
                assert_eq!(placement, PlacementChoice::Learned);
                assert_eq!(model, Some(PathBuf::from("m.bin")));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&v(&["fleet", "--placement", "learned"])).unwrap() {
            Command::Fleet { placement, model, .. } => {
                assert_eq!(placement, PlacementChoice::Learned);
                assert_eq!(model, None, "learned without --model serves the zero model");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["fleet", "--placement", "sgd"])).is_err(), "unknown placement");
        assert!(
            parse(&v(&["fleet", "--model", "m.bin"])).is_err(),
            "--model without --placement learned"
        );
        assert!(
            parse(&v(&["fleet", "--placement", "heuristic", "--model", "m.bin"])).is_err(),
            "--model with the heuristic"
        );
    }

    #[test]
    fn parses_train_command() {
        match parse(&v(&["train"])).unwrap() {
            Command::Train { out, seed, epochs, groups } => {
                assert_eq!(out, PathBuf::from("results/placement.model"));
                assert_eq!(seed, 42);
                assert_eq!(epochs, 12);
                assert_eq!(groups, 24);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&v(&[
            "train", "--out", "m.bin", "--seed", "7", "--epochs", "3", "--groups", "8",
        ]))
        .unwrap()
        {
            Command::Train { out, seed, epochs, groups } => {
                assert_eq!(out, PathBuf::from("m.bin"));
                assert_eq!(seed, 7);
                assert_eq!(epochs, 3);
                assert_eq!(groups, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["train", "--epochs", "0"])).is_err());
        assert!(parse(&v(&["train", "--groups", "1"])).is_err());
        assert!(parse(&v(&["train", "memcached:40"])).is_err(), "train takes no job tokens");
    }

    #[test]
    fn parses_fleet_command_with_flags() {
        let cmd = parse(&v(&[
            "fleet",
            "--nodes",
            "512",
            "--events",
            "96",
            "--shards",
            "16",
            "--threaded",
            "--epoch",
            "4",
            "--probe-limit",
            "2",
            "--faults",
            "crash_prob=0.3,crash_max=20",
            "--store",
            "/tmp/fleet.obs",
        ]))
        .unwrap();
        match cmd {
            Command::Fleet {
                nodes,
                events,
                shards,
                admission,
                epoch,
                probe_limit,
                faults,
                store,
                ..
            } => {
                assert_eq!(nodes, 512);
                assert_eq!(events, 96);
                assert_eq!(shards, 16);
                assert_eq!(admission, AdmissionMode::Threaded);
                assert_eq!(epoch, 4);
                assert_eq!(probe_limit, 2);
                let spec = faults.expect("fault spec parsed");
                assert!((spec.crash_prob - 0.3).abs() < 1e-12);
                assert_eq!(store, Some(PathBuf::from("/tmp/fleet.obs")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fleet_command_rejects_bad_input() {
        assert!(parse(&v(&["fleet", "--nodes", "0"])).is_err());
        assert!(parse(&v(&["fleet", "--shards", "0"])).is_err());
        assert!(parse(&v(&["fleet", "--probe-limit", "0"])).is_err());
        assert!(parse(&v(&["fleet", "--nodes"])).is_err(), "flag needs a value");
        assert!(parse(&v(&["fleet", "memcached:40"])).is_err(), "fleet takes no job tokens");
    }

    #[test]
    fn parses_fleet_durability_flags() {
        let cmd = parse(&v(&["fleet", "--journal", "/tmp/wal", "--kill-after", "7"])).unwrap();
        match cmd {
            Command::Fleet { journal, recover, kill_after, .. } => {
                assert_eq!(journal, Some(PathBuf::from("/tmp/wal")));
                assert!(!recover);
                assert_eq!(kill_after, Some(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&v(&["fleet", "--journal", "/tmp/wal", "--recover"])).unwrap() {
            Command::Fleet { recover, kill_after, .. } => {
                assert!(recover);
                assert_eq!(kill_after, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["fleet", "--journal"])).is_err(), "flag needs a directory");
        assert!(parse(&v(&["fleet", "--kill-after", "x", "--journal", "d"])).is_err());
        assert!(parse(&v(&["fleet", "--recover"])).is_err(), "--recover needs --journal");
        assert!(parse(&v(&["fleet", "--kill-after", "3"])).is_err(), "needs --journal");
    }

    #[test]
    fn fault_spec_errors_name_the_offending_token() {
        let err = parse(&v(&["run", "--faults", "spike=0.1,bogus=1", "memcached:40"]))
            .expect_err("unknown key must fail");
        assert!(err.0.contains("bogus=1"), "message must quote the token: {err}");
        assert!(err.0.contains("token 1"), "message must give the position: {err}");
        let err = parse(&v(&["run", "--faults", "spike=abc", "memcached:40"]))
            .expect_err("bad number must fail");
        assert!(err.0.contains("spike=abc"), "message must quote the token: {err}");
    }

    #[test]
    fn qos_command_accepts_names() {
        match parse(&v(&["qos", "memcached", "xapian"])).unwrap() {
            Command::Qos { workloads } => assert_eq!(workloads.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&v(&["qos", "nginx"])).is_err());
    }
}
