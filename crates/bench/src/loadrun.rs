//! Shared load-run orchestration: enforce a policy's chosen partition on
//! a fresh server and drive it through a load trace with the
//! `clite-load` harness.
//!
//! Both `colocate load` and the `loadtest` experiment build their
//! scenarios through this module, so the CLI and the report pipeline
//! measure exactly the same thing: a partition held fixed while the
//! trace modulates offered load and the client pool fires queries.

use clite_load::{run_load, scenario_report, LoadConfig, ScenarioReport, TraceKind};
use clite_sim::alloc::Partition;
use clite_telemetry::{Phase, Telemetry};

use crate::mixes::Mix;
use crate::runner::{run_policy_with, PolicyKind};

/// Policy label used for the static equal-share baseline in load
/// reports (it is a partition rule, not a [`PolicyKind`]).
pub const EQUAL_SHARE: &str = "equal-share";

/// The partition a policy commits to for `mix`: the search's best
/// partition, run with the same seeding as [`run_policy_with`].
///
/// # Panics
///
/// Panics on internal policy failures (experiments treat those as bugs).
#[must_use]
pub fn searched_partition(
    kind: PolicyKind,
    mix: &Mix,
    seed: u64,
    telemetry: &Telemetry<'_>,
) -> Partition {
    run_policy_with(kind, mix, seed, telemetry).best_partition
}

/// The static equal-share partition for `mix` on the testbed catalog.
///
/// # Panics
///
/// Panics if the mix exceeds the catalog's capacity — standard mixes
/// never do.
#[must_use]
pub fn equal_share_partition(mix: &Mix) -> Partition {
    Partition::equal_share(&clite_sim::resource::ResourceCatalog::testbed(), mix.len())
        .expect("standard mixes fit the testbed catalog")
}

/// Enforces `partition` on a fresh server hosting `mix` and drives it
/// through `config`'s trace. Report assembly (histogram folding, CCDF
/// extraction) is timed under [`Phase::LoadReport`], so one overhead
/// report separates search, query generation, and report cost.
///
/// # Panics
///
/// Panics on simulator failures (the partition was validated by the
/// search or the equal-share constructor; experiments treat failures
/// here as bugs).
#[must_use]
pub fn load_scenario(
    mix: &Mix,
    policy_label: &str,
    partition: &Partition,
    config: &LoadConfig,
    telemetry: &Telemetry<'_>,
) -> ScenarioReport {
    let mut server = mix.server(config.seed);
    server
        .enforce(partition)
        .unwrap_or_else(|e| panic!("cannot enforce {policy_label} partition on {}: {e}", mix.name));
    let outcome = run_load(&mut server, config, telemetry)
        .unwrap_or_else(|e| panic!("load run failed on {}: {e}", mix.name));
    telemetry.time(Phase::LoadReport, || {
        scenario_report(&mix.name, config.trace.name(), policy_label, &outcome)
    })
}

/// Runs `mix` under `trace` twice — once with the policy's searched
/// partition, once with the equal-share baseline — and returns both
/// scenarios (policy first).
#[must_use]
pub fn policy_vs_equal_share(
    kind: PolicyKind,
    mix: &Mix,
    trace: TraceKind,
    config: &LoadConfig,
    telemetry: &Telemetry<'_>,
) -> [ScenarioReport; 2] {
    let config = LoadConfig { trace, ..config.clone() };
    let searched = searched_partition(kind, mix, config.seed, telemetry);
    [
        load_scenario(mix, kind.name(), &searched, &config, telemetry),
        load_scenario(mix, EQUAL_SHARE, &equal_share_partition(mix), &config, telemetry),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::fig7_mix;

    fn quick_config() -> LoadConfig {
        LoadConfig { windows: 3, queries_per_window: 1_000, threads: 2, ..LoadConfig::default() }
    }

    #[test]
    fn scenario_carries_every_job_and_both_policies_run() {
        let mix = fig7_mix(0.3, 0.3, 0.3);
        let [clite, equal] = policy_vs_equal_share(
            PolicyKind::Clite,
            &mix,
            TraceKind::Steady,
            &quick_config(),
            &Telemetry::disabled(),
        );
        assert_eq!(clite.policy, "CLITE");
        assert_eq!(equal.policy, EQUAL_SHARE);
        for s in [&clite, &equal] {
            assert_eq!(s.mix, mix.name);
            assert_eq!(s.trace, "steady");
            assert_eq!(s.jobs.len(), mix.len());
            assert_eq!(s.queries, 3 * 1_000 * mix.len() as u64);
            for j in &s.jobs {
                assert!(j.tail.count > 0);
                assert!(j.tail.p50_us <= j.tail.p99_us);
            }
        }
    }

    #[test]
    fn load_phases_show_up_in_the_overhead_report() {
        let telemetry = Telemetry::disabled();
        let mix = fig7_mix(0.2, 0.2, 0.2);
        let partition = equal_share_partition(&mix);
        let _ = load_scenario(&mix, EQUAL_SHARE, &partition, &quick_config(), &telemetry);
        let report = telemetry.report();
        assert_eq!(report.phase(Phase::LoadGen).count, 3, "one span per window");
        assert_eq!(report.phase(Phase::LoadReport).count, 1, "one span per scenario");
    }

    #[test]
    fn scenarios_are_deterministic() {
        let mix = fig7_mix(0.4, 0.2, 0.2);
        let partition = equal_share_partition(&mix);
        let run = || {
            load_scenario(
                &mix,
                EQUAL_SHARE,
                &partition,
                &LoadConfig { trace: TraceKind::Bursty, ..quick_config() },
                &Telemetry::disabled(),
            )
        };
        let (a, b) = (run(), run());
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.tail.p99_us, jb.tail.p99_us);
            assert_eq!(ja.tail.count, jb.tail.count);
        }
    }
}
