//! Standard job mixes used by the paper's evaluation.

use clite_sim::prelude::*;

/// A named job mix with per-LC-job loads.
#[derive(Debug, Clone, PartialEq)]
pub struct Mix {
    /// Display name, e.g. `"img-dnn+xapian+memcached / streamcluster"`.
    pub name: String,
    /// Job specs in order (LC jobs first by convention).
    pub jobs: Vec<JobSpec>,
}

impl Mix {
    /// Builds a mix from LC workloads with loads plus BG workloads.
    #[must_use]
    pub fn new(lc: &[(WorkloadId, f64)], bg: &[WorkloadId]) -> Self {
        let mut name_parts: Vec<String> =
            lc.iter().map(|(w, l)| format!("{}@{:.0}%", w.name(), l * 100.0)).collect();
        if !bg.is_empty() {
            name_parts
                .push(format!("/ {}", bg.iter().map(|w| w.name()).collect::<Vec<_>>().join("+")));
        }
        let jobs = lc
            .iter()
            .map(|&(w, l)| JobSpec::latency_critical(w, l))
            .chain(bg.iter().map(|&w| JobSpec::background(w)))
            .collect();
        Self { name: name_parts.join(" "), jobs }
    }

    /// Builds the server hosting this mix.
    ///
    /// # Panics
    ///
    /// Panics if the mix is infeasible for the testbed catalog (more jobs
    /// than units of some resource) — mixes in this module never are.
    #[must_use]
    pub fn server(&self, seed: u64) -> Server {
        Server::new(ResourceCatalog::testbed(), self.jobs.clone(), seed)
            .expect("standard mixes are feasible for the testbed catalog")
    }

    /// Number of jobs in the mix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the mix is empty (never for built mixes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Fig. 7's mix: memcached + masstree + img-dnn, no BG job.
#[must_use]
pub fn fig7_mix(memcached_load: f64, masstree_load: f64, imgdnn_load: f64) -> Mix {
    Mix::new(
        &[
            (WorkloadId::Memcached, memcached_load),
            (WorkloadId::Masstree, masstree_load),
            (WorkloadId::ImgDnn, imgdnn_load),
        ],
        &[],
    )
}

/// Fig. 8's mix: Fig. 7 plus blackscholes as the BG job.
#[must_use]
pub fn fig8_mix(memcached_load: f64, masstree_load: f64, imgdnn_load: f64) -> Mix {
    Mix::new(
        &[
            (WorkloadId::Memcached, memcached_load),
            (WorkloadId::Masstree, masstree_load),
            (WorkloadId::ImgDnn, imgdnn_load),
        ],
        &[WorkloadId::Blackscholes],
    )
}

/// Fig. 9a's mix: img-dnn + memcached + masstree with streamcluster.
#[must_use]
pub fn fig9a_mix() -> Mix {
    Mix::new(
        &[(WorkloadId::ImgDnn, 0.3), (WorkloadId::Memcached, 0.3), (WorkloadId::Masstree, 0.3)],
        &[WorkloadId::Streamcluster],
    )
}

/// Fig. 10's first mix: img-dnn + xapian + memcached (third job's load is
/// the sweep variable).
#[must_use]
pub fn fig10_mix_a(swept_load: f64) -> Mix {
    Mix::new(
        &[
            (WorkloadId::ImgDnn, 0.1),
            (WorkloadId::Xapian, 0.1),
            (WorkloadId::Memcached, swept_load),
        ],
        &[],
    )
}

/// Fig. 10's second mix: specjbb + masstree + xapian.
#[must_use]
pub fn fig10_mix_b(swept_load: f64) -> Mix {
    Mix::new(
        &[
            (WorkloadId::Specjbb, 0.1),
            (WorkloadId::Masstree, 0.1),
            (WorkloadId::Xapian, swept_load),
        ],
        &[],
    )
}

/// Fig. 12's mix: memcached + xapian with streamcluster.
#[must_use]
pub fn fig12_mix(memcached_load: f64, xapian_load: f64) -> Mix {
    Mix::new(
        &[(WorkloadId::Memcached, memcached_load), (WorkloadId::Xapian, xapian_load)],
        &[WorkloadId::Streamcluster],
    )
}

/// Fig. 13's LC mixes (each paired with every BG workload).
#[must_use]
pub fn fig13_lc_mixes() -> Vec<(&'static str, Vec<(WorkloadId, f64)>)> {
    vec![
        (
            "img-dnn+xapian+memcached",
            vec![
                (WorkloadId::ImgDnn, 0.3),
                (WorkloadId::Xapian, 0.3),
                (WorkloadId::Memcached, 0.3),
            ],
        ),
        (
            "specjbb+masstree+xapian",
            vec![
                (WorkloadId::Specjbb, 0.3),
                (WorkloadId::Masstree, 0.3),
                (WorkloadId::Xapian, 0.3),
            ],
        ),
    ]
}

/// Fig. 14's multi-BG mixes: two LC jobs with three BG jobs.
#[must_use]
pub fn fig14_mixes() -> Vec<Mix> {
    vec![
        Mix::new(
            &[(WorkloadId::Memcached, 0.3), (WorkloadId::ImgDnn, 0.3)],
            &[WorkloadId::Blackscholes, WorkloadId::Canneal, WorkloadId::Fluidanimate],
        ),
        Mix::new(
            &[(WorkloadId::Masstree, 0.3), (WorkloadId::Xapian, 0.3)],
            &[WorkloadId::Freqmine, WorkloadId::Streamcluster, WorkloadId::Swaptions],
        ),
    ]
}

/// Fig. 15's job-count sweep: mixes with increasing numbers of LC/BG jobs.
#[must_use]
pub fn fig15_mixes() -> Vec<Mix> {
    vec![
        Mix::new(&[(WorkloadId::Memcached, 0.3)], &[WorkloadId::Blackscholes]),
        Mix::new(
            &[(WorkloadId::Memcached, 0.3), (WorkloadId::ImgDnn, 0.3)],
            &[WorkloadId::Blackscholes],
        ),
        Mix::new(
            &[(WorkloadId::Memcached, 0.3), (WorkloadId::ImgDnn, 0.3), (WorkloadId::Masstree, 0.3)],
            &[WorkloadId::Fluidanimate],
        ),
        Mix::new(
            &[(WorkloadId::Memcached, 0.3), (WorkloadId::ImgDnn, 0.3), (WorkloadId::Masstree, 0.3)],
            &[WorkloadId::Fluidanimate, WorkloadId::Swaptions],
        ),
    ]
}

/// Fig. 15b's convergence mix: 3 LC jobs plus fluidanimate.
#[must_use]
pub fn fig15b_mix() -> Mix {
    Mix::new(
        &[(WorkloadId::ImgDnn, 0.2), (WorkloadId::Memcached, 0.2), (WorkloadId::Masstree, 0.2)],
        &[WorkloadId::Fluidanimate],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_build_servers() {
        for mix in [fig7_mix(0.3, 0.3, 0.3), fig9a_mix(), fig12_mix(0.5, 0.5), fig15b_mix()] {
            let s = mix.server(1);
            assert_eq!(s.job_count(), mix.len());
            assert!(!mix.is_empty());
            assert!(!mix.name.is_empty());
        }
        assert_eq!(fig14_mixes().len(), 2);
        assert_eq!(fig15_mixes().len(), 4);
        assert_eq!(fig13_lc_mixes().len(), 2);
    }

    #[test]
    fn mix_names_are_descriptive() {
        let m = fig8_mix(0.1, 0.2, 0.3);
        assert!(m.name.contains("memcached@10%"));
        assert!(m.name.contains("blackscholes"));
    }
}
